#!/usr/bin/env python3
"""Workload characterisation: the analyses behind Figures 1, 11 and 13.

The helper cluster's potential rests on three workload properties that this
example measures on synthetic SPEC Int 2000 traces:

* how often register operands are *narrow data-width dependent* (Figure 1);
* how often (8-bit, 32-bit) -> 32-bit additions do **not** propagate a carry
  past the low byte — the CR scheme's opportunity (Figure 11);
* the producer-consumer distance that makes copy prefetching viable
  (Figure 13).

Run with::

    python examples/workload_characterization.py [--uops N]
"""

import argparse

from repro.analysis.carry import analyze_carry
from repro.analysis.distance import producer_consumer_distance
from repro.analysis.narrowness import analyze_narrowness
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.synthetic import generate_trace


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    rows = []
    for name in SPEC_INT_NAMES:
        trace = generate_trace(get_profile(name), args.uops, seed=args.seed)
        narrowness = analyze_narrowness(trace)
        carry = analyze_carry(trace)
        distance = producer_consumer_distance(trace)
        rows.append([
            name,
            narrowness.narrow_dependence_fraction * 100.0,
            carry.arith_fraction * 100.0,
            carry.load_fraction * 100.0,
            distance.mean_distance,
        ])
    averages = ["AVG"] + [sum(r[i] for r in rows) / len(rows) for i in range(1, 5)]
    rows.append(averages)

    print(format_table(
        ["benchmark", "narrow-dependent operands % (Fig 1)",
         "no-carry arith % (Fig 11)", "no-carry load % (Fig 11)",
         "producer-consumer distance (Fig 13)"],
        rows,
        title="Workload characterisation of the synthetic SPEC Int 2000 traces",
        float_format="{:.1f}"))
    print()
    print("Paper reference points: Figure 1 averages ~65% narrow-dependent operands;"
          " Figure 11 shows a large no-carry fraction (especially for loads);"
          " Figure 13 reports average distances of a few uops.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
