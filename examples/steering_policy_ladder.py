#!/usr/bin/env python3
"""Walk the paper's cumulative steering-policy ladder over SPEC Int 2000.

Reproduces the paper's central narrative (Sections 3.2-3.7): each additional
data-width aware technique — BR (narrow-flag branches), LR (load
replication), CR (carry-width prediction), CP (copy prefetching) and IR
(instruction splitting) — steers more instructions into the 8-bit helper
cluster while managing the inter-cluster copy overhead, increasing the
average speedup over the monolithic baseline.

Run with::

    python examples/steering_policy_ladder.py [--uops N] [--benchmarks a b c]
"""

import argparse

from repro.sim.experiment import run_spec_suite
from repro.sim.reporting import format_ladder_summary, format_policy_table
from repro.trace.profiles import SPEC_INT_NAMES

LADDER = ["n888", "n888_br", "n888_br_lr", "n888_br_lr_cr", "n888_br_lr_cr_cp",
          "ir", "ir_nodest"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--uops", type=int, default=6000,
                        help="trace length per benchmark (default 6000)")
    parser.add_argument("--benchmarks", nargs="*", default=["gcc", "gzip", "bzip2", "mcf"],
                        choices=SPEC_INT_NAMES,
                        help="benchmarks to simulate (default: a 4-app subset)")
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    print(f"Running {len(LADDER)} policies x {len(args.benchmarks)} benchmarks "
          f"({args.uops} uops each); this simulates "
          f"{(len(LADDER) + 1) * len(args.benchmarks)} machine configurations ...\n")

    sweep = run_spec_suite(LADDER, trace_uops=args.uops, seed=args.seed,
                           benchmarks=args.benchmarks)

    print(format_ladder_summary(
        sweep, title="Cumulative steering-policy ladder (paper §3.2-§3.7)"))
    print()
    print("Per-benchmark detail for the first and last rungs of the ladder:\n")
    print(format_policy_table(sweep, "n888", title="8-8-8 only (paper Figure 6/7)"))
    print()
    print(format_policy_table(sweep, "ir_nodest",
                              title="Full stack with IR fine tuning (paper §3.7)"))
    print()
    print("Paper reference points: 8-8-8 = 6.2% speedup / 15% helper instructions;"
          " +BR = 9% / 19.5%; +CR = 14.5% / 47.5%; +CP = 16.7%; IR = 22.1% / 72.4%.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
