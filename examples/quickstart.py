#!/usr/bin/env python3
"""Quickstart: simulate one benchmark on the helper-cluster machine.

Generates a synthetic SPEC Int 2000-style trace, runs it on the monolithic
baseline and on the 8-bit helper-cluster machine under the full data-width
aware steering stack, and prints the headline metrics the paper reports:
speedup, fraction of instructions executed in the helper cluster, copy
percentage and width-prediction accuracy.

Run with::

    python examples/quickstart.py [benchmark] [policy]

e.g. ``python examples/quickstart.py gzip ir_nodest``.
"""

import sys

from repro import helper_cluster_config
from repro.core.steering import POLICY_LADDER, make_policy
from repro.sim.baseline import baseline_pair
from repro.sim.metrics import ed2_improvement
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.synthetic import generate_trace

TRACE_UOPS = 10_000
SEED = 2006


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    policy_name = sys.argv[2] if len(sys.argv) > 2 else "ir_nodest"
    if benchmark not in SPEC_INT_NAMES:
        print(f"unknown benchmark {benchmark!r}; choose from {', '.join(SPEC_INT_NAMES)}")
        return 1
    if policy_name not in POLICY_LADDER:
        print(f"unknown policy {policy_name!r}; choose from {', '.join(POLICY_LADDER)}")
        return 1

    print(f"Generating a {TRACE_UOPS}-uop synthetic trace for {benchmark} ...")
    trace = generate_trace(get_profile(benchmark), TRACE_UOPS, seed=SEED)

    print("Simulating the monolithic baseline and the helper-cluster machine ...")
    base, helper, gain = baseline_pair(trace, make_policy(policy_name),
                                       helper_config=helper_cluster_config())

    rows = [
        ["trace uops", len(trace)],
        ["baseline cycles", f"{base.slow_cycles:.0f}"],
        ["helper-cluster cycles", f"{helper.slow_cycles:.0f}"],
        ["baseline IPC", f"{base.ipc:.3f}"],
        ["helper-cluster IPC", f"{helper.ipc:.3f}"],
        ["speedup", f"{gain * 100:+.1f}%"],
        ["instructions in helper cluster", f"{helper.helper_fraction * 100:.1f}%"],
        ["inter-cluster copies", f"{helper.copy_fraction * 100:.1f}%"],
        ["width prediction accuracy", f"{helper.prediction.accuracy * 100:.1f}%"],
        ["fatal mispredictions", f"{helper.prediction.fatal_rate * 100:.2f}%"],
        ["flushing recoveries", helper.recoveries],
        ["energy vs baseline", f"{helper.energy / base.energy * 100:.1f}%"],
        ["ED2 improvement", f"{ed2_improvement(base, helper) * 100:+.1f}%"],
    ]
    print()
    print(format_table(["metric", "value"], rows,
                       title=f"{benchmark} under policy '{policy_name}'"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
