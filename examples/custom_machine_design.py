#!/usr/bin/env python3
"""Design-space exploration with a custom machine configuration.

Shows how to use the public configuration API to explore helper-cluster
design points beyond the paper's 8-bit / 2x choice: different narrow widths,
clock ratios and predictor sizes, plus the energy-delay² trade-off of §3.7.

Run with::

    python examples/custom_machine_design.py [--benchmark gzip] [--uops N]
"""

import argparse

from repro.core.config import helper_cluster_config, helper_topology, topology_config
from repro.core.steering import make_policy
from repro.power.energy import compare_ed2, report_from_activity
from repro.sim.baseline import simulate_baseline
from repro.sim.metrics import speedup
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace

DESIGN_POINTS = [
    ("4-bit helper, 2x clock", dict(narrow_width=4, clock_ratio=2)),
    ("8-bit helper, 2x clock (paper)", dict(narrow_width=8, clock_ratio=2)),
    ("16-bit helper, 2x clock", dict(narrow_width=16, clock_ratio=2)),
    ("8-bit helper, 1x clock (symmetric)", dict(narrow_width=8, clock_ratio=1)),
    ("8-bit helper, tiny predictor", dict(narrow_width=8, clock_ratio=2,
                                          predictor_entries=32)),
]

#: Machine shapes beyond the two-cluster API: built as explicit topologies
#: (``repro.cli explore`` sweeps whole grids of these through the parallel
#: engine).
TOPOLOGY_POINTS = [
    ("two 8-bit helpers, 2x clock",
     topology_config(helper_topology(narrow_width=8, clock_ratio=2, helpers=2))),
    ("one 16-bit helper, 1x clock",
     topology_config(helper_topology(narrow_width=16, clock_ratio=1))),
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="gzip")
    parser.add_argument("--uops", type=int, default=8000)
    parser.add_argument("--policy", default="n888_br_lr_cr")
    parser.add_argument("--seed", type=int, default=2006)
    args = parser.parse_args()

    trace = generate_trace(get_profile(args.benchmark), args.uops, seed=args.seed)
    baseline = simulate_baseline(trace)
    baseline_energy = report_from_activity(baseline.activity, baseline.slow_cycles,
                                           label="baseline")

    configs = [(label, helper_cluster_config(**overrides))
               for label, overrides in DESIGN_POINTS]
    configs.extend(TOPOLOGY_POINTS)

    rows = []
    for label, config in configs:
        result = simulate(trace, config=config, policy=make_policy(args.policy))
        energy = report_from_activity(result.activity, result.slow_cycles, label=label)
        rows.append([
            label,
            speedup(baseline, result) * 100.0,
            result.helper_fraction * 100.0,
            result.copy_fraction * 100.0,
            result.prediction.accuracy * 100.0,
            compare_ed2(baseline_energy, energy) * 100.0,
        ])

    print(format_table(
        ["design point", "speedup %", "helper instr %", "copies %",
         "width pred acc %", "ED^2 improvement %"],
        rows,
        title=f"Helper-cluster design space on {args.benchmark} "
              f"(policy {args.policy}, {args.uops} uops)",
        float_format="{:.1f}"))
    print()
    print("The paper's design point is the 8-bit, 2x-clocked helper cluster with a"
          " 256-entry width predictor; §3.7 reports it 5.1% better in energy-delay²"
          " than the monolithic baseline in its most aggressive configuration.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
