"""Hot-path cost of per-cluster energy accounting.

Per-cluster activity counting lives in the simulator's dispatch path, so its
cost must be tracked: this benchmark times a 12-point ``explore`` grid (the
default width x ratio x helper-count design space) with energy accounting
enabled versus disabled and emits ``benchmarks/results/BENCH_energy.json``
with both wall times.  The contract is that energy-for-every-sweep-point
stays under 10% overhead; the counting itself is shared with the timing
metrics, so the enabled arm only adds the per-cluster power-model
evaluation at finalise time.
"""

from __future__ import annotations

import json
import time

from repro.power.wattch import PowerConfig
from repro.sim.experiment import ExperimentRunner, build_topology_grid
from repro.trace.profiles import get_profile

from _bench_utils import BENCH_SEED, RESULTS_DIR

#: Deliberately small traces: the benchmark measures relative overhead, and
#: the grid multiplies the work by 13 runs (12 points + shared baseline).
#: Raised from 1200 alongside the other PR 5 length raises — the faster
#: event-wheel core shrank the per-run denominator, so the fixed
#: finalise-time power evaluation needs a realistic run length to amortise
#: against, exactly as it does in real sweeps.
GRID_UOPS = 2500
OVERHEAD_BUDGET = 0.10


def _run_grid(enabled: bool, points, profiles) -> float:
    """Wall time of one full (uncached, serial) grid sweep."""
    runner = ExperimentRunner(
        trace_uops=GRID_UOPS, seed=BENCH_SEED, jobs=1,
        power=PowerConfig(enabled=enabled))
    start = time.perf_counter()
    sweep = runner.run_topology_grid(points, profiles, policy="ir")
    elapsed = time.perf_counter() - start
    # Sanity: the enabled arm produced energy, the disabled arm did not.
    sample = sweep.result(points[0].name, profiles[0].name)
    assert sample.has_energy is enabled
    return elapsed


def test_bench_energy_overhead():
    points = build_topology_grid()  # the default 12-point design space
    assert len(points) == 12
    profiles = [get_profile("gcc")]

    # Warm the per-process trace memo so neither arm pays generation cost.
    runner = ExperimentRunner(trace_uops=GRID_UOPS, seed=BENCH_SEED)
    runner.trace_for(profiles[0])

    # Interleave five rounds per arm, alternating which arm goes first,
    # and compare the two arms' minima (each arm's floor): the arms are
    # ~2 s each, so a single scheduler blip on a shared worker is
    # comparable to the 10% budget, and the min-of-interleaved estimator
    # discards it.  Five rounds (not three) because the true overhead is
    # now only a few percent — post-compiled-core there is far less
    # per-uop Python work for the finalise-time power evaluation to
    # amortise against — while per-run noise on a small box is ~10%, so
    # with too few rounds the mins don't both reach their floor and the
    # measured sign itself can invert.  Readings within a couple of
    # percent of zero (either sign) mean "below this box's noise floor";
    # the contract being enforced is the 10% budget, not the point value.
    enabled_times, disabled_times = [], []
    for round_index in range(5):
        order = (True, False) if round_index % 2 == 0 else (False, True)
        for enabled in order:
            elapsed = _run_grid(enabled, points, profiles)
            (enabled_times if enabled else disabled_times).append(elapsed)
    enabled_s = min(enabled_times)
    disabled_s = min(disabled_times)
    overhead = enabled_s / disabled_s - 1.0 if disabled_s else 0.0

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "grid_points": len(points),
        "benchmarks": [p.name for p in profiles],
        "trace_uops": GRID_UOPS,
        "energy_enabled_seconds": round(enabled_s, 4),
        "energy_disabled_seconds": round(disabled_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": OVERHEAD_BUDGET,
    }
    (RESULTS_DIR / "BENCH_energy.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    assert overhead < OVERHEAD_BUDGET, (
        f"per-cluster energy accounting costs {overhead:.1%} on the explore "
        f"grid (budget {OVERHEAD_BUDGET:.0%}); see BENCH_energy.json")
