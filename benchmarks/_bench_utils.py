"""Helpers shared by the figure/table benchmarks (not a test module)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Sequence

#: Policies of the paper's cumulative ladder, in presentation order.
LADDER = ["n888", "n888_br", "n888_br_lr", "n888_br_lr_cr", "n888_br_lr_cr_cp",
          "ir", "ir_nodest"]

#: Default raised from 5000 once the event-wheel core + trace store landed
#: (PR 5): the same CI budget now buys 1.6x the trace length, tightening
#: the figure statistics toward the paper's 100M-uop traces.
BENCH_UOPS = int(os.environ.get("REPRO_BENCH_UOPS", "8000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2006"))
APPS_PER_CATEGORY = int(os.environ.get("REPRO_BENCH_APPS_PER_CATEGORY", "4"))
#: Sweep-engine worker processes (1 = serial, 0 = one per CPU).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
#: On-disk result cache directory (unset = no cache).
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure/table to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
