"""Headline result: the cumulative steering-policy ladder.

This is the paper's overall narrative compressed into one table: as the
schemes are stacked (8-8-8 → +BR → +LR → +CR → +CP → IR → IR-nodest), the
fraction of instructions executed in the helper cluster grows, copies fall
with BR/LR and rise again with CP/IR, and the average speedup over the
monolithic baseline increases (6.2% → 9% → … → 22.1% in the paper).
"""

from repro.sim.reporting import format_ladder_summary, format_policy_table

from _bench_utils import LADDER, write_result


def test_headline_policy_ladder(benchmark, ladder_sweep):
    summary = benchmark.pedantic(lambda: format_ladder_summary(
        ladder_sweep, title="Cumulative steering-policy ladder (SPEC Int 2000)"),
        rounds=1, iterations=1)

    text = summary
    for policy in ("n888", "n888_br_lr_cr", "ir_nodest"):
        text += "\n\n" + format_policy_table(ladder_sweep, policy)
    write_result("headline_policy_ladder", text)

    helper = [ladder_sweep.mean_helper_fraction(p) for p in LADDER]
    copies = [ladder_sweep.mean_copy_fraction(p) for p in LADDER]
    speed = [ladder_sweep.mean_speedup(p) for p in LADDER]

    # Helper-cluster share grows monotonically (within noise) along the ladder.
    assert helper[1] >= helper[0] - 0.02           # +BR
    assert helper[3] >= helper[1] + 0.05           # +CR adds a big chunk
    # BR+LR reduce copies relative to plain 8-8-8; CP/IR raise them again;
    # IR-nodest pulls them back down.
    assert copies[2] < copies[0]
    assert copies[5] >= copies[4] - 0.01
    assert copies[6] <= copies[5]
    # The stacked configuration outperforms the plain 8-8-8 scheme and the
    # baseline on average.
    assert speed[0] > 0.0
    assert max(speed[3:]) >= speed[0]
