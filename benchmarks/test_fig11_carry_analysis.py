"""Figure 11: fraction of (8-bit, 32-bit) -> 32-bit instructions whose carry
does not propagate past the low byte, split into arithmetic and loads.

This is the workload property that motivates the CR scheme (§3.5, Figure 10):
address computations add a small displacement to a large base whose low byte
is small, so the upper 24 bits of the result equal the base's.
"""

from repro.analysis.carry import analyze_carry
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig11_carry_analysis(benchmark, spec_traces):
    reports = {}

    def analyze_all():
        for name in SPEC_INT_NAMES:
            reports[name] = analyze_carry(spec_traces[name])
        return reports

    benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        report = reports[name]
        rows.append([name, report.arith_fraction * 100.0, report.load_fraction * 100.0])
    avg_arith = mean(r[1] for r in rows)
    avg_load = mean(r[2] for r in rows)
    rows.append(["AVG", avg_arith, avg_load])
    text = format_table(
        ["benchmark", "carry not propagated: arith %", "carry not propagated: load %"],
        rows, title="Figure 11 - carry-not-propagated fraction",
        float_format="{:.1f}")
    write_result("fig11_carry_analysis", text)

    # Shape checks: the CR opportunity is substantial, and loads (base + small
    # displacement) show it more strongly than general arithmetic.
    assert avg_load > 40.0
    assert avg_load >= avg_arith
    candidates = sum(reports[name].load_candidates + reports[name].arith_candidates
                     for name in SPEC_INT_NAMES)
    assert candidates > 100
