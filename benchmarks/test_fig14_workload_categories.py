"""Figure 14: helper-cluster performance across the Table 2 workload suite.

The paper's final study runs the best-performing steering configuration over
412 production traces in seven categories and reports (a) the per-category
mean performance increase — with regular-control-flow, arithmetic-rich
categories (kernels, multimedia, SPEC FP, encode) benefiting more than office
and productivity — and (b) the S-curve of per-application speedups, averaging
11% across the suite.

By default this benchmark samples ``REPRO_BENCH_APPS_PER_CATEGORY`` (4)
applications per category to stay CI-sized; set the variable to 0 to run the
full 409-trace suite of Table 2.
"""

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.sim.baseline import simulate_baseline
from repro.sim.metrics import speedup
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_CATEGORIES, build_workload_suite

from _bench_utils import APPS_PER_CATEGORY, BENCH_SEED, BENCH_UOPS, mean, write_result

#: Policy used for the final study: the best-performing (IR) configuration.
FINAL_POLICY = "ir_nodest"

#: Trace length per application (the paper uses 10M instructions here, a
#: tenth of the SPEC study's length; we scale the same way).
APP_UOPS = max(1000, BENCH_UOPS // 2)


def test_fig14_workload_categories(benchmark):
    apps = build_workload_suite(
        apps_per_category=None if APPS_PER_CATEGORY == 0 else APPS_PER_CATEGORY,
        base_seed=BENCH_SEED)

    def run_suite():
        per_app = []
        for app in apps:
            trace = generate_trace(app.profile, APP_UOPS, seed=app.seed)
            base = simulate_baseline(trace)
            helper = simulate(trace, config=helper_cluster_config(),
                              policy=make_policy(FINAL_POLICY))
            per_app.append((app, speedup(base, helper)))
        return per_app

    per_app = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    by_category = {}
    for app, gain in per_app:
        by_category.setdefault(app.category, []).append(gain)
    rows = [[key, WORKLOAD_CATEGORIES[key].description, len(gains),
             mean(gains) * 100.0]
            for key, gains in by_category.items()]
    overall = mean(gain for _, gain in per_app)
    rows.append(["ALL", "suite average", len(per_app), overall * 100.0])
    text = format_table(
        ["category", "description", "#apps simulated", "mean performance increase %"],
        rows, title=f"Figure 14 - workload-category performance ({FINAL_POLICY})",
        float_format="{:.2f}")

    # The S-curve: per-app speedups sorted ascending (relative to baseline=1).
    curve = sorted(1.0 + gain for _, gain in per_app)
    curve_rows = [[i + 1, value] for i, value in enumerate(curve)]
    text += "\n\n" + format_table(
        ["application rank", "performance (baseline = 1)"], curve_rows,
        title="Figure 14 (bottom) - per-application S-curve",
        float_format="{:.3f}")
    write_result("fig14_workload_categories", text)

    # Shape checks: the helper cluster helps on average across the suite, and
    # the arithmetic/regular categories benefit at least as much as office /
    # productivity, as the paper observes.
    assert overall > 0.0
    regular = mean(mean(by_category[k]) for k in ("kernels", "mm", "enc")
                   if k in by_category)
    irregular = mean(mean(by_category[k]) for k in ("office", "prod")
                     if k in by_category)
    assert regular >= irregular - 0.02
    # The S-curve spans a range of behaviours (not every app benefits equally).
    assert curve[-1] > curve[0]
