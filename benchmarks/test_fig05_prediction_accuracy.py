"""Figure 5: width prediction accuracy.

Regenerates the per-application breakdown into correct predictions, non-fatal
mispredictions (instruction was in the wide backend — a missed opportunity)
and fatal mispredictions (instruction was steered to the narrow backend and
needs flushing recovery).  The paper reports ~93.5% average accuracy and a
fatal misprediction rate of 0.83% with the confidence estimator (2.11%
without it).
"""

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig05_prediction_accuracy(benchmark, ladder_sweep, spec_traces):
    policy = "n888_br_lr_cr"
    rows = []
    for name in SPEC_INT_NAMES:
        prediction = ladder_sweep.results[name].by_policy[policy].prediction
        rows.append([name, prediction.accuracy * 100.0,
                     prediction.non_fatal_rate * 100.0,
                     prediction.fatal_rate * 100.0])
    avg_acc = mean(r[1] for r in rows)
    avg_fatal = mean(r[3] for r in rows)
    rows.append(["AVG", avg_acc, mean(r[2] for r in rows), avg_fatal])

    # §3.2 ablation: the confidence gate lowers the fatal (recovery-needing)
    # misprediction rate.  Timed as the representative benchmark body.
    trace = spec_traces["parser"]

    def run_without_confidence():
        return simulate(trace, config=helper_cluster_config(use_confidence=False),
                        policy=make_policy("n888"))

    ungated = benchmark.pedantic(run_without_confidence, rounds=1, iterations=1)
    gated = simulate(trace, config=helper_cluster_config(use_confidence=True),
                     policy=make_policy("n888"))

    rows.append(["parser (no confidence)", ungated.prediction.accuracy * 100.0,
                 ungated.prediction.non_fatal_rate * 100.0,
                 ungated.prediction.fatal_rate * 100.0])
    rows.append(["parser (confidence)", gated.prediction.accuracy * 100.0,
                 gated.prediction.non_fatal_rate * 100.0,
                 gated.prediction.fatal_rate * 100.0])

    text = format_table(
        ["benchmark", "correct %", "non-fatal mispred %", "fatal mispred %"],
        rows, title="Figure 5 - width prediction accuracy (policy: +CR)",
        float_format="{:.2f}")
    write_result("fig05_prediction_accuracy", text)

    # Shape checks: high accuracy, small fatal rate, and the confidence gate
    # reduces the fatal rate (2.11% -> 0.83% in the paper).
    assert avg_acc > 85.0
    assert avg_fatal < 5.0
    assert gated.prediction.fatal_rate <= ungated.prediction.fatal_rate
