"""Figure 7: instructions steered to the helper cluster and inter-cluster
copies under the 8-8-8 scheme.

The paper reports ~15% of instructions steered to the helper cluster with a
relatively large number of copy instructions (the narrow values produced are
often consumed for addressing/indexing in the wide cluster).
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig07_888_steering_copies(benchmark, ladder_sweep):
    policy = "n888"

    def collect():
        return {
            name: (ladder_sweep.results[name].by_policy[policy].helper_fraction,
                   ladder_sweep.results[name].by_policy[policy].copy_fraction)
            for name in SPEC_INT_NAMES
        }

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[name, data[name][0] * 100.0, data[name][1] * 100.0]
            for name in SPEC_INT_NAMES]
    avg_helper = mean(v[0] for v in data.values()) * 100.0
    avg_copies = mean(v[1] for v in data.values()) * 100.0
    rows.append(["AVG", avg_helper, avg_copies])
    text = format_table(
        ["benchmark", "helper-cluster instructions %", "copy instructions %"],
        rows, title="Figure 7 - steering and copies under 8-8-8",
        float_format="{:.2f}")
    write_result("fig07_888_steering_copies", text)

    # Shape checks: a modest fraction of instructions reaches the helper
    # cluster under the restrictive 8-8-8 rule, and copies are substantial
    # relative to helper instructions (the scheme's weakness that BR/LR fix).
    assert 5.0 <= avg_helper <= 60.0
    assert avg_copies > 5.0
