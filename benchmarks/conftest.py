"""Shared fixtures for the benchmark harness.

Every figure/table benchmark draws from a single session-scoped policy-ladder
sweep over the 12 SPEC Int 2000 profiles, executed through the parallel sweep
engine (:mod:`repro.sim.engine`), so each (benchmark, policy) pair is
simulated exactly once per session — or not at all when a result cache is
configured and warm.

Environment knobs:

* ``REPRO_BENCH_UOPS`` — trace length per benchmark (default 5000 uops; the
  paper uses 100M-instruction traces, see DESIGN.md for the scaling note).
* ``REPRO_BENCH_SEED`` — generator seed (default 2006).
* ``REPRO_BENCH_JOBS`` — engine worker processes for the ladder sweep
  (default 1 = serial; 0 = one per CPU).  Serial and parallel runs produce
  bit-identical results.
* ``REPRO_BENCH_CACHE_DIR`` — directory for the on-disk result cache
  (default unset = no cache, every result recomputed).
* ``REPRO_BENCH_APPS_PER_CATEGORY`` — applications sampled per Table 2
  category for the Figure 14 benchmark (default 4; 0 = the full 409-app
  suite).

Each benchmark writes the series it regenerates to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import pytest

from repro.sim.experiment import ExperimentRunner, PolicySweepResult
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES

from _bench_utils import BENCH_CACHE_DIR, BENCH_JOBS, BENCH_SEED, BENCH_UOPS, LADDER


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Shared engine-backed experiment runner (caches traces and baselines)."""
    return ExperimentRunner(trace_uops=BENCH_UOPS, seed=BENCH_SEED,
                            jobs=BENCH_JOBS, cache_dir=BENCH_CACHE_DIR)


@pytest.fixture(scope="session")
def ladder_sweep(runner) -> PolicySweepResult:
    """The full policy ladder over the 12 SPEC Int 2000 profiles."""
    profiles = [SPEC_INT_2000[name] for name in SPEC_INT_NAMES]
    return runner.run_suite(profiles, LADDER)


@pytest.fixture(scope="session")
def spec_traces(runner):
    """The 12 SPEC Int traces used by the characterisation figures."""
    return {name: runner.trace_for(SPEC_INT_2000[name]) for name in SPEC_INT_NAMES}
