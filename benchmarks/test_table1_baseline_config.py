"""Table 1: the monolithic baseline processor parameters.

Checks that the machine configuration the simulator instantiates matches the
paper's Table 1 point-for-point, and regenerates the table.
"""

from repro.core.config import TABLE_1_PARAMETERS, baseline_config, helper_cluster_config
from repro.sim.baseline import simulate_baseline
from repro.sim.reporting import format_table
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace

from _bench_utils import BENCH_SEED, write_result


def test_table1_baseline_config(benchmark):
    config = baseline_config()
    helper = helper_cluster_config()

    # Time a short representative baseline simulation so the harness reports
    # the cost of the Table 1 machine itself.
    trace = generate_trace(get_profile("gcc"), 2000, seed=BENCH_SEED)
    result = benchmark.pedantic(lambda: simulate_baseline(trace), rounds=1, iterations=1)

    rows = [[name, value] for name, value in TABLE_1_PARAMETERS.items()]
    rows.append(["Measured baseline IPC (gcc, 2K uops)", f"{result.ipc:.2f}"])
    text = format_table(["parameter", "value"], rows,
                        title="Table 1 - monolithic baseline parameters")
    write_result("table1_baseline_config", text)

    # Table 1 values, point for point.
    assert config.trace_cache.capacity_uops == 32 * 1024
    assert config.trace_cache.associativity == 4
    assert config.memory.dl0.size_bytes == 32 * 1024
    assert config.memory.dl0.associativity == 8
    assert config.memory.dl0.hit_latency == 3
    assert config.memory.dl0.ports == 2
    assert config.memory.ul1.size_bytes == 4 * 1024 * 1024
    assert config.memory.ul1.associativity == 16
    assert config.memory.ul1.hit_latency == 13
    assert config.memory.main_memory_latency == 450
    assert config.scheduler.queue_size == 32
    assert config.scheduler.issue_width == 3
    assert config.fp_scheduler.queue_size == 32
    assert config.commit_width == 6
    assert not config.helper.enabled

    # The helper-cluster machine adds only the §2 parameters on top.
    assert helper.helper.enabled
    assert helper.helper.narrow_width == 8
    assert helper.helper.clock_ratio == 2
    assert helper.predictor.table_entries == 256
    assert result.committed_uops == len(trace)
