"""Ablations on the helper cluster's design point (§2).

Two sweeps:

* **Narrow width** — §2.1 notes that 8 bits is a conservative choice and that
  a wider narrow cluster would capture more instructions (at higher cost).
  We sweep 4/8/16 bits and report the helper-cluster instruction share and
  speedup.
* **Clock ratio** — §2.2 argues the 8-bit backend can be clocked 2x faster;
  the ratio ablation quantifies how much of the benefit comes from the faster
  clock versus the extra issue capacity (ratio 1 = symmetric second cluster).
"""

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.sim.metrics import speedup
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.profiles import get_profile

from _bench_utils import mean, write_result

BENCHMARKS = ["gcc", "gzip", "bzip2"]
POLICY = "n888_br_lr_cr"
WIDTHS = [4, 8, 16]
RATIOS = [1, 2]


def _run(runner, config):
    gains, helper_fractions = [], []
    for name in BENCHMARKS:
        profile = get_profile(name)
        trace = runner.trace_for(profile)
        base = runner.baseline_for(profile)
        result = simulate(trace, config=config, policy=make_policy(POLICY))
        gains.append(speedup(base, result))
        helper_fractions.append(result.helper_fraction)
    return mean(gains), mean(helper_fractions)


def test_ablation_helper_width(benchmark, runner):
    def sweep():
        return {width: _run(runner, helper_cluster_config(narrow_width=width))
                for width in WIDTHS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[width, results[width][1] * 100.0, results[width][0] * 100.0]
            for width in WIDTHS]
    text = format_table(["narrow width (bits)", "helper instructions %", "mean speedup %"],
                        rows, title="Ablation - helper-cluster datapath width",
                        float_format="{:.2f}")
    write_result("ablation_helper_width", text)

    # §2.1's monotonicity claim: a wider narrow cluster executes at least as
    # many instructions as a narrower one.
    assert results[16][1] >= results[8][1] - 0.02
    assert results[8][1] >= results[4][1] - 0.02


def test_ablation_clock_ratio(benchmark, runner):
    def sweep():
        return {ratio: _run(runner, helper_cluster_config(clock_ratio=ratio))
                for ratio in RATIOS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[ratio, results[ratio][1] * 100.0, results[ratio][0] * 100.0]
            for ratio in RATIOS]
    text = format_table(["helper clock ratio", "helper instructions %", "mean speedup %"],
                        rows, title="Ablation - helper-cluster clock ratio",
                        float_format="{:.2f}")
    write_result("ablation_clock_ratio", text)

    # The 2x-clocked helper backend must not lose to the symmetric (1x) one.
    assert results[2][0] >= results[1][0] - 0.01
