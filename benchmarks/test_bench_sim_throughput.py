"""Simulator throughput on the headline ladder — the perf trajectory.

Emits ``benchmarks/results/BENCH_sim.json`` with wall-clock and uops/sec for
the headline policy ladder (12 SPEC Int profiles x baseline + 7 ladder
policies) under the configurations that matter for sweep throughput:

* ``serial_cold``    — one process, nothing warm: the raw simulator number
  under the auto-detected backend (compiled when the ``repro._corekernel``
  extension is built).
* ``serial_cold_python`` — the same sweep with ``REPRO_BACKEND=python``
  forced, so the artefact always carries a per-backend pair.
* ``serial_warm_traces`` — fresh "process" (cleared memo) over a warm trace
  store: what a second sweep session pays when only traces are reusable.
* ``parallel_cold``  — the ``--jobs`` path through the persistent worker
  pool (trace store seeded by the parent; on real machines the fan-out
  win — on a 1-CPU box the engine clamps the request to serial, and the
  scenario records the effective ``jobs`` plus ``jobs_requested``).
* ``warm_cache``     — warm on-disk result cache: repeat sweeps are served
  from content-addressed entries.
* ``dispatch_chain`` / ``dispatch_chain_python`` — one helper-cluster run
  (gcc / IR, no baseline, no sweep engine) per backend: isolates the
  per-uop dispatch/resolve/wakeup chain the compiled kernels target, which
  the ladder number dilutes with engine and baseline costs.

CI's perf smoke job sets ``REPRO_BENCH_ENFORCE=1`` to fail on a >25%
uops/sec regression against the committed JSON (``REPRO_BENCH_TOLERANCE``
overrides the margin).  ``warm_cache`` is gated too, at a wider default
margin (``REPRO_BENCH_TOLERANCE_WARM``, 60%): its wall is milliseconds,
so only structural cache-path regressions (an extra decode or sync per
entry reads as 2x+) should trip it, never timer noise.  The gate is per
backend: each serial-cold scenario
records which backend produced it and is only compared against a committed
scenario measured under the same backend, so a runner without a compiler
cannot trip the compiled number (and vice versa).  Without the env var the
benchmark only measures and rewrites the artefact, so local runs on
different hardware never fail spuriously.

Scope knob: ``REPRO_BENCH_SIM_BENCHMARKS=gcc,gzip`` restricts the ladder to
a subset (the CI smoke uses this to stay fast); the committed artefact is
regenerated with the full suite.
"""

from __future__ import annotations

import json
import os
import time

from repro.sim import engine as engine_mod
from repro.sim.experiment import ExperimentRunner
from repro.sim.hotstate import BACKEND_ENV, detected_backend
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES

from _bench_utils import BENCH_SEED, BENCH_UOPS, LADDER, RESULTS_DIR

BENCH_JSON = RESULTS_DIR / "BENCH_sim.json"

_subset = os.environ.get("REPRO_BENCH_SIM_BENCHMARKS", "")
BENCHMARKS = ([name for name in _subset.split(",") if name]
              if _subset else list(SPEC_INT_NAMES))
POLICY_COUNT = len(LADDER) + 1  # ladder policies + the shared baseline


def _calibration_rate() -> int:
    """Machine-speed proxy (ops/sec) for cross-machine gate normalisation.

    A fixed, deterministic pure-Python workload with the simulator's op mix
    (dict probes, attribute-free arithmetic, bound-method calls).  The CI
    gate compares *calibration-normalised* throughput, so a slower or
    faster runner generation shifts both sides together and only genuine
    simulator regressions trip the gate.
    """
    best = 0.0
    for _ in range(3):
        table = {}
        get = table.get
        accum = 0
        iterations = 300_000
        start = time.perf_counter()
        for i in range(iterations):
            table[i & 1023] = i
            accum += get((i * 7) & 1023, 0) & 1
        elapsed = time.perf_counter() - start
        best = max(best, iterations / elapsed)
    return round(best)


def _fingerprint(sweep):
    return {(b, p): (sweep.results[b].by_policy[p].ipc,
                     sweep.results[b].by_policy[p].fast_cycles)
            for b in sweep.benchmarks for p in sweep.policies}


def _run_ladder(tmp_path, label, jobs=1, cache_dir=None, store_dir=None):
    """One timed ladder sweep under a fresh runner."""
    profiles = [SPEC_INT_2000[name] for name in BENCHMARKS]
    runner = ExperimentRunner(trace_uops=BENCH_UOPS, seed=BENCH_SEED,
                              jobs=jobs, cache_dir=cache_dir,
                              trace_store_dir=store_dir)
    start = time.perf_counter()
    sweep = runner.run_suite(profiles, LADDER)
    wall = time.perf_counter() - start
    runner.engine.close()
    total_uops = BENCH_UOPS * POLICY_COUNT * len(BENCHMARKS)
    scenario = {
        "wall_s": round(wall, 3),
        "uops_per_sec": round(total_uops / wall),
        # The *effective* worker count: the engine clamps requests beyond
        # the host's usable CPUs (the requested figure is kept alongside,
        # so a 1-CPU artefact is honest about parallel_cold being serial).
        "jobs": runner.engine.jobs,
        "result_cache": bool(cache_dir),
        "backend": detected_backend(),
    }
    if runner.engine.jobs_clamped_from:
        scenario["jobs_requested"] = runner.engine.jobs_clamped_from
    return sweep, scenario


def _run_dispatch_chain():
    """Time the per-uop dispatch/steer/writeback chain in isolation.

    One helper-cluster run (no baseline, no sweep engine) over the gcc
    profile under the IR policy: dispatch + resolve + wakeup dominate this
    configuration, so the scenario isolates the compiled dispatch-chain
    kernels the ladder number dilutes with engine and baseline costs.
    Min-of-3 discards scheduler blips.
    """
    from repro.core.config import helper_cluster_config
    from repro.core.steering import make_policy
    from repro.sim.simulator import simulate
    from repro.trace.synthetic import generate_trace

    profile = SPEC_INT_2000["gcc"]
    trace = generate_trace(profile, BENCH_UOPS, seed=BENCH_SEED)
    config = helper_cluster_config()
    best_wall = None
    result = None
    for _ in range(3):
        start = time.perf_counter()
        run = simulate(trace, config=config, policy=make_policy("ir"))
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
        if result is None:
            result = run
        else:
            assert (run.ipc, run.fast_cycles) == (result.ipc,
                                                  result.fast_cycles)
    scenario = {
        "wall_s": round(best_wall, 3),
        "uops_per_sec": round(BENCH_UOPS / best_wall),
        "backend": detected_backend(),
    }
    return result, scenario


def test_bench_sim_throughput(tmp_path):
    scenarios = {}

    # -- serial, nothing warm: auto-detected backend vs forced pure python --
    # (identical when no extension is built; per-backend throughput is what
    # the perf gate compares).  Two interleaved rounds per backend, keeping
    # each scenario's fastest: single-shot wall-clock on a small shared box
    # is ~10% noisy and whichever scenario runs first also pays machine
    # cold-start, so a one-shot artefact can invert the backend comparison.
    # The min-of-interleaved estimator (same as BENCH_energy's) discards
    # scheduler blips instead of committing them.
    reference = None
    for round_index in range(2):
        for key, forced in (("serial_cold", None),
                            ("serial_cold_python", "python")):
            engine_mod._trace_memo.clear()
            saved_backend = os.environ.get(BACKEND_ENV)
            if forced:
                os.environ[BACKEND_ENV] = forced
            try:
                sweep, scenario = _run_ladder(
                    tmp_path, key,
                    store_dir=str(tmp_path / f"traces-{key}-{round_index}"))
            finally:
                if forced is None:
                    pass
                elif saved_backend is None:
                    os.environ.pop(BACKEND_ENV, None)
                else:
                    os.environ[BACKEND_ENV] = saved_backend
            if reference is None:
                reference = sweep
            else:
                assert _fingerprint(sweep) == _fingerprint(reference)
            if (key not in scenarios
                    or scenario["wall_s"] < scenarios[key]["wall_s"]):
                scenarios[key] = scenario

    # -- dispatch-chain microbenchmark: one run, no engine, per backend ------
    chain_reference = None
    for key, forced in (("dispatch_chain", None),
                        ("dispatch_chain_python", "python")):
        saved_backend = os.environ.get(BACKEND_ENV)
        if forced:
            os.environ[BACKEND_ENV] = forced
        try:
            chain_result, scenarios[key] = _run_dispatch_chain()
        finally:
            if forced is None:
                pass
            elif saved_backend is None:
                os.environ.pop(BACKEND_ENV, None)
            else:
                os.environ[BACKEND_ENV] = saved_backend
        if chain_reference is None:
            chain_reference = chain_result
        else:
            assert (chain_result.ipc, chain_result.fast_cycles) == (
                chain_reference.ipc, chain_reference.fast_cycles)

    # -- fresh process over a warm trace store (seeded by round 0 above) -----
    engine_mod._trace_memo.clear()
    warm_traces, scenarios["serial_warm_traces"] = _run_ladder(
        tmp_path, "serial_warm_traces",
        store_dir=str(tmp_path / "traces-serial_cold-0"))
    assert _fingerprint(warm_traces) == _fingerprint(reference)

    # -- the --jobs path (persistent pool; parent seeds the trace store) -----
    engine_mod._trace_memo.clear()
    jobs = max(2, int(os.environ.get("REPRO_BENCH_JOBS", "1") or 1))
    parallel, scenarios["parallel_cold"] = _run_ladder(
        tmp_path, "parallel_cold", jobs=jobs,
        store_dir=str(tmp_path / "traces-par"))
    assert _fingerprint(parallel) == _fingerprint(reference)

    # -- warm on-disk result cache -------------------------------------------
    # Min-of-3: a warm sweep is ~milliseconds of pure cache decode, so a
    # single scheduler blip can multiply the wall several-fold; taking the
    # fastest repeat keeps the artefact (and the gate below) measuring the
    # cache path, not the box.
    cache_dir = tmp_path / "cache"
    _run_ladder(tmp_path, "cache_fill", cache_dir=str(cache_dir))
    for _ in range(3):
        engine_mod._trace_memo.clear()
        cached, warm_scenario = _run_ladder(
            tmp_path, "warm_cache", cache_dir=str(cache_dir))
        assert _fingerprint(cached) == _fingerprint(reference)
        if ("warm_cache" not in scenarios
                or warm_scenario["wall_s"] < scenarios["warm_cache"]["wall_s"]):
            scenarios["warm_cache"] = warm_scenario

    calibration = _calibration_rate()
    payload = {
        "benchmark": "headline_policy_ladder",
        "benchmarks": BENCHMARKS,
        "policies": POLICY_COUNT,
        "trace_uops": BENCH_UOPS,
        "seed": BENCH_SEED,
        "calibration_ops_per_sec": calibration,
        "scenarios": scenarios,
    }

    committed = (json.loads(BENCH_JSON.read_text(encoding="utf-8"))
                 if BENCH_JSON.exists() else {})

    # Regression gate against the committed artefact (CI perf smoke).  Both
    # sides are normalised by their own machine's calibration rate, so the
    # comparison survives runner-hardware differences; an artefact without
    # a calibration figure falls back to raw uops/sec (same-machine only).
    # Per-backend: a scenario only gates against a committed scenario that
    # was measured under the same backend.
    if os.environ.get("REPRO_BENCH_ENFORCE") == "1":
        tolerance = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25"))
        # The warm-cache sweep is milliseconds long, so even min-of-3 is
        # noisier than the multi-second scenarios; its gate only catches
        # structural cache-path regressions (an extra decode or fsync per
        # entry shows up as 2x+), not percent-level drift.
        warm_tolerance = float(
            os.environ.get("REPRO_BENCH_TOLERANCE_WARM", "0.6"))
        old_calibration = committed.get("calibration_ops_per_sec")
        for key in ("serial_cold", "serial_cold_python",
                    "dispatch_chain", "dispatch_chain_python",
                    "warm_cache"):
            old = committed.get("scenarios", {}).get(key, {})
            old_rate = old.get("uops_per_sec")
            new = scenarios[key]
            new_rate = new["uops_per_sec"]
            if not old_rate:
                continue
            if old.get("backend", "python") != new["backend"]:
                continue  # e.g. the runner could not build the extension
            if old_calibration:
                old_norm = old_rate / old_calibration
                new_norm = new_rate / calibration
            else:
                old_norm, new_norm = old_rate, new_rate
            margin = warm_tolerance if key == "warm_cache" else tolerance
            assert new_norm >= old_norm * (1.0 - margin), (
                f"simulator throughput regressed beyond {margin:.0%}: "
                f"{new_rate} uops/s (calibration {calibration}) vs committed "
                f"{old_rate} uops/s (calibration {old_calibration}) "
                f"({key}, backend {new['backend']}, "
                f"{BENCH_UOPS}-uop ladder)")

    # Only the full-suite run rewrites the committed artefact; a scoped CI
    # smoke must not overwrite it with subset numbers.  The one-off pre-PR
    # measurement block is carried over so the before/after record of the
    # event-wheel PR survives regeneration, with BOTH speedup multiples
    # recomputed against this run's numbers — they track *current HEAD*
    # vs the frozen pre-event-wheel measurement (the whole trajectory
    # since, regressions included), not any single PR's own win, and the
    # note says so.
    if not _subset:
        if "pre_pr_reference" in committed:
            pre = dict(committed["pre_pr_reference"])
            pre_rate = pre.get("serial_cold", {}).get("uops_per_sec")
            if pre_rate:
                pre["note"] = (
                    "pre-event-wheel code (commit a4bdb9a) measured on the "
                    "same 1-CPU container, same 8000-uop 12-benchmark "
                    "ladder, serial cold.  The multiples below compare "
                    "CURRENT HEAD (this artefact's scenarios) against that "
                    "frozen measurement at equal conditions — they track "
                    "the whole trajectory since the event-wheel PR, not "
                    "that PR's own speedup, and are recomputed on every "
                    "regeneration.")
                pre["serial_cold_speedup_vs_pre_pr"] = round(
                    scenarios["serial_cold"]["uops_per_sec"] / pre_rate, 3)
                pre["warm_cache_speedup_vs_pre_pr_cold"] = round(
                    scenarios["warm_cache"]["uops_per_sec"] / pre_rate, 1)
            payload["pre_pr_reference"] = pre
        BENCH_JSON.parent.mkdir(parents=True, exist_ok=True)
        BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True)
                              + "\n", encoding="utf-8")
