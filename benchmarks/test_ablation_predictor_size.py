"""Ablation: width-predictor table size.

§3.2 states that 256 entries "was found to be a good compromise between
complexity and performance".  This ablation sweeps the table size and reports
prediction accuracy and speedup so the knee of that curve can be inspected.
"""

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.sim.metrics import speedup
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.profiles import get_profile

from _bench_utils import BENCH_SEED, BENCH_UOPS, mean, write_result

SIZES = [16, 64, 256, 1024]
BENCHMARKS = ["gcc", "gzip", "crafty"]
POLICY = "n888_br_lr_cr"


def test_ablation_predictor_size(benchmark, runner):
    def sweep():
        out = {}
        for size in SIZES:
            config = helper_cluster_config(predictor_entries=size)
            gains, accuracies = [], []
            for name in BENCHMARKS:
                profile = get_profile(name)
                trace = runner.trace_for(profile)
                base = runner.baseline_for(profile)
                result = simulate(trace, config=config, policy=make_policy(POLICY))
                gains.append(speedup(base, result))
                accuracies.append(result.prediction.accuracy)
            out[size] = (mean(gains), mean(accuracies))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[size, results[size][1] * 100.0, results[size][0] * 100.0]
            for size in SIZES]
    text = format_table(
        ["predictor entries", "prediction accuracy %", "mean speedup %"],
        rows, title="Ablation - width predictor table size (policy: +CR)",
        float_format="{:.2f}")
    write_result("ablation_predictor_size", text)

    # A very small table must not beat the paper's 256-entry design point on
    # prediction accuracy (aliasing destroys per-PC history).
    assert results[256][1] >= results[16][1] - 0.02
    # Growing beyond 256 entries brings little additional accuracy, which is
    # the paper's "good compromise" argument.
    assert results[1024][1] - results[256][1] < 0.08
