"""§3.6: copy prefetching (CP).

The paper reports that CP raises the copy percentage to 21.4% but improves
the average speedup from 14.5% to 16.7%, and that the CP predictor is about
90% accurate.  This benchmark regenerates the CP row of that comparison.
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_sec36_cp_prefetching(benchmark, ladder_sweep):
    def collect():
        out = {}
        for name in SPEC_INT_NAMES:
            before = ladder_sweep.results[name].by_policy["n888_br_lr_cr"]
            after = ladder_sweep.results[name].by_policy["n888_br_lr_cr_cp"]
            out[name] = (ladder_sweep.results[name].speedup("n888_br_lr_cr"),
                         ladder_sweep.results[name].speedup("n888_br_lr_cr_cp"),
                         before.copy_fraction, after.copy_fraction,
                         after.prefetched_copies, after.cp_prediction_accuracy)
        return out

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        speed_cr, speed_cp, copies_cr, copies_cp, prefetches, accuracy = data[name]
        rows.append([name, speed_cr * 100.0, speed_cp * 100.0, copies_cr * 100.0,
                     copies_cp * 100.0, prefetches, accuracy * 100.0])
    rows.append([
        "AVG",
        mean(v[0] for v in data.values()) * 100.0,
        mean(v[1] for v in data.values()) * 100.0,
        mean(v[2] for v in data.values()) * 100.0,
        mean(v[3] for v in data.values()) * 100.0,
        mean(v[4] for v in data.values()),
        mean(v[5] for v in data.values()) * 100.0,
    ])
    text = format_table(
        ["benchmark", "speedup % (CR)", "speedup % (CR+CP)", "copies % (CR)",
         "copies % (CR+CP)", "prefetched copies", "CP predictor accuracy %"],
        rows, title="§3.6 - copy prefetching", float_format="{:.2f}")
    write_result("sec36_cp_prefetching", text)

    avg_copies_cr = mean(v[2] for v in data.values())
    avg_copies_cp = mean(v[3] for v in data.values())
    avg_accuracy = mean(v[5] for v in data.values())
    total_prefetches = sum(v[4] for v in data.values())

    # Shape checks: CP generates prefetched copies (raising the copy count,
    # as the paper observes) and its last-value predictor is highly accurate
    # (~90% in the paper).
    assert total_prefetches > 0
    assert avg_copies_cp >= avg_copies_cr
    assert avg_accuracy > 0.6
