"""Figure 9: load replication (LR) further reduces the copy percentage.

The paper reports copies dropping from 10.8% (8-8-8 + BR) to 6.4% once
narrow loads allocate their result register in both clusters through the
shared MOB.
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig09_lr_copies(benchmark, ladder_sweep):
    def collect():
        return {
            name: (ladder_sweep.results[name].by_policy["n888"].copy_fraction,
                   ladder_sweep.results[name].by_policy["n888_br"].copy_fraction,
                   ladder_sweep.results[name].by_policy["n888_br_lr"].copy_fraction)
            for name in SPEC_INT_NAMES
        }

    copies = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[name] + [v * 100.0 for v in copies[name]] for name in SPEC_INT_NAMES]
    averages = [mean(copies[name][i] for name in SPEC_INT_NAMES) * 100.0 for i in range(3)]
    rows.append(["AVG"] + averages)
    text = format_table(
        ["benchmark", "copies % (8-8-8)", "copies % (+BR)", "copies % (+BR+LR)"],
        rows, title="Figure 9 - copy minimisation from load replication",
        float_format="{:.2f}")
    write_result("fig09_lr_copies", text)

    replicated = sum(ladder_sweep.results[name].by_policy["n888_br_lr"].replicated_loads
                     for name in SPEC_INT_NAMES)

    # LR must not increase copies, and the BR+LR stack must sit at or below
    # the plain 8-8-8 copy level (the paper's 15% -> 10.8% -> 6.4% shape).
    assert averages[2] <= averages[1] * 1.02
    assert averages[2] < averages[0]
    assert replicated > 0
