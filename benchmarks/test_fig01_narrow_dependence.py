"""Figure 1 + §1 statistics: narrow data-width dependent register operands.

Regenerates, per SPEC Int 2000 application, the percentage of register
operands whose producer value is narrow (Figure 1; the paper reports roughly
40-90% with a ~65% average), plus the §1 ALU-operand breakdown (39.4% one
narrow operand / 3.3% two narrow + wide result / 43.5% two narrow + narrow
result).
"""

from repro.analysis.narrowness import analyze_narrowness
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig01_narrow_dependence(benchmark, spec_traces):
    reports = {}

    def analyze_all():
        for name in SPEC_INT_NAMES:
            reports[name] = analyze_narrowness(spec_traces[name])
        return reports

    benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        report = reports[name]
        rows.append([name, report.narrow_dependence_fraction * 100.0,
                     report.one_narrow_fraction * 100.0,
                     report.two_narrow_narrow_fraction * 100.0])
    avg_dependence = mean(r[1] for r in rows)
    avg_one_narrow = mean(r[2] for r in rows)
    avg_two_narrow = mean(r[3] for r in rows)
    rows.append(["AVG", avg_dependence, avg_one_narrow, avg_two_narrow])
    text = format_table(
        ["benchmark", "narrow-dependent operands %", "ALU 1-narrow %",
         "ALU 2-narrow->narrow %"],
        rows, title="Figure 1 / §1 - narrow data-width dependence",
        float_format="{:.1f}")
    write_result("fig01_narrow_dependence", text)

    # Shape checks: substantial narrow dependence on average, with the
    # byte-crunching codes (gzip, bzip2) above the bitboard/FP codes
    # (crafty, vpr), as in the paper's Figure 1.
    by_name = {row[0]: row[1] for row in rows}
    assert 40.0 <= avg_dependence <= 95.0
    assert by_name["gzip"] > by_name["crafty"]
    assert by_name["gzip"] > by_name["vpr"]
    # §1: the two-narrow -> narrow-result case is a large category.
    assert avg_two_narrow > 15.0
