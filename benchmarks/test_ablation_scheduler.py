"""Ablation: scheduler (issue queue) size and issue width sensitivity.

§2.2 notes that if the critical path were in structures other than the ALU
and bypass, the helper cluster could run with a reduced issue queue size and
issue width, and that experiments showed negligible performance impact.  This
ablation reproduces that experiment: the +CR configuration is run with the
Table 1 scheduler (32 entries, 3-issue) and with reduced schedulers.
"""

from repro.core.config import helper_cluster_config
from repro.core.steering import make_policy
from repro.sim.metrics import speedup
from repro.sim.reporting import format_table
from repro.sim.simulator import simulate
from repro.trace.profiles import get_profile

from _bench_utils import mean, write_result

BENCHMARKS = ["gcc", "gzip"]
POLICY = "n888_br_lr_cr"
VARIANTS = {
    "32 entries / 3 issue (Table 1)": dict(queue_size=32, issue_width=3),
    "24 entries / 3 issue": dict(queue_size=24, issue_width=3),
    "16 entries / 2 issue": dict(queue_size=16, issue_width=2),
}


def test_ablation_scheduler(benchmark, runner):
    def sweep():
        out = {}
        for label, params in VARIANTS.items():
            config = helper_cluster_config().with_scheduler(**params)
            gains = []
            for name in BENCHMARKS:
                profile = get_profile(name)
                trace = runner.trace_for(profile)
                base = runner.baseline_for(profile)
                result = simulate(trace, config=config, policy=make_policy(POLICY))
                gains.append(speedup(base, result))
            out[label] = mean(gains)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [[label, gain * 100.0] for label, gain in results.items()]
    text = format_table(["scheduler configuration", "mean speedup %"], rows,
                        title="Ablation - scheduler size / issue width (§2.2)",
                        float_format="{:.2f}")
    write_result("ablation_scheduler", text)

    # §2.2's claim: moderately reducing the scheduler has limited impact on
    # the helper cluster's benefit (within a few points of the full design).
    full = results["32 entries / 3 issue (Table 1)"]
    reduced = results["24 entries / 3 issue"]
    assert abs(full - reduced) < 0.08
