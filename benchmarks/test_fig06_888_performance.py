"""Figure 6: performance of the plain 8-8-8 steering scheme.

Regenerates the per-application speedup of the helper cluster under the
8-8-8 policy relative to the monolithic baseline.  The paper reports a 6.2%
average, with gcc the best performer and bzip2 the worst (it has the highest
copy-to-narrow-instruction ratio).
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig06_888_performance(benchmark, ladder_sweep, runner):
    policy = "n888"

    def collect():
        return {name: ladder_sweep.results[name].speedup(policy)
                for name in SPEC_INT_NAMES}

    speedups = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[name, speedups[name] * 100.0] for name in SPEC_INT_NAMES]
    avg = mean(speedups.values())
    rows.append(["AVG", avg * 100.0])
    text = format_table(["benchmark", "performance increase %"], rows,
                        title="Figure 6 - performance of the 8-8-8 scheme",
                        float_format="{:.2f}")
    write_result("fig06_888_performance", text)

    # Shape checks: positive on average; the copy-heavy benchmark (bzip2's
    # narrow values feed wide addressing) should not be the best performer,
    # matching the paper's observation about copy/narrow ratios.
    assert avg > 0.0
    copy_ratio = {
        name: (ladder_sweep.results[name].by_policy[policy].copy_fraction
               / max(1e-9, ladder_sweep.results[name].by_policy[policy].helper_fraction))
        for name in SPEC_INT_NAMES
    }
    best = max(speedups, key=speedups.get)
    worst = min(speedups, key=speedups.get)
    assert copy_ratio[worst] >= copy_ratio[best] * 0.5
