"""§3.7: instruction splitting for imbalance reduction (IR) and its
no-destination fine tuning.

The paper reports that splitting wide instructions toward the underutilised
helper cluster raises the helper-cluster instruction share to 72.4% (speedup
22.1%) while cutting the wide-to-narrow NREADY imbalance from 22% to 2.3%,
and that the fine-tuned variant (split only destination-less instructions)
trades a little imbalance for a copy reduction from 36.9% to 24.4%.
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_sec37_ir_splitting(benchmark, ladder_sweep):
    def collect():
        out = {}
        for name in SPEC_INT_NAMES:
            cp = ladder_sweep.results[name].by_policy["n888_br_lr_cr_cp"]
            ir = ladder_sweep.results[name].by_policy["ir"]
            nodest = ladder_sweep.results[name].by_policy["ir_nodest"]
            out[name] = (ladder_sweep.results[name].speedup("ir"),
                         ladder_sweep.results[name].speedup("ir_nodest"),
                         ir.helper_fraction, ir.copy_fraction, nodest.copy_fraction,
                         ir.split_uops, cp.wide_to_narrow_imbalance,
                         ir.wide_to_narrow_imbalance)
        return out

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        (speed_ir, speed_nd, helper_ir, copies_ir, copies_nd, splits,
         imb_before, imb_after) = data[name]
        rows.append([name, speed_ir * 100.0, speed_nd * 100.0, helper_ir * 100.0,
                     copies_ir * 100.0, copies_nd * 100.0, splits,
                     imb_before * 100.0, imb_after * 100.0])
    rows.append([
        "AVG",
        mean(v[0] for v in data.values()) * 100.0,
        mean(v[1] for v in data.values()) * 100.0,
        mean(v[2] for v in data.values()) * 100.0,
        mean(v[3] for v in data.values()) * 100.0,
        mean(v[4] for v in data.values()) * 100.0,
        mean(v[5] for v in data.values()),
        mean(v[6] for v in data.values()) * 100.0,
        mean(v[7] for v in data.values()) * 100.0,
    ])
    text = format_table(
        ["benchmark", "speedup % (IR)", "speedup % (IR-nodest)", "helper % (IR)",
         "copies % (IR)", "copies % (IR-nodest)", "split uops",
         "w2n imbalance % (pre-IR)", "w2n imbalance % (IR)"],
        rows, title="§3.7 - instruction splitting for imbalance reduction",
        float_format="{:.2f}")
    write_result("sec37_ir_splitting", text)

    avg = rows[-1]
    total_splits = sum(v[5] for v in data.values())

    # Shape checks mirroring the paper's three claims: splitting happens when
    # imbalance exists, the fine-tuned variant generates fewer copies than
    # full IR, and the stack remains profitable on average.
    assert total_splits > 0
    assert avg[5] <= avg[4]          # IR-nodest copies <= IR copies
    assert avg[1] > 0.0 or avg[2] > 0.0
