"""Figure 12: performance of the carry-width prediction (CR) scheme.

The paper reports that adding CR raises the helper-cluster instruction share
to 47.5% (copies 15.7%) and the average speedup to 14.5%, up from the 8-8-8
baseline of 6.2%.
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig12_cr_performance(benchmark, ladder_sweep):
    def collect():
        return {
            name: (ladder_sweep.results[name].speedup("n888"),
                   ladder_sweep.results[name].speedup("n888_br_lr_cr"))
            for name in SPEC_INT_NAMES
        }

    speedups = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[name, speedups[name][0] * 100.0, speedups[name][1] * 100.0]
            for name in SPEC_INT_NAMES]
    avg_n888 = mean(v[0] for v in speedups.values()) * 100.0
    avg_cr = mean(v[1] for v in speedups.values()) * 100.0
    rows.append(["AVG", avg_n888, avg_cr])
    text = format_table(
        ["benchmark", "speedup % (8-8-8)", "speedup % (+BR+LR+CR)"],
        rows, title="Figure 12 - performance of the CR scheme",
        float_format="{:.2f}")
    write_result("fig12_cr_performance", text)

    helper_n888 = ladder_sweep.mean_helper_fraction("n888")
    helper_cr = ladder_sweep.mean_helper_fraction("n888_br_lr_cr")

    # Shape checks: CR substantially increases the helper-cluster share and
    # does not lose performance on average relative to plain 8-8-8.
    assert helper_cr > helper_n888 + 0.08
    assert avg_cr >= avg_n888 - 0.5
    assert avg_cr > 0.0
