"""Table 2: the workload-category suite used by the final study (§3.8).

Checks that the suite regenerates the paper's seven categories with the
reported per-category trace counts, and that the generated application
profiles inherit their category archetype's character.
"""

from repro.sim.reporting import format_table
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import (
    TOTAL_WORKLOAD_APPS,
    WORKLOAD_CATEGORIES,
    build_workload_suite,
)

from _bench_utils import write_result


def test_table2_workload_suite(benchmark):
    suite = benchmark.pedantic(lambda: build_workload_suite(apps_per_category=2),
                               rounds=1, iterations=1)

    rows = [[c.key, c.description, c.num_traces] for c in WORKLOAD_CATEGORIES.values()]
    rows.append(["total", "", TOTAL_WORKLOAD_APPS])
    text = format_table(["category", "description", "#traces"], rows,
                        title="Table 2 - workload categories")
    write_result("table2_workload_suite", text)

    # Table 2 counts, row for row.
    expected = {"enc": 62, "sfp": 41, "kernels": 52, "mm": 85, "office": 75,
                "prod": 45, "ws": 49}
    assert {k: c.num_traces for k, c in WORKLOAD_CATEGORIES.items()} == expected
    assert TOTAL_WORKLOAD_APPS == sum(expected.values())

    # The sampled suite instantiates every category deterministically and the
    # generated apps produce valid traces.
    assert len(suite) == 2 * len(expected)
    sample = suite[0]
    trace = generate_trace(sample.profile, 800, seed=sample.seed)
    trace.validate()

    # Category character survives perturbation: kernels/multimedia archetypes
    # are narrower than office/productivity ones.
    kernels = [a for a in suite if a.category == "kernels"]
    office = [a for a in suite if a.category == "office"]
    assert min(a.profile.narrow_data_fraction for a in kernels) > \
        max(a.profile.narrow_data_fraction for a in office) - 0.15
