"""Figure 13: average producer-consumer distance.

Copy prefetching works because the average distance between a producer and
its (first) consumer is a handful of uops — large enough for the prefetched
copy to arrive in time, small enough that it does not occupy backend
resources for long.  The paper's Figure 13 reports averages between roughly
2 and 6 uops across SPEC Int 2000.
"""

from repro.analysis.distance import producer_consumer_distance
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig13_producer_consumer_distance(benchmark, spec_traces):
    reports = {}

    def analyze_all():
        for name in SPEC_INT_NAMES:
            reports[name] = producer_consumer_distance(spec_traces[name])
        return reports

    benchmark.pedantic(analyze_all, rounds=1, iterations=1)

    rows = [[name, reports[name].mean_distance,
             reports[name].fraction_within(8) * 100.0]
            for name in SPEC_INT_NAMES]
    avg_distance = mean(r[1] for r in rows)
    rows.append(["AVG", avg_distance, mean(r[2] for r in rows)])
    text = format_table(
        ["benchmark", "mean producer-consumer distance (uops)",
         "pairs within 8 uops %"],
        rows, title="Figure 13 - producer-consumer distance",
        float_format="{:.2f}")
    write_result("fig13_producer_consumer_distance", text)

    # Shape check: the distance sits in the same small-integer band the paper
    # reports, which is the regime in which copy prefetching is effective.
    assert 1.0 <= avg_distance <= 10.0
    assert all(1.0 <= r[1] <= 16.0 for r in rows[:-1])
