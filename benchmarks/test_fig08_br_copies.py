"""Figure 8: the BR scheme reduces copy percentage while steering more
instructions to the helper cluster.

The paper reports that adding BR raises helper-cluster instructions from 15%
to 19.5% while lowering copies to 10.8%, yielding a 9% speedup (up from 6.2%).
"""

from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_fig08_br_copies(benchmark, ladder_sweep):
    def collect():
        return {
            name: (ladder_sweep.results[name].by_policy["n888"].copy_fraction,
                   ladder_sweep.results[name].by_policy["n888_br"].copy_fraction)
            for name in SPEC_INT_NAMES
        }

    copies = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[name, copies[name][0] * 100.0, copies[name][1] * 100.0]
            for name in SPEC_INT_NAMES]
    avg_before = mean(v[0] for v in copies.values()) * 100.0
    avg_after = mean(v[1] for v in copies.values()) * 100.0
    rows.append(["AVG", avg_before, avg_after])
    text = format_table(["benchmark", "copies % (8-8-8)", "copies % (8-8-8 + BR)"],
                        rows, title="Figure 8 - copy reduction from the BR scheme",
                        float_format="{:.2f}")
    write_result("fig08_br_copies", text)

    helper_before = ladder_sweep.mean_helper_fraction("n888")
    helper_after = ladder_sweep.mean_helper_fraction("n888_br")
    speedup_before = ladder_sweep.mean_speedup("n888")
    speedup_after = ladder_sweep.mean_speedup("n888_br")

    # The three simultaneous effects the paper claims for BR:
    assert avg_after < avg_before                 # fewer copies
    assert helper_after > helper_before           # more helper instructions
    assert speedup_after >= speedup_before - 0.01 # no performance loss
