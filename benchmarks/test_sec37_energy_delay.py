"""§3.7 energy comparison: energy-delay² of the most aggressive helper
configuration versus the monolithic baseline.

The paper reports the helper cluster (IR configuration) to be 5.1% more
energy-delay²-efficient than the baseline: the extra energy of the 8-bit
datapath, its clock network and the predictors is outweighed by the squared
benefit of the shorter execution time.
"""

from repro.power.energy import compare_ed2, report_from_activity
from repro.sim.reporting import format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_sec37_energy_delay(benchmark, ladder_sweep):
    def collect():
        out = {}
        for name in SPEC_INT_NAMES:
            bench_result = ladder_sweep.results[name]
            base = bench_result.baseline
            helper = bench_result.by_policy["ir"]
            base_report = report_from_activity(base.activity, base.slow_cycles,
                                               label=f"{name}-baseline")
            helper_report = report_from_activity(helper.activity, helper.slow_cycles,
                                                 label=f"{name}-ir")
            out[name] = (base_report, helper_report,
                         compare_ed2(base_report, helper_report))
        return out

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        base_report, helper_report, gain = data[name]
        energy_ratio = helper_report.energy / base_report.energy
        delay_ratio = helper_report.delay_cycles / base_report.delay_cycles
        rows.append([name, energy_ratio, delay_ratio, gain * 100.0])
    avg_gain = mean(v[2] for v in data.values()) * 100.0
    rows.append(["AVG", mean(r[1] for r in rows), mean(r[2] for r in rows), avg_gain])
    text = format_table(
        ["benchmark", "energy ratio (helper/base)", "delay ratio (helper/base)",
         "ED^2 improvement %"],
        rows, title="§3.7 - energy-delay² comparison (IR vs monolithic baseline)",
        float_format="{:.3f}")
    write_result("sec37_energy_delay", text)

    # Shape checks: the helper configuration spends more energy (bigger
    # machine, more copies) but recovers it through delay²; on average the
    # ED² balance should be near break-even or better, as the paper's +5.1%
    # indicates.
    avg_energy_ratio = mean(r[1] for r in rows[:-1])
    assert avg_energy_ratio > 1.0
    assert avg_gain > -10.0
