"""§3.7 energy comparison: energy-delay² of the most aggressive helper
configuration versus the monolithic baseline.

The paper reports the helper cluster (IR configuration) to be 5.1% more
energy-delay²-efficient than the baseline: the extra energy of the 8-bit
datapath, its clock network and the predictors is outweighed by the squared
benefit of the shorter execution time.

Energy comes straight off each ``SimulationResult``'s per-cluster power
breakdowns (computed inside the simulator, served from the result cache on
warm runs) — the same figures the ``repro.cli energy`` subcommand and the
sweep tables report.  On the paper's two-cluster machine these totals are
exactly the legacy two-cluster model's output
(``tests/test_energy_golden.py``).
"""

from repro.sim.metrics import ed2_improvement
from repro.sim.reporting import cluster_energy_text, format_table
from repro.trace.profiles import SPEC_INT_NAMES

from _bench_utils import mean, write_result


def test_sec37_energy_delay(benchmark, ladder_sweep):
    def collect():
        out = {}
        for name in SPEC_INT_NAMES:
            bench_result = ladder_sweep.results[name]
            base = bench_result.baseline
            helper = bench_result.by_policy["ir"]
            out[name] = (base, helper, ed2_improvement(base, helper))
        return out

    data = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for name in SPEC_INT_NAMES:
        base, helper, gain = data[name]
        energy_ratio = helper.energy / base.energy
        delay_ratio = helper.slow_cycles / base.slow_cycles
        rows.append([name, energy_ratio, delay_ratio, gain * 100.0,
                     cluster_energy_text(helper)])
    avg_gain = mean(v[2] for v in data.values()) * 100.0
    rows.append(["AVG", mean(r[1] for r in rows), mean(r[2] for r in rows),
                 avg_gain, ""])
    text = format_table(
        ["benchmark", "energy ratio (helper/base)", "delay ratio (helper/base)",
         "ED^2 improvement %", "energy by cluster"],
        rows, title="§3.7 - energy-delay² comparison (IR vs monolithic baseline)",
        float_format="{:.3f}")
    write_result("sec37_energy_delay", text)

    # Shape checks: every run carries its per-cluster breakdowns; the helper
    # configuration trades the extra hardware's energy against cheaper 8-bit
    # execution, so the energy ratio sits *near unity* — slightly above at
    # short traces, slightly below once the statistics tighten (0.993 at the
    # 8k-uop harness default) — while the delay² benefit carries the ED²
    # balance to near break-even or better, as the paper's +5.1% indicates.
    assert all(helper.has_energy and base.has_energy
               for base, helper, _ in data.values())
    assert all(set(helper.power) == {"wide", "narrow"}
               for _, helper, _ in data.values())
    avg_energy_ratio = mean(r[1] for r in rows[:-1])
    assert 0.9 < avg_energy_ratio < 1.15
    assert avg_gain > -10.0
