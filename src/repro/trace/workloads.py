"""The Table 2 workload suite: 412 applications across seven categories.

The paper's final study (§3.8, Figure 14) simulates 10 million consecutive
IA-32 instructions from each of 412 application traces grouped into seven
categories (Table 2).  We reproduce the suite with seven category archetypes;
each application instance is a perturbation of its category archetype with a
stable per-app seed, so the suite is fully deterministic and the per-category
means plus the speedup S-curve of Figure 14 can be regenerated.

Category characteristics follow the paper's qualitative discussion: workloads
with regular control flow and many arithmetic operations (multimedia, kernels,
SPEC FP) benefit more from the helper cluster than office or productivity
applications.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.trace.profiles import BenchmarkProfile, InstructionMix


@dataclass(frozen=True)
class WorkloadCategory:
    """One row of Table 2: a category name, its trace count and an archetype."""

    key: str
    description: str
    num_traces: int
    archetype: BenchmarkProfile
    #: relative spread applied to the archetype's numeric knobs per app
    variability: float = 0.15


def _archetype(key: str, **kwargs) -> BenchmarkProfile:
    kwargs.setdefault("category", key)
    return BenchmarkProfile(name=f"{key}-archetype", **kwargs)


#: Table 2 of the paper, in order.
WORKLOAD_CATEGORIES: Dict[str, WorkloadCategory] = {
    "enc": WorkloadCategory(
        key="enc", description="Audio/video encode", num_traces=62,
        archetype=_archetype(
            "enc",
            mix=InstructionMix(alu=0.48, load=0.24, store=0.12, cond_branch=0.08,
                               uncond_branch=0.02, mul=0.02, div=0.004, fp=0.036),
            narrow_data_fraction=0.80, narrow_consumer_locality=0.75,
            loop_trip_mean=128.0, loop_body_size=14, dependency_span=2.2,
            aligned_base_fraction=0.70, byte_load_fraction=0.45,
            pointer_arith_fraction=0.20, width_locality=0.96, static_loops=14,
        )),
    "sfp": WorkloadCategory(
        key="sfp", description="Spec FP's", num_traces=41,
        archetype=_archetype(
            "sfp",
            mix=InstructionMix(alu=0.34, load=0.26, store=0.12, cond_branch=0.06,
                               uncond_branch=0.015, mul=0.02, div=0.005, fp=0.20),
            narrow_data_fraction=0.62, narrow_consumer_locality=0.70,
            loop_trip_mean=200.0, loop_body_size=16, dependency_span=2.6,
            aligned_base_fraction=0.72, byte_load_fraction=0.05,
            pointer_arith_fraction=0.22, width_locality=0.95, static_loops=12,
        )),
    "kernels": WorkloadCategory(
        key="kernels", description="VectorAdd, FIRs", num_traces=52,
        archetype=_archetype(
            "kernels",
            mix=InstructionMix(alu=0.50, load=0.26, store=0.14, cond_branch=0.05,
                               uncond_branch=0.01, mul=0.02, div=0.002, fp=0.018),
            narrow_data_fraction=0.78, narrow_consumer_locality=0.80,
            loop_trip_mean=256.0, loop_body_size=10, dependency_span=2.0,
            aligned_base_fraction=0.80, byte_load_fraction=0.30,
            pointer_arith_fraction=0.18, width_locality=0.97, static_loops=6,
        )),
    "mm": WorkloadCategory(
        key="mm", description="WMedia, photoshop", num_traces=85,
        archetype=_archetype(
            "mm",
            mix=InstructionMix(alu=0.46, load=0.25, store=0.13, cond_branch=0.08,
                               uncond_branch=0.025, mul=0.015, div=0.003, fp=0.037),
            narrow_data_fraction=0.76, narrow_consumer_locality=0.74,
            loop_trip_mean=96.0, loop_body_size=12, dependency_span=2.3,
            aligned_base_fraction=0.68, byte_load_fraction=0.38,
            pointer_arith_fraction=0.24, width_locality=0.95, static_loops=20,
        )),
    "office": WorkloadCategory(
        key="office", description="Excel, word, ppt", num_traces=75,
        archetype=_archetype(
            "office",
            mix=InstructionMix(alu=0.40, load=0.27, store=0.12, cond_branch=0.13,
                               uncond_branch=0.05, mul=0.005, div=0.002, fp=0.023),
            narrow_data_fraction=0.58, narrow_consumer_locality=0.55,
            loop_trip_mean=14.0, loop_body_size=13, dependency_span=2.8,
            aligned_base_fraction=0.52, byte_load_fraction=0.18,
            pointer_arith_fraction=0.34, width_locality=0.91, static_loops=56,
        )),
    "prod": WorkloadCategory(
        key="prod", description="Internet content", num_traces=45,
        archetype=_archetype(
            "prod",
            mix=InstructionMix(alu=0.40, load=0.27, store=0.12, cond_branch=0.13,
                               uncond_branch=0.05, mul=0.006, div=0.002, fp=0.022),
            narrow_data_fraction=0.56, narrow_consumer_locality=0.52,
            loop_trip_mean=12.0, loop_body_size=12, dependency_span=2.9,
            aligned_base_fraction=0.50, byte_load_fraction=0.20,
            pointer_arith_fraction=0.36, width_locality=0.90, static_loops=60,
        )),
    "ws": WorkloadCategory(
        key="ws", description="Workstation", num_traces=49,
        archetype=_archetype(
            "ws",
            mix=InstructionMix(alu=0.44, load=0.26, store=0.12, cond_branch=0.10,
                               uncond_branch=0.03, mul=0.012, div=0.003, fp=0.035),
            narrow_data_fraction=0.66, narrow_consumer_locality=0.66,
            loop_trip_mean=48.0, loop_body_size=13, dependency_span=2.5,
            aligned_base_fraction=0.62, byte_load_fraction=0.20,
            pointer_arith_fraction=0.28, width_locality=0.94, static_loops=28,
        )),
}

#: Total number of applications in the suite; the paper reports 412 traces
#: ("a wide range of 412 apps") plus the 12 SPEC Int applications studied in
#: detail.  Summing Table 2 gives 409 production traces; we follow Table 2.
TOTAL_WORKLOAD_APPS: int = sum(c.num_traces for c in WORKLOAD_CATEGORIES.values())


@dataclass(frozen=True)
class WorkloadApp:
    """One generated application instance of the suite."""

    name: str
    category: str
    index: int
    seed: int
    profile: BenchmarkProfile


def _perturb(archetype: BenchmarkProfile, rng: random.Random, variability: float,
             name: str) -> BenchmarkProfile:
    """Perturb an archetype's numeric knobs by up to ±variability (relative)."""

    def jitter(value: float, lo: float = 0.0, hi: float = 1.0) -> float:
        scale = 1.0 + rng.uniform(-variability, variability)
        return min(hi, max(lo, value * scale))

    def jitter_pos(value: float) -> float:
        return max(1.0, value * (1.0 + rng.uniform(-variability, variability)))

    return archetype.scaled(
        name=name,
        narrow_data_fraction=jitter(archetype.narrow_data_fraction),
        narrow_consumer_locality=jitter(archetype.narrow_consumer_locality),
        loop_trip_mean=jitter_pos(archetype.loop_trip_mean),
        dependency_span=jitter_pos(archetype.dependency_span),
        aligned_base_fraction=jitter(archetype.aligned_base_fraction),
        small_offset_fraction=jitter(archetype.small_offset_fraction),
        byte_load_fraction=jitter(archetype.byte_load_fraction),
        pointer_arith_fraction=jitter(archetype.pointer_arith_fraction),
        width_locality=jitter(archetype.width_locality, lo=0.5, hi=0.999),
        static_loops=max(2, int(round(jitter_pos(float(archetype.static_loops))))),
    )


def build_workload_suite(categories: Optional[List[str]] = None,
                         apps_per_category: Optional[int] = None,
                         base_seed: int = 2006) -> List[WorkloadApp]:
    """Build the (deterministic) application suite of Table 2.

    Parameters
    ----------
    categories:
        Restrict to a subset of category keys (default: all seven).
    apps_per_category:
        Cap the number of apps generated per category; ``None`` generates the
        full Table 2 counts (409 apps), which is what Figure 14 uses.
    base_seed:
        Base seed; each app derives a stable seed from it.
    """
    selected = categories or list(WORKLOAD_CATEGORIES)
    apps: List[WorkloadApp] = []
    for key in selected:
        if key not in WORKLOAD_CATEGORIES:
            raise KeyError(
                f"unknown workload category {key!r}; known: {', '.join(WORKLOAD_CATEGORIES)}"
            )
        category = WORKLOAD_CATEGORIES[key]
        count = category.num_traces if apps_per_category is None else min(
            category.num_traces, apps_per_category)
        for index in range(count):
            seed = (base_seed * 100_003
                    + zlib.crc32(f"{key}:{index}".encode("utf-8")) % 1_000_003)
            rng = random.Random(seed)
            name = f"{key}-{index:03d}"
            profile = _perturb(category.archetype, rng, category.variability, name)
            apps.append(WorkloadApp(name=name, category=key, index=index,
                                    seed=seed, profile=profile))
    return apps


def iter_category_apps(category: str, apps_per_category: Optional[int] = None,
                       base_seed: int = 2006) -> Iterator[WorkloadApp]:
    """Iterate over the apps of one category."""
    yield from build_workload_suite([category], apps_per_category, base_seed)
