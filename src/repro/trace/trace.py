"""Trace container and summary statistics.

A :class:`Trace` is an ordered sequence of :class:`~repro.isa.uop.MicroOp`
records with concrete values attached, plus the metadata the simulator and the
analyses need (benchmark name, generator seed, static code footprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.isa.opcodes import OpClass
from repro.isa.uop import MicroOp
from repro.isa.values import NARROW_WIDTH, is_narrow


@dataclass
class TraceStats:
    """Aggregate statistics over a trace, used by the offline analyses."""

    num_uops: int = 0
    class_counts: Dict[OpClass, int] = field(default_factory=dict)
    narrow_result_count: int = 0
    narrow_all_source_count: int = 0
    cond_branch_count: int = 0
    taken_branch_count: int = 0
    load_count: int = 0
    store_count: int = 0
    byte_load_count: int = 0

    @property
    def narrow_result_fraction(self) -> float:
        """Fraction of result-producing uops whose result is narrow."""
        producers = sum(
            count for cls, count in self.class_counts.items()
            if cls not in (OpClass.STORE, OpClass.BRANCH, OpClass.JUMP, OpClass.NOP)
        )
        return self.narrow_result_count / producers if producers else 0.0

    def class_fraction(self, op_class: OpClass) -> float:
        """Fraction of uops in the given class."""
        if self.num_uops == 0:
            return 0.0
        return self.class_counts.get(op_class, 0) / self.num_uops


@dataclass
class Trace:
    """An ordered uop stream plus metadata.

    Attributes
    ----------
    name:
        Benchmark / application name.
    uops:
        The uop sequence in program (commit) order.
    seed:
        Seed of the generator that produced the trace (``None`` for
        hand-built traces).
    static_pcs:
        Number of distinct static PCs in the trace; relevant for sizing the
        PC-indexed width predictor.
    """

    name: str
    uops: List[MicroOp] = field(default_factory=list)
    seed: Optional[int] = None
    static_pcs: int = 0

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.uops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(
                name=self.name,
                uops=self.uops[index],
                seed=self.seed,
                static_pcs=self.static_pcs,
            )
        return self.uops[index]

    # ------------------------------------------------------------ statistics
    def stats(self, narrow_width: int = NARROW_WIDTH) -> TraceStats:
        """Compute aggregate statistics in one pass over the trace."""
        stats = TraceStats(num_uops=len(self.uops))
        for uop in self.uops:
            cls = uop.op_class
            stats.class_counts[cls] = stats.class_counts.get(cls, 0) + 1
            if uop.result_value is not None and is_narrow(uop.result_value, narrow_width):
                stats.narrow_result_count += 1
            if uop.src_values and uop.all_sources_narrow(narrow_width):
                stats.narrow_all_source_count += 1
            if uop.is_cond_branch:
                stats.cond_branch_count += 1
                if uop.is_taken:
                    stats.taken_branch_count += 1
            if uop.is_load:
                stats.load_count += 1
                if uop.mem_size == 1:
                    stats.byte_load_count += 1
            if uop.is_store:
                stats.store_count += 1
        return stats

    # ------------------------------------------------------------- utilities
    def producer_map(self) -> Dict[int, MicroOp]:
        """Map from uid to uop for quick producer lookups."""
        return {uop.uid: uop for uop in self.uops}

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on violation.

        Invariants: uids strictly increase, every producer uid referenced by a
        uop appears earlier in the trace, and every uop with sources has a
        matching number of source values once values are attached.
        """
        seen: set[int] = set()
        last_uid = -1
        for uop in self.uops:
            if uop.uid <= last_uid:
                raise ValueError(f"uids not strictly increasing at uop {uop.uid}")
            last_uid = uop.uid
            for producer in uop.producer_uids:
                if producer is not None and producer not in seen:
                    raise ValueError(
                        f"uop {uop.uid} references producer {producer} that does not precede it"
                    )
            if uop.flags_producer_uid is not None and uop.flags_producer_uid not in seen:
                raise ValueError(
                    f"uop {uop.uid} references flags producer {uop.flags_producer_uid} "
                    "that does not precede it"
                )
            if uop.src_values and len(uop.src_values) != len(uop.srcs):
                raise ValueError(
                    f"uop {uop.uid} has {len(uop.srcs)} sources but "
                    f"{len(uop.src_values)} source values"
                )
            seen.add(uop.uid)

    def extend(self, uops: Iterable[MicroOp]) -> None:
        """Append uops to the trace."""
        self.uops.extend(uops)

    def head(self, n: int) -> "Trace":
        """Return a new trace containing the first ``n`` uops."""
        return self[:n]
