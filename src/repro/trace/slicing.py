"""Benchmark slicing as described in §3.1 of the paper.

The paper skips each benchmark's initialisation phase by splitting the
benchmark into 10 equal slices and starting execution from the fourth slice.
We reproduce the same discipline over synthetic traces; on a synthetic trace
the early slices correspond to the generator warming up its loop templates,
so the effect is mild but the mechanism is identical.
"""

from __future__ import annotations

from typing import List

from repro.trace.trace import Trace

#: Number of equal slices each benchmark is split into (§3.1).
NUM_SLICES: int = 10

#: Index of the first slice that is simulated (the paper starts at the
#: fourth slice; slices are numbered from 1 in the paper, so index 3 here).
START_SLICE: int = 3


def slice_trace(trace: Trace, num_slices: int = NUM_SLICES) -> List[Trace]:
    """Split a trace into ``num_slices`` contiguous, near-equal slices.

    The last slice absorbs the remainder when the trace length is not an
    exact multiple of ``num_slices``.
    """
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    n = len(trace)
    if n == 0:
        return [Trace(name=trace.name, uops=[], seed=trace.seed,
                      static_pcs=trace.static_pcs) for _ in range(num_slices)]
    slice_len = max(1, n // num_slices)
    slices: List[Trace] = []
    for i in range(num_slices):
        start = i * slice_len
        stop = n if i == num_slices - 1 else min(n, (i + 1) * slice_len)
        slices.append(trace[start:stop])
    return slices


def select_simulation_slice(trace: Trace, num_slices: int = NUM_SLICES,
                            start_slice: int = START_SLICE,
                            slices_to_run: int = 1) -> Trace:
    """Return the portion of the trace the paper would simulate.

    Splits the trace into ``num_slices`` slices, skips the first
    ``start_slice`` slices (the initialisation phase) and returns the next
    ``slices_to_run`` slices concatenated.
    """
    if start_slice < 0 or start_slice >= num_slices:
        raise ValueError(f"start_slice must be in [0, {num_slices}), got {start_slice}")
    if slices_to_run <= 0:
        raise ValueError("slices_to_run must be positive")
    slices = slice_trace(trace, num_slices)
    selected = slices[start_slice:start_slice + slices_to_run]
    merged = Trace(name=trace.name, seed=trace.seed, static_pcs=trace.static_pcs)
    for piece in selected:
        merged.uops.extend(piece.uops)
    return merged
