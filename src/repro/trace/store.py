"""Content-addressed on-disk store of generated traces (the cross-job trace
cache).

A policy sweep touches each benchmark's trace many times: every policy of an
8-policy ladder simulates the *same* (profile, length, seed, slicing) trace,
and a parallel sweep used to re-derive it in every worker process.  The
store gives trace reuse the same shape as the result cache
(:mod:`repro.sim.cache`): a SHA-256 key over everything that determines the
uop stream, one digest-checked binary file per trace
(:func:`repro.trace.serialization.save_trace_binary`), atomic writes, and
corruption detected on load and treated as a miss.

The engine (:mod:`repro.sim.engine`) layers a per-process memo on top and
seeds pool workers with the store's location through the pool initializer,
so an entire sweep — serial, parallel or resumed from a warm directory —
performs exactly one generation per distinct trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.trace.serialization import (
    BINARY_FORMAT_VERSION,
    load_trace_binary,
    save_trace_binary,
)
from repro.trace.trace import Trace


def profile_key_text(profile: object) -> str:
    """Canonical key text of a profile: sorted-key JSON of ``to_key_dict()``.

    Keying on the declared field dict instead of ``repr`` means the key
    contract is explicit (REP002 statically checks every field reaches
    ``to_key_dict``) and independent of repr formatting details such as
    ``repr=False`` fields or float rendering — the same convention as the
    engine's in-process memo key and the result-cache key.  Objects without
    ``to_key_dict`` (only exercised by tests) fall back to ``repr``.
    """
    to_key = getattr(profile, "to_key_dict", None)
    if to_key is not None:
        return json.dumps(to_key(), sort_keys=True, separators=(",", ":"))
    return repr(profile)


def trace_key(profile: object, trace_uops: int, seed: int,
              use_slicing: bool) -> str:
    """Stable content hash of everything that determines a generated trace.

    The profile contributes through :func:`profile_key_text`, so a
    caller-supplied profile that shadows a registered name cannot collide
    with it.
    """
    hasher = hashlib.sha256()
    hasher.update(str(BINARY_FORMAT_VERSION).encode("utf-8"))
    for part in (profile_key_text(profile), trace_uops, seed, use_slicing):
        hasher.update(b"\x00")
        hasher.update(repr(part).encode("utf-8"))
    return hasher.hexdigest()


class TraceStore:
    """Content-addressed store of :class:`~repro.trace.trace.Trace` files."""

    def __init__(self, store_dir: os.PathLike | str, enabled: bool = True) -> None:
        self.store_dir = Path(store_dir)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries dropped because the digest or format did not verify
        self.corrupt_drops = 0
        #: corrupt-dropped slots that were subsequently rewritten with a
        #: freshly generated trace (same heal contract as the result cache)
        self.healed = 0
        #: keys whose on-disk entry was dropped as corrupt and not yet
        #: rewritten (drives the ``healed`` accounting)
        self._corrupt_keys: set = set()
        #: memo keys (engine-side tuples) known to be persisted in this
        #: store — lets `trace_for_job` skip the key hash + path probe after
        #: the first job of a distinct trace
        self.seen: set = set()

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """Location of the entry for ``key`` (two-level sharding)."""
        return self.store_dir / key[:2] / f"{key}.trace"

    # ------------------------------------------------------------------- load
    def load(self, key: str) -> Optional[Trace]:
        """Return the stored trace for ``key``, or None on miss/corruption."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            trace = load_trace_binary(path)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # Corrupt or stale: remove so the slot is rewritten cleanly.
            self.corrupt_drops += 1
            self._corrupt_keys.add(key)
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return trace

    # ------------------------------------------------------------------ store
    def store(self, key: str, trace: Trace) -> None:
        """Persist ``trace`` under ``key`` (atomic rename, best effort)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            # Unusable store location: trace caching degrades to a no-op
            # rather than failing the sweep.
            return
        os.close(fd)
        # Unlike ResultCache.store, the payload is serialised *inside* this
        # window (save_trace_binary pickles straight to the temp file), so a
        # non-OSError failure mid-dump would otherwise strand the .tmp file
        # next to the entry forever.  try/finally guarantees the temp file is
        # gone on every path: renamed into place on success, unlinked on any
        # failure — I/O errors are swallowed (best-effort store), anything
        # else propagates after the cleanup.
        replaced = False
        try:
            save_trace_binary(trace, tmp_name)
            os.replace(tmp_name, path)
            replaced = True
        except OSError:
            return
        finally:
            if not replaced:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        self.stores += 1
        if key in self._corrupt_keys:
            self._corrupt_keys.discard(key)
            self.healed += 1

    # -------------------------------------------------------------- reporting
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_drops": self.corrupt_drops,
            "healed": self.healed,
        }
