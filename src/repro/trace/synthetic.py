"""Synthetic trace generation by functional emulation of loop-nest programs.

The generator substitutes for the paper's proprietary IA-32 traces.  It first
builds a *static program* for a benchmark profile — a set of loop templates,
each a short basic-block body of parameterised uops over a small register
working set — and then *functionally emulates* that program, emitting a
:class:`~repro.trace.trace.Trace` of MicroOps with concrete values.

Because values flow through an architectural register file and through real
opcode semantics (:func:`repro.isa.opcodes.execute`), every property the
steering policies inspect is genuine:

* operand and result widths arise from the emulated dataflow;
* the FLAGS register is written by the actual compare/arith uops, so the BR
  scheme's "flag producer" relation is real;
* load addresses are ``base + index`` sums of emulated register contents, so
  carry propagation past bit 7 (the CR scheme's condition) is real;
* loop counters increment and compare for real, so their narrowness and the
  taken/not-taken pattern of loop branches is real.

The profile parameters only shape *distributions* (how often data is narrow,
how long loops run, how much pointer arithmetic there is); they never inject
an answer directly.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.opcodes import Opcode, execute, opcode_info
from repro.isa.registers import ArchReg, RegisterFile
from repro.isa.uop import MicroOp
from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH, is_narrow, truncate
from repro.trace.profiles import BenchmarkProfile
from repro.trace.trace import Trace

#: Registers used to hold wide base pointers inside generated loops.
_POINTER_REGS: Tuple[ArchReg, ...] = (ArchReg.ESI, ArchReg.EDI, ArchReg.EBP)

#: Registers used to hold loop data values.
_DATA_REGS: Tuple[ArchReg, ...] = (ArchReg.EAX, ArchReg.EBX, ArchReg.EDX,
                                   ArchReg.TMP0, ArchReg.TMP1)

#: Register used as the loop induction variable.
_COUNTER_REG: ArchReg = ArchReg.ECX

#: Register used to hold the loop bound.
_BOUND_REG: ArchReg = ArchReg.TMP2

_ALU_OPCODES: Tuple[Opcode, ...] = (Opcode.ADD, Opcode.SUB, Opcode.AND,
                                    Opcode.OR, Opcode.XOR)
_SHIFT_OPCODES: Tuple[Opcode, ...] = (Opcode.SHL, Opcode.SHR, Opcode.SAR)
_FP_OPCODES: Tuple[Opcode, ...] = (Opcode.FADD, Opcode.FMUL, Opcode.FLOAD,
                                   Opcode.FSTORE, Opcode.FDIV)


@dataclass
class _StaticUop:
    """One position of a loop body in the static program."""

    pc: int
    kind: str
    opcode: Opcode
    dest: Optional[ArchReg] = None
    srcs: Tuple[ArchReg, ...] = ()
    imm: Optional[int] = None
    narrow_template: bool = True
    byte: bool = False


@dataclass
class _LoopTemplate:
    """A loop nest of the static program: prologue + body executed per trip."""

    index: int
    pc_base: int
    prologue: List[_StaticUop] = field(default_factory=list)
    body: List[_StaticUop] = field(default_factory=list)
    base_value: int = 0
    trip_mean: float = 32.0


class SyntheticTraceGenerator:
    """Generates dataflow-consistent uop traces from a benchmark profile.

    Parameters
    ----------
    profile:
        The benchmark profile describing distributions.
    seed:
        RNG seed; the same (profile, seed) pair always yields the same trace.
    narrow_width:
        Width in bits below which a value counts as narrow (8 in the paper).
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 0,
                 narrow_width: int = NARROW_WIDTH) -> None:
        self.profile = profile
        self.seed = seed
        self.narrow_width = narrow_width
        # zlib.crc32 is stable across processes (unlike ``hash`` on strings),
        # so the same (profile, seed) pair always yields the same trace.
        self._rng = random.Random(seed ^ zlib.crc32(profile.name.encode("utf-8")))
        self._regs = RegisterFile()
        self._producers: Dict[ArchReg, Optional[int]] = {r: None for r in ArchReg}
        self._flags_producer: Optional[int] = None
        self._uid = 0
        self._loops = self._build_static_program()

    # ------------------------------------------------------------------ API
    def generate(self, num_uops: int, name: Optional[str] = None) -> Trace:
        """Generate a trace of (at least) ``num_uops`` micro-operations.

        Generation stops at the first loop-nest boundary after ``num_uops``
        uops have been emitted, so the returned trace can be slightly longer
        than requested but never truncates a loop body mid-iteration.
        """
        if num_uops <= 0:
            raise ValueError(f"num_uops must be positive, got {num_uops}")
        trace = Trace(name=name or self.profile.name, seed=self.seed,
                      static_pcs=sum(len(l.prologue) + len(l.body) for l in self._loops))
        while len(trace.uops) < num_uops:
            loop = self._rng.choice(self._loops)
            self._emit_loop(loop, trace)
        return trace

    # -------------------------------------------------------- static program
    def _build_static_program(self) -> List[_LoopTemplate]:
        profile = self.profile
        mix = profile.mix.normalized()
        loops: List[_LoopTemplate] = []
        for loop_index in range(profile.static_loops):
            pc_base = 0x0040_0000 + loop_index * 0x400
            loop = _LoopTemplate(index=loop_index, pc_base=pc_base)
            loop.trip_mean = max(2.0, self._rng.gauss(profile.loop_trip_mean,
                                                      profile.loop_trip_mean * 0.4))
            # Base pointer for this loop's memory region.  With probability
            # ``aligned_base_fraction`` the base's low byte is small, so
            # base+offset rarely carries past bit 7 (the CR case, Fig. 10).
            region = 0x0800_0000 + (loop_index * 0x0010_0000)
            if self._rng.random() < profile.aligned_base_fraction:
                low = self._rng.randrange(0, 0x30)
            else:
                low = self._rng.randrange(0x60, 0x100)
            loop.base_value = truncate(region | low)
            loop.prologue = self._build_prologue(loop)
            loop.body = self._build_body(loop, mix)
            loops.append(loop)
        return loops

    def _build_prologue(self, loop: _LoopTemplate) -> List[_StaticUop]:
        """Loop prologue: materialise the base pointer, bound and counter."""
        pc = loop.pc_base
        prologue = [
            _StaticUop(pc=pc, kind="init_base", opcode=Opcode.MOVI,
                       dest=self._pointer_reg(loop), imm=loop.base_value,
                       narrow_template=False),
            _StaticUop(pc=pc + 4, kind="init_bound", opcode=Opcode.MOVI,
                       dest=_BOUND_REG, imm=0,  # filled per entry
                       narrow_template=True),
            _StaticUop(pc=pc + 8, kind="init_counter", opcode=Opcode.MOVI,
                       dest=_COUNTER_REG, imm=0, narrow_template=True),
        ]
        return prologue

    def _pointer_reg(self, loop: _LoopTemplate) -> ArchReg:
        return _POINTER_REGS[loop.index % len(_POINTER_REGS)]

    def _build_body(self, loop: _LoopTemplate, mix) -> List[_StaticUop]:
        """Build the loop body templates according to the instruction mix."""
        profile = self.profile
        rng = self._rng
        body: List[_StaticUop] = []
        pc = loop.pc_base + 0x40
        base_reg = self._pointer_reg(loop)

        # The loop overhead (inc counter, cmp, branch) occupies 3 slots of the
        # body; the remaining slots are filled by sampling the mix.
        body_size = max(4, int(round(profile.loop_body_size)))
        work_slots = max(1, body_size - 3)

        # Normalise the non-branch portion of the mix for slot filling.
        weights = {
            "load": mix.load,
            "store": mix.store,
            "alu": mix.alu,
            "mul": mix.mul,
            "div": mix.div,
            "fp": mix.fp,
            "data_branch": max(0.0, mix.cond_branch - 1.0 / body_size),
            "jump": mix.uncond_branch,
        }
        total_weight = sum(weights.values()) or 1.0
        kinds = list(weights)
        probs = [weights[k] / total_weight for k in kinds]

        last_loaded_reg = _DATA_REGS[0]
        for slot in range(work_slots):
            kind = rng.choices(kinds, probs)[0]
            dest = _DATA_REGS[slot % len(_DATA_REGS)]
            if kind == "load":
                byte = rng.random() < profile.byte_load_fraction
                narrow_template = byte or rng.random() < profile.narrow_data_fraction
                # Loads address the loop's region either through a small
                # immediate offset (structure-field style accesses, the
                # common case per ``small_offset_fraction``) or through the
                # loop counter (array indexing).  Field-style accesses add a
                # small constant to a wide base, which is the CR scheme's
                # motivating pattern (Figure 10).
                if rng.random() < profile.small_offset_fraction:
                    offset_imm = rng.randrange(0, 0x40) & ~0x3
                    body.append(_StaticUop(pc=pc, kind="load",
                                           opcode=Opcode.LOADB if byte else Opcode.LOAD,
                                           dest=dest, srcs=(base_reg,),
                                           imm=offset_imm,
                                           narrow_template=narrow_template, byte=byte))
                else:
                    body.append(_StaticUop(pc=pc, kind="load",
                                           opcode=Opcode.LOADB if byte else Opcode.LOAD,
                                           dest=dest, srcs=(base_reg, _COUNTER_REG),
                                           narrow_template=narrow_template, byte=byte))
                last_loaded_reg = dest
            elif kind == "store":
                body.append(_StaticUop(pc=pc, kind="store", opcode=Opcode.STORE,
                                       srcs=(base_reg, _COUNTER_REG, last_loaded_reg)))
            elif kind == "alu":
                body.append(self._build_alu_template(pc, dest, base_reg,
                                                     last_loaded_reg))
            elif kind == "mul":
                body.append(_StaticUop(pc=pc, kind="mul", opcode=Opcode.MUL,
                                       dest=dest, srcs=(last_loaded_reg, _COUNTER_REG)))
            elif kind == "div":
                body.append(_StaticUop(pc=pc, kind="div", opcode=Opcode.DIV,
                                       dest=dest, srcs=(last_loaded_reg, _BOUND_REG)))
            elif kind == "fp":
                body.append(_StaticUop(pc=pc, kind="fp",
                                       opcode=rng.choice(_FP_OPCODES),
                                       dest=ArchReg.TMP3, srcs=(base_reg, _COUNTER_REG)))
            elif kind == "data_branch":
                # Compare a data value against a narrow threshold, then
                # branch on the outcome: the canonical BR-scheme opportunity.
                body.append(_StaticUop(pc=pc, kind="cmp_data", opcode=Opcode.CMP,
                                       srcs=(last_loaded_reg,),
                                       imm=rng.randrange(1, 1 << self.narrow_width)))
                pc += 4
                body.append(_StaticUop(pc=pc, kind="br_data", opcode=Opcode.BR_COND))
            else:  # jump
                body.append(_StaticUop(pc=pc, kind="jump", opcode=Opcode.BR_UNCOND))
            pc += 4

        # Loop overhead: induction variable update, compare, back edge.
        body.append(_StaticUop(pc=pc, kind="inc", opcode=Opcode.INC,
                               dest=_COUNTER_REG, srcs=(_COUNTER_REG,)))
        body.append(_StaticUop(pc=pc + 4, kind="cmp_counter", opcode=Opcode.CMP,
                               srcs=(_COUNTER_REG, _BOUND_REG)))
        body.append(_StaticUop(pc=pc + 8, kind="br_loop", opcode=Opcode.BR_COND))
        return body

    def _build_alu_template(self, pc: int, dest: ArchReg, base_reg: ArchReg,
                            data_reg: ArchReg) -> _StaticUop:
        """Build an ALU template honouring the narrow-consumer-locality knob."""
        profile = self.profile
        rng = self._rng
        opcode = rng.choice(_ALU_OPCODES if rng.random() < 0.85 else _SHIFT_OPCODES)
        if rng.random() < profile.narrow_consumer_locality:
            # Narrow data manipulated by further data ops: second operand is
            # another data register or a narrow immediate.
            if rng.random() < 0.5:
                return _StaticUop(pc=pc, kind="alu_data", opcode=opcode, dest=dest,
                                  srcs=(data_reg,),
                                  imm=rng.randrange(0, 1 << self.narrow_width))
            other = rng.choice(_DATA_REGS)
            return _StaticUop(pc=pc, kind="alu_data", opcode=opcode, dest=dest,
                              srcs=(data_reg, other))
        if rng.random() < profile.pointer_arith_fraction:
            # Pure pointer arithmetic: wide in, wide out.
            return _StaticUop(pc=pc, kind="alu_ptr", opcode=Opcode.ADD, dest=base_reg,
                              srcs=(base_reg,), imm=rng.choice((4, 8, 16, 32, 64)),
                              narrow_template=False)
        # Narrow value used for addressing/indexing: narrow data combined with
        # a wide pointer, producing a wide result (the copy-heavy pattern that
        # hurts bzip2 under plain 8-8-8 steering).
        return _StaticUop(pc=pc, kind="alu_index", opcode=Opcode.ADD, dest=ArchReg.TMP3,
                          srcs=(base_reg, data_reg), narrow_template=False)

    # ------------------------------------------------------------- emulation
    def _emit_loop(self, loop: _LoopTemplate, trace: Trace) -> None:
        profile = self.profile
        rng = self._rng
        trip = max(1, int(rng.expovariate(1.0 / loop.trip_mean)) + 1)
        # Fill in the per-entry bound immediate so the counter/bound compare
        # and branch outcome are architecturally real.
        for static in loop.prologue:
            if static.kind == "init_bound":
                self._emit(static, trace, imm_override=trip)
            else:
                self._emit(static, trace)
        for iteration in range(trip):
            for static in loop.body:
                self._emit(static, trace, loop=loop, iteration=iteration, trip=trip)

    def _emit(self, static: _StaticUop, trace: Trace, *,
              loop: Optional[_LoopTemplate] = None, iteration: int = 0,
              trip: int = 1, imm_override: Optional[int] = None) -> None:
        rng = self._rng
        profile = self.profile
        opcode = static.opcode
        info = opcode_info(opcode)
        imm = imm_override if imm_override is not None else static.imm

        srcs = static.srcs
        src_values = tuple(self._regs.read(r) for r in srcs)
        producer_uids = tuple(self._producers[r] for r in srcs)

        dest = static.dest
        result: Optional[int] = None
        flags_value: Optional[int] = None
        mem_addr: Optional[int] = None
        mem_size = 1 if static.byte else 4
        is_taken = False

        if static.kind in ("init_base", "init_bound", "init_counter"):
            result, flags_value = execute(Opcode.MOVI, 0, imm or 0)
        elif static.kind == "load":
            base = src_values[0]
            index = src_values[1] if len(src_values) > 1 else (imm or 0)
            mem_addr = truncate(base + index)
            result = self._sample_load_value(static)
            if static.byte:
                result &= 0xFF
        elif static.kind == "store":
            base = src_values[0]
            index = src_values[1] if len(src_values) > 1 else (imm or 0)
            mem_addr = truncate(base + index)
        elif static.kind in ("cmp_data", "cmp_counter"):
            a = src_values[0]
            b = imm if len(src_values) < 2 else src_values[1]
            _, flags_value = execute(Opcode.CMP, a, b if b is not None else 0)
        elif static.kind == "br_loop":
            # Loop back edge: taken while the counter has not reached the bound.
            counter = self._regs.read(_COUNTER_REG)
            bound = self._regs.read(_BOUND_REG)
            is_taken = counter < bound
        elif static.kind == "br_data":
            flags = self._regs.read(ArchReg.FLAGS)
            is_taken = bool(flags & 0x2)  # ZF
        elif static.kind == "jump":
            is_taken = True
        elif static.kind == "fp":
            result = None if not info.has_dest else 0
        elif info.has_dest or info.writes_flags:
            a = src_values[0] if src_values else 0
            if imm is not None and len(src_values) < 2:
                b = imm
            else:
                b = src_values[1] if len(src_values) > 1 else 0
            result, flags_value = execute(opcode, a, b)
            if not info.has_dest:
                result = None

        if static.kind.startswith("br") or static.kind == "jump":
            srcs = (ArchReg.FLAGS,) if opcode == Opcode.BR_COND else ()
            src_values = tuple(self._regs.read(r) for r in srcs)
            producer_uids = tuple(self._producers[r] for r in srcs)

        uop = MicroOp(
            uid=self._uid,
            pc=static.pc,
            opcode=opcode,
            srcs=srcs,
            dest=dest if info.has_dest else None,
            imm=imm,
            src_values=src_values,
            result_value=result if info.has_dest else None,
            flags_value=flags_value if info.writes_flags else None,
            mem_addr=mem_addr,
            mem_size=mem_size,
            is_taken=is_taken,
            producer_uids=producer_uids,
            flags_producer_uid=self._flags_producer if info.reads_flags else None,
        )
        trace.uops.append(uop)

        # Architectural update.
        if info.has_dest and dest is not None and result is not None:
            self._regs.write(dest, result)
            self._producers[dest] = uop.uid
        if info.writes_flags and flags_value is not None:
            self._regs.write(ArchReg.FLAGS, flags_value)
            self._producers[ArchReg.FLAGS] = uop.uid
            self._flags_producer = uop.uid
        self._uid += 1

    def _sample_load_value(self, static: _StaticUop) -> int:
        """Sample a loaded value honouring per-PC width locality."""
        rng = self._rng
        profile = self.profile
        narrow = (rng.random() < profile.width_locality) == static.narrow_template
        if narrow:
            return rng.randrange(0, 1 << self.narrow_width)
        return rng.randrange(1 << self.narrow_width, 1 << (MACHINE_WIDTH - 1))


class GenerationStats:
    """Process-wide trace-generation counter.

    The cross-job trace store's contract is that a sweep generates each
    distinct (profile, length, seed, slicing) trace exactly once; this
    counter is what the counting tests assert against.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0


#: Incremented on every :func:`generate_trace` call in this process.
GENERATION_STATS = GenerationStats()


def generate_trace(profile: BenchmarkProfile, num_uops: int, seed: int = 0,
                   name: Optional[str] = None) -> Trace:
    """Convenience wrapper: build a generator and produce one trace.

    The width of the profile's "narrow" data band follows
    ``profile.data_width`` (8 bits for the SPEC profiles, so existing traces
    are bit-identical; 16 produces halfword-heavy workloads for asymmetric
    helper-mix exploration).
    """
    GENERATION_STATS.count += 1
    return SyntheticTraceGenerator(
        profile, seed=seed,
        narrow_width=profile.data_width).generate(num_uops, name=name)
