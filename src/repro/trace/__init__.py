"""Trace substrate: synthetic IA-32-like uop traces.

The original paper evaluates on proprietary traces (100M-instruction SPEC Int
2000 traces and 10M-instruction traces of 412 production applications).  Those
are unavailable, so this subpackage builds the closest synthetic equivalent:

* :mod:`repro.trace.profiles` — per-benchmark statistical profiles describing
  instruction mix, data-value narrowness, loop structure, memory behaviour and
  branch behaviour for the 12 SPEC Int 2000 applications the paper uses.
* :mod:`repro.trace.synthetic` — a generator that builds a *static program*
  (loop nests of basic blocks) from a profile and then functionally emulates
  it, producing a :class:`~repro.trace.trace.Trace` whose uops carry concrete,
  dataflow-consistent values.  Data widths, flags and carries are therefore
  real properties of the generated stream, not annotations.
* :mod:`repro.trace.slicing` — the 10-slice / start-at-fourth-slice sampling
  discipline of §3.1.
* :mod:`repro.trace.workloads` — the Table 2 suite: 412 application instances
  across seven workload categories.
* :mod:`repro.trace.serialization` — text (diff-able JSON lines) and binary
  (digest-checked pickle) trace formats.
* :mod:`repro.trace.store` — the content-addressed on-disk trace store the
  sweep engine shares traces through (one generation per distinct trace).
"""

from repro.trace.trace import Trace, TraceStats
from repro.trace.profiles import (
    BenchmarkProfile,
    SPEC_INT_2000,
    SPEC_INT_NAMES,
    get_profile,
)
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace
from repro.trace.slicing import slice_trace, select_simulation_slice
from repro.trace.workloads import (
    WorkloadCategory,
    WORKLOAD_CATEGORIES,
    WorkloadApp,
    build_workload_suite,
)
from repro.trace.serialization import (
    save_trace,
    load_trace,
    iter_trace_records,
    save_trace_binary,
    load_trace_binary,
)
from repro.trace.store import TraceStore, trace_key

__all__ = [
    "Trace",
    "TraceStats",
    "BenchmarkProfile",
    "SPEC_INT_2000",
    "SPEC_INT_NAMES",
    "get_profile",
    "SyntheticTraceGenerator",
    "generate_trace",
    "slice_trace",
    "select_simulation_slice",
    "WorkloadCategory",
    "WORKLOAD_CATEGORIES",
    "WorkloadApp",
    "build_workload_suite",
    "save_trace",
    "load_trace",
    "iter_trace_records",
    "save_trace_binary",
    "load_trace_binary",
    "TraceStore",
    "trace_key",
]
