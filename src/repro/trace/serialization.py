"""Trace (de)serialisation.

Synthetic traces are cheap to regenerate, but a downstream user comparing
steering policies wants to pin the *exact* uop stream to disk — both for
long-running sweeps (generate once, simulate many times) and to exchange
traces between machines.  Two formats:

* the *text* format (:func:`save_trace` / :func:`load_trace`) is
  line-delimited JSON — one header line with the trace metadata followed by
  one compact JSON array per uop — which keeps files diff-able and streams
  without loading everything into memory;
* the *binary* format (:func:`save_trace_binary` / :func:`load_trace_binary`)
  is a digest-checked pickle used by the engine's cross-job trace store
  (:mod:`repro.trace.store`), where load speed matters more than
  diff-ability: a worker re-hydrating a 30k-uop trace pays a single pickle
  load instead of re-deriving 30k uops.  A binary entry is
  ``<header JSON line>\\n<pickled Trace payload>``; the header records the
  format version and a SHA-256 digest of the payload, so corrupted or
  truncated files are detected and rejected on load.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import pickle
from pathlib import Path
from typing import IO, Iterator, Optional, Union

from repro.isa.opcodes import Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import MicroOp
from repro.trace.trace import Trace

#: Format identifier written to the header line.
FORMAT_VERSION = 1

#: Binary (pickle) format identifier; bump when the entry layout changes.
BINARY_FORMAT_VERSION = 1

_PathLike = Union[str, Path]


def _uop_to_record(uop: MicroOp) -> list:
    """Encode one MicroOp as a compact JSON-serialisable list."""
    return [
        uop.uid,
        uop.pc,
        int(uop.opcode),
        [int(r) for r in uop.srcs],
        None if uop.dest is None else int(uop.dest),
        uop.imm,
        list(uop.src_values),
        uop.result_value,
        uop.flags_value,
        uop.mem_addr,
        uop.mem_size,
        int(uop.is_taken),
        [p for p in uop.producer_uids],
        uop.flags_producer_uid,
    ]


def _record_to_uop(record: list) -> MicroOp:
    """Decode one uop record produced by :func:`_uop_to_record`."""
    (uid, pc, opcode, srcs, dest, imm, src_values, result_value, flags_value,
     mem_addr, mem_size, is_taken, producer_uids, flags_producer_uid) = record
    return MicroOp(
        uid=uid,
        pc=pc,
        opcode=Opcode(opcode),
        srcs=tuple(ArchReg(r) for r in srcs),
        dest=None if dest is None else ArchReg(dest),
        imm=imm,
        src_values=tuple(src_values),
        result_value=result_value,
        flags_value=flags_value,
        mem_addr=mem_addr,
        mem_size=mem_size,
        is_taken=bool(is_taken),
        producer_uids=tuple(producer_uids),
        flags_producer_uid=flags_producer_uid,
    )


def _open(path: _PathLike, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_trace(trace: Trace, path: _PathLike) -> Path:
    """Write a trace to ``path`` (gzip-compressed when the suffix is ``.gz``)."""
    path = Path(path)
    header = {
        "format": FORMAT_VERSION,
        "name": trace.name,
        "seed": trace.seed,
        "static_pcs": trace.static_pcs,
        "num_uops": len(trace),
    }
    with _open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for uop in trace.uops:
            handle.write(json.dumps(_uop_to_record(uop), separators=(",", ":")) + "\n")
    return path


def iter_trace_records(path: _PathLike) -> Iterator[MicroOp]:
    """Stream uops from a saved trace without materialising the whole list."""
    with _open(path, "r") as handle:
        header = json.loads(handle.readline())
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {header.get('format')!r}; "
                f"expected {FORMAT_VERSION}")
        for line in handle:
            line = line.strip()
            if line:
                yield _record_to_uop(json.loads(line))


def save_trace_binary(trace: Trace, path: _PathLike) -> Path:
    """Write a trace as a digest-checked pickle (the trace store's format).

    The caller is responsible for atomicity (write to a temp file and
    ``os.replace``) when concurrent readers are possible; the on-disk bytes
    themselves are self-validating via the header digest.
    """
    path = Path(path)
    payload = pickle.dumps(trace, protocol=pickle.HIGHEST_PROTOCOL)
    header = json.dumps({
        "format": BINARY_FORMAT_VERSION,
        "name": trace.name,
        "seed": trace.seed,
        "num_uops": len(trace),
        "digest": hashlib.sha256(payload).hexdigest(),
    }, sort_keys=True).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(b"\n")
        handle.write(payload)
    return path


def load_trace_binary(path: _PathLike) -> Trace:
    """Read a trace written by :func:`save_trace_binary`.

    Raises ``ValueError`` on format mismatch, digest mismatch, truncation or
    an un-unpicklable payload, so callers can treat any failure as a cache
    miss and regenerate.
    """
    blob = Path(path).read_bytes()
    newline = blob.find(b"\n")
    if newline < 0:
        raise ValueError(f"binary trace file {path} has no header line")
    try:
        header = json.loads(blob[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ValueError(f"binary trace file {path} has a corrupt header") from exc
    if not isinstance(header, dict) or header.get("format") != BINARY_FORMAT_VERSION:
        raise ValueError(
            f"unsupported binary trace format {header.get('format')!r}; "
            f"expected {BINARY_FORMAT_VERSION}")
    payload = blob[newline + 1:]
    if header.get("digest") != hashlib.sha256(payload).hexdigest():
        raise ValueError(f"binary trace file {path} failed its digest check")
    try:
        trace = pickle.loads(payload)
    except Exception as exc:
        raise ValueError(f"binary trace file {path} failed to unpickle") from exc
    if not isinstance(trace, Trace):
        raise ValueError(f"binary trace file {path} does not contain a Trace")
    expected = header.get("num_uops")
    if expected is not None and expected != len(trace):
        raise ValueError(
            f"binary trace file {path} is truncated: header says {expected} "
            f"uops, found {len(trace)}")
    return trace


def load_trace(path: _PathLike) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with _open(path, "r") as handle:
        header = json.loads(handle.readline())
    if header.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {header.get('format')!r}; expected {FORMAT_VERSION}")
    trace = Trace(name=header.get("name", path.stem), seed=header.get("seed"),
                  static_pcs=header.get("static_pcs", 0))
    trace.uops.extend(iter_trace_records(path))
    expected = header.get("num_uops")
    if expected is not None and expected != len(trace):
        raise ValueError(
            f"trace file {path} is truncated: header says {expected} uops, "
            f"found {len(trace)}")
    return trace
