"""Per-benchmark statistical profiles for the synthetic trace generator.

Each :class:`BenchmarkProfile` captures the properties of a workload that the
paper's steering policies are sensitive to.  The twelve SPEC Int 2000 profiles
are calibrated so that the *distributions* the paper reports emerge from the
generated traces:

* the fraction of register operands that are narrow-width dependent
  (Figure 1, ~65% on average, with gzip/gcc at the high end and
  crafty/twolf/vpr at the lower end);
* the producer-consumer distance (Figure 13, between roughly 2 and 6 uops);
* the fraction of (8-bit, 32-bit) -> 32-bit additions whose carry does not
  propagate past bit 7 (Figure 11, large for loads, smaller for arithmetic);
* the per-PC width locality that determines width-predictor accuracy
  (Figure 5, ~93.5% correct);
* the copy pressure that makes bzip2 the worst and gcc the best performer
  under the plain 8-8-8 policy (§3.2).

Absolute magnitudes cannot be reproduced without the proprietary traces; the
profiles aim for the right ordering and rough factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping

from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of dynamic uops per coarse class.  Must sum to ~1."""

    alu: float = 0.42
    mul: float = 0.01
    div: float = 0.005
    load: float = 0.24
    store: float = 0.12
    cond_branch: float = 0.12
    uncond_branch: float = 0.03
    fp: float = 0.055

    def normalized(self) -> "InstructionMix":
        """Return a copy scaled so the fractions sum to exactly 1."""
        total = (self.alu + self.mul + self.div + self.load + self.store
                 + self.cond_branch + self.uncond_branch + self.fp)
        if total <= 0:
            raise ValueError("instruction mix fractions must sum to a positive value")
        return InstructionMix(
            alu=self.alu / total,
            mul=self.mul / total,
            div=self.div / total,
            load=self.load / total,
            store=self.store / total,
            cond_branch=self.cond_branch / total,
            uncond_branch=self.uncond_branch / total,
            fp=self.fp / total,
        )

    def to_key_dict(self) -> Dict[str, float]:
        """Canonical field dict for cache keys (REP002): every field."""
        return {
            "alu": self.alu,
            "mul": self.mul,
            "div": self.div,
            "load": self.load,
            "store": self.store,
            "cond_branch": self.cond_branch,
            "uncond_branch": self.uncond_branch,
            "fp": self.fp,
        }

    def as_dict(self) -> Dict[str, float]:
        return self.to_key_dict()


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical description of one benchmark for the synthetic generator.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"gcc"``).
    mix:
        Dynamic instruction mix.
    narrow_data_fraction:
        Probability that a data value loaded from memory (or materialised as
        a live-in) is narrow (fits in 8 bits).  Primary knob for Figure 1.
    narrow_consumer_locality:
        Probability that the consumer of a narrow value is another
        data-manipulation op (which can itself live in the helper cluster)
        rather than an addressing/indexing op in the wide cluster.  Low values
        produce many narrow-to-wide copies (bzip2); high values produce few
        (gcc).
    loop_trip_mean:
        Mean loop trip count.  Loop counters stay narrow while the trip count
        is below 256, which is the common case.
    loop_body_size:
        Mean number of uops per loop body; controls producer-consumer
        distance together with ``dependency_span``.
    dependency_span:
        Mean distance (in uops) between a producer and its consumer within a
        block; primary knob for Figure 13.
    aligned_base_fraction:
        Fraction of load/store base addresses whose low byte is small enough
        that adding a small offset does not carry past bit 7 (Figure 11 /
        the CR scheme's motivating case, Figure 10).
    small_offset_fraction:
        Fraction of address offsets that fit in 8 bits.
    byte_load_fraction:
        Fraction of loads that are byte loads (always produce narrow values,
        relevant to LR, §3.4).
    pointer_arith_fraction:
        Fraction of ALU uops that manipulate wide pointers (never narrow).
    width_locality:
        Probability that a static instruction produces a result of the same
        width class as its previous dynamic instance; knob for Figure 5.
    data_width:
        Width in bits of the benchmark's "narrow" data band (8 for the
        SPEC profiles, matching the paper).  Halfword-heavy workloads
        (``data_width=16``) exercise asymmetric helper mixes: their data
        values mostly need 9-16 bits, which only a >= 16-bit helper fits.
    static_loops:
        Number of distinct loop nests in the synthetic static program (code
        footprint; interacts with the 256-entry predictor capacity).
    category:
        Workload category label; ``"specint"`` for the SPEC Int 2000 apps.
    """

    name: str
    mix: InstructionMix = field(default_factory=InstructionMix)
    narrow_data_fraction: float = 0.6
    narrow_consumer_locality: float = 0.6
    loop_trip_mean: float = 40.0
    loop_body_size: int = 12
    dependency_span: float = 2.5
    aligned_base_fraction: float = 0.6
    small_offset_fraction: float = 0.8
    byte_load_fraction: float = 0.15
    pointer_arith_fraction: float = 0.25
    width_locality: float = 0.94
    data_width: int = NARROW_WIDTH
    static_loops: int = 24
    category: str = "specint"

    def __post_init__(self) -> None:
        if not 0 < self.data_width < MACHINE_WIDTH:
            raise ValueError(
                f"data_width must be in (0, {MACHINE_WIDTH}), got {self.data_width}")
        for attr in (
            "narrow_data_fraction",
            "narrow_consumer_locality",
            "aligned_base_fraction",
            "small_offset_fraction",
            "byte_load_fraction",
            "pointer_arith_fraction",
            "width_locality",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.loop_trip_mean <= 0 or self.loop_body_size <= 0:
            raise ValueError("loop parameters must be positive")
        if self.static_loops <= 0:
            raise ValueError("static_loops must be positive")

    def scaled(self, **overrides) -> "BenchmarkProfile":
        """Return a copy with selected fields overridden."""
        return replace(self, **overrides)

    def to_key_dict(self) -> Dict[str, object]:
        """Canonical field dict for cache keys (REP002).

        Every field appears explicitly: the sweep engine's result keys and
        the trace store's keys hash ``canonical_text(profile.to_key_dict())``,
        so a field missing here would let two distinct profiles alias one
        cache entry (stale-hit hazard).  ``mix`` nests its own key dict.
        """
        return {
            "name": self.name,
            "mix": self.mix.to_key_dict(),
            "narrow_data_fraction": self.narrow_data_fraction,
            "narrow_consumer_locality": self.narrow_consumer_locality,
            "loop_trip_mean": self.loop_trip_mean,
            "loop_body_size": self.loop_body_size,
            "dependency_span": self.dependency_span,
            "aligned_base_fraction": self.aligned_base_fraction,
            "small_offset_fraction": self.small_offset_fraction,
            "byte_load_fraction": self.byte_load_fraction,
            "pointer_arith_fraction": self.pointer_arith_fraction,
            "width_locality": self.width_locality,
            "data_width": self.data_width,
            "static_loops": self.static_loops,
            "category": self.category,
        }


def _p(name: str, **kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, **kwargs)


#: The 12 SPEC Int 2000 applications used in the paper's detailed analysis
#: (§3.1), with profiles calibrated to the orderings visible in Figures 1,
#: 5-9 and 11-13.
SPEC_INT_2000: Dict[str, BenchmarkProfile] = {
    # bzip2: lots of narrow byte data, but the narrow values are mostly used
    # as indices into wide tables -> highest copy/narrow ratio, worst 8-8-8
    # performer.
    "bzip2": _p(
        "bzip2",
        mix=InstructionMix(alu=0.46, load=0.26, store=0.11, cond_branch=0.12,
                           uncond_branch=0.02, mul=0.005, div=0.002, fp=0.003),
        narrow_data_fraction=0.78,
        narrow_consumer_locality=0.30,
        loop_trip_mean=120.0,
        loop_body_size=10,
        dependency_span=2.0,
        aligned_base_fraction=0.55,
        byte_load_fraction=0.45,
        pointer_arith_fraction=0.30,
        width_locality=0.95,
        static_loops=18,
    ),
    # crafty: chess engine, 64-bit-ish bitboards emulated with wide logic ->
    # comparatively few narrow operands.
    "crafty": _p(
        "crafty",
        mix=InstructionMix(alu=0.50, load=0.23, store=0.09, cond_branch=0.12,
                           uncond_branch=0.04, mul=0.008, div=0.002, fp=0.01),
        narrow_data_fraction=0.45,
        narrow_consumer_locality=0.55,
        loop_trip_mean=18.0,
        loop_body_size=16,
        dependency_span=3.0,
        aligned_base_fraction=0.50,
        byte_load_fraction=0.10,
        pointer_arith_fraction=0.35,
        width_locality=0.92,
        static_loops=40,
    ),
    # eon: C++ ray tracer, significant FP, moderate narrowness.
    "eon": _p(
        "eon",
        mix=InstructionMix(alu=0.38, load=0.25, store=0.14, cond_branch=0.09,
                           uncond_branch=0.04, mul=0.01, div=0.004, fp=0.09),
        narrow_data_fraction=0.50,
        narrow_consumer_locality=0.60,
        loop_trip_mean=25.0,
        loop_body_size=14,
        dependency_span=2.8,
        aligned_base_fraction=0.60,
        byte_load_fraction=0.08,
        pointer_arith_fraction=0.30,
        width_locality=0.93,
        static_loops=32,
    ),
    # gap: group theory interpreter, small integers dominate.
    "gap": _p(
        "gap",
        mix=InstructionMix(alu=0.44, load=0.26, store=0.11, cond_branch=0.11,
                           uncond_branch=0.04, mul=0.01, div=0.004, fp=0.02),
        narrow_data_fraction=0.70,
        narrow_consumer_locality=0.62,
        loop_trip_mean=35.0,
        loop_body_size=12,
        dependency_span=2.4,
        aligned_base_fraction=0.62,
        byte_load_fraction=0.12,
        pointer_arith_fraction=0.28,
        width_locality=0.94,
        static_loops=30,
    ),
    # gcc: compiler, many small enum/flag values consumed by further narrow
    # tests -> best 8-8-8 performer, low copy ratio.
    "gcc": _p(
        "gcc",
        mix=InstructionMix(alu=0.45, load=0.25, store=0.12, cond_branch=0.13,
                           uncond_branch=0.035, mul=0.004, div=0.001, fp=0.005),
        narrow_data_fraction=0.75,
        narrow_consumer_locality=0.85,
        loop_trip_mean=22.0,
        loop_body_size=11,
        dependency_span=2.2,
        aligned_base_fraction=0.65,
        byte_load_fraction=0.18,
        pointer_arith_fraction=0.22,
        width_locality=0.93,
        static_loops=64,
    ),
    # gzip: LZ77 byte stream compression, very narrow data.
    "gzip": _p(
        "gzip",
        mix=InstructionMix(alu=0.47, load=0.26, store=0.12, cond_branch=0.11,
                           uncond_branch=0.02, mul=0.003, div=0.001, fp=0.002),
        narrow_data_fraction=0.82,
        narrow_consumer_locality=0.70,
        loop_trip_mean=90.0,
        loop_body_size=9,
        dependency_span=2.0,
        aligned_base_fraction=0.60,
        byte_load_fraction=0.40,
        pointer_arith_fraction=0.26,
        width_locality=0.96,
        static_loops=16,
    ),
    # mcf: pointer chasing over network simplex, addresses wide but node
    # fields narrow; memory bound.
    "mcf": _p(
        "mcf",
        mix=InstructionMix(alu=0.38, load=0.32, store=0.09, cond_branch=0.13,
                           uncond_branch=0.03, mul=0.004, div=0.001, fp=0.003),
        narrow_data_fraction=0.68,
        narrow_consumer_locality=0.58,
        loop_trip_mean=55.0,
        loop_body_size=10,
        dependency_span=2.3,
        aligned_base_fraction=0.70,
        byte_load_fraction=0.10,
        pointer_arith_fraction=0.40,
        width_locality=0.94,
        static_loops=20,
    ),
    # parser: word dictionary lookups, mixed widths.
    "parser": _p(
        "parser",
        mix=InstructionMix(alu=0.43, load=0.27, store=0.10, cond_branch=0.13,
                           uncond_branch=0.035, mul=0.004, div=0.001, fp=0.005),
        narrow_data_fraction=0.63,
        narrow_consumer_locality=0.65,
        loop_trip_mean=28.0,
        loop_body_size=12,
        dependency_span=2.5,
        aligned_base_fraction=0.58,
        byte_load_fraction=0.22,
        pointer_arith_fraction=0.30,
        width_locality=0.93,
        static_loops=36,
    ),
    # perlbmk: interpreter dispatch, moderate narrowness, irregular control.
    "perlbmk": _p(
        "perlbmk",
        mix=InstructionMix(alu=0.42, load=0.27, store=0.12, cond_branch=0.12,
                           uncond_branch=0.05, mul=0.005, div=0.002, fp=0.008),
        narrow_data_fraction=0.60,
        narrow_consumer_locality=0.63,
        loop_trip_mean=20.0,
        loop_body_size=13,
        dependency_span=2.7,
        aligned_base_fraction=0.56,
        byte_load_fraction=0.20,
        pointer_arith_fraction=0.32,
        width_locality=0.92,
        static_loops=48,
    ),
    # twolf: place & route, coordinates exceed 8 bits fairly often.
    "twolf": _p(
        "twolf",
        mix=InstructionMix(alu=0.44, load=0.25, store=0.10, cond_branch=0.12,
                           uncond_branch=0.03, mul=0.015, div=0.006, fp=0.03),
        narrow_data_fraction=0.52,
        narrow_consumer_locality=0.58,
        loop_trip_mean=30.0,
        loop_body_size=14,
        dependency_span=2.8,
        aligned_base_fraction=0.52,
        byte_load_fraction=0.08,
        pointer_arith_fraction=0.30,
        width_locality=0.92,
        static_loops=34,
    ),
    # vortex: OO database, object headers with small tags.
    "vortex": _p(
        "vortex",
        mix=InstructionMix(alu=0.41, load=0.27, store=0.14, cond_branch=0.11,
                           uncond_branch=0.04, mul=0.004, div=0.001, fp=0.005),
        narrow_data_fraction=0.62,
        narrow_consumer_locality=0.66,
        loop_trip_mean=24.0,
        loop_body_size=12,
        dependency_span=2.5,
        aligned_base_fraction=0.60,
        byte_load_fraction=0.15,
        pointer_arith_fraction=0.33,
        width_locality=0.93,
        static_loops=44,
    ),
    # vpr: FPGA place & route, FP cost functions, wider data.
    "vpr": _p(
        "vpr",
        mix=InstructionMix(alu=0.42, load=0.25, store=0.10, cond_branch=0.12,
                           uncond_branch=0.03, mul=0.012, div=0.005, fp=0.06),
        narrow_data_fraction=0.50,
        narrow_consumer_locality=0.60,
        loop_trip_mean=26.0,
        loop_body_size=13,
        dependency_span=2.7,
        aligned_base_fraction=0.54,
        byte_load_fraction=0.08,
        pointer_arith_fraction=0.30,
        width_locality=0.92,
        static_loops=30,
    ),
}

#: Names of the SPEC Int 2000 benchmarks in the order the paper plots them.
SPEC_INT_NAMES: List[str] = list(SPEC_INT_2000.keys())


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a SPEC Int 2000 profile by name.

    Raises ``KeyError`` with the list of known names if the benchmark is
    unknown.
    """
    try:
        return SPEC_INT_2000[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {', '.join(SPEC_INT_NAMES)}"
        ) from None


def random_profile(rng, name: str = "fuzz") -> BenchmarkProfile:
    """Draw a random-but-valid :class:`BenchmarkProfile` from ``rng``.

    Starts from a random SPEC profile and perturbs every distribution knob
    within its validated range, so the synthetic generator sees parameter
    corners (extreme narrowness, tiny/huge loops, 16-bit data bands) that
    no calibrated profile reaches while every draw still passes
    ``__post_init__`` validation.  The draw is a pure function of the
    ``random.Random`` state — the fuzz harness's determinism contract.
    """
    base = SPEC_INT_2000[rng.choice(SPEC_INT_NAMES)]

    def fraction(value: float) -> float:
        return min(1.0, max(0.0, value + rng.uniform(-0.3, 0.3)))

    mix = base.mix.normalized()
    return base.scaled(
        name=name,
        narrow_data_fraction=fraction(base.narrow_data_fraction),
        narrow_consumer_locality=fraction(base.narrow_consumer_locality),
        loop_trip_mean=max(1.0, base.loop_trip_mean * rng.uniform(0.1, 3.0)),
        loop_body_size=max(1, int(base.loop_body_size * rng.uniform(0.3, 2.5))),
        dependency_span=max(0.5, base.dependency_span * rng.uniform(0.4, 3.0)),
        aligned_base_fraction=fraction(base.aligned_base_fraction),
        small_offset_fraction=fraction(base.small_offset_fraction),
        byte_load_fraction=fraction(base.byte_load_fraction),
        pointer_arith_fraction=fraction(base.pointer_arith_fraction),
        width_locality=fraction(base.width_locality),
        data_width=rng.choice((8, 8, 8, 16)),
        static_loops=max(1, int(base.static_loops * rng.uniform(0.25, 2.0))),
        mix=mix,
        category="fuzz",
    )


def average_profile(profiles: Mapping[str, BenchmarkProfile] | None = None,
                    name: str = "avg") -> BenchmarkProfile:
    """Construct a profile whose numeric parameters are the mean of a set.

    Useful for quick experiments that need a single representative workload.
    """
    profiles = dict(profiles or SPEC_INT_2000)
    if not profiles:
        raise ValueError("no profiles supplied")
    items = list(profiles.values())
    n = len(items)

    def mean(attr: str) -> float:
        return sum(getattr(p, attr) for p in items) / n

    mixes = [p.mix.normalized() for p in items]
    mix = InstructionMix(
        alu=sum(m.alu for m in mixes) / n,
        mul=sum(m.mul for m in mixes) / n,
        div=sum(m.div for m in mixes) / n,
        load=sum(m.load for m in mixes) / n,
        store=sum(m.store for m in mixes) / n,
        cond_branch=sum(m.cond_branch for m in mixes) / n,
        uncond_branch=sum(m.uncond_branch for m in mixes) / n,
        fp=sum(m.fp for m in mixes) / n,
    )
    return BenchmarkProfile(
        name=name,
        mix=mix,
        narrow_data_fraction=mean("narrow_data_fraction"),
        narrow_consumer_locality=mean("narrow_consumer_locality"),
        loop_trip_mean=mean("loop_trip_mean"),
        loop_body_size=int(round(mean("loop_body_size"))),
        dependency_span=mean("dependency_span"),
        aligned_base_fraction=mean("aligned_base_fraction"),
        small_offset_fraction=mean("small_offset_fraction"),
        byte_load_fraction=mean("byte_load_fraction"),
        pointer_arith_fraction=mean("pointer_arith_fraction"),
        width_locality=mean("width_locality"),
        static_loops=int(round(mean("static_loops"))),
        category="synthetic",
    )
