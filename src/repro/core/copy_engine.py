"""Inter-cluster copy generation, load replication and copy prefetching.

Values produced in one backend and consumed in the other must be moved with
explicit *copy* instructions (the Canal/Parcerisa/González scheme the paper
adopts): the consumer generates a copy uop that is steered to the *producer's*
backend, waits there for the value, and writes it into the consumer backend's
register file.  Copies cost issue slots and latency, so the steering schemes
try to minimise both their number (BR, LR) and their latency (CP).

The :class:`CopyEngine` tracks where each in-flight value is available, decides
when a copy is needed, implements load replication (§3.4: narrow loads write
their result into both clusters through the shared MOB) and copy prefetching
(§3.6: generate the copy at the producer, predicted by the CP bit, instead of
waiting for the consumer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.pipeline.clocking import ClockDomain


@dataclass(slots=True)
class CopyRequest:
    """A copy uop to be injected by the simulator.

    Attributes
    ----------
    value_uid:
        uid of the producer whose value is being copied.
    from_domain / to_domain:
        Producer cluster (where the copy executes) and consumer cluster
        (where the value is delivered).
    prefetch:
        True when generated at the producer by the CP scheme rather than on
        demand by a consumer.
    """

    value_uid: int
    from_domain: ClockDomain
    to_domain: ClockDomain
    prefetch: bool = False


@dataclass
class CopyStats:
    """Copy activity counters."""

    copies_generated: int = 0
    demand_copies: int = 0
    prefetched_copies: int = 0
    useful_prefetches: int = 0
    replicated_loads: int = 0
    copies_avoided_by_replication: int = 0

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetched_copies == 0:
            return 0.0
        return self.useful_prefetches / self.prefetched_copies


class CopyEngine:
    """Tracks value availability per cluster and generates copy requests.

    Domains are cluster indices (:class:`ClockDomain` members for the paper's
    wide + narrow pair, plain ints for further helper clusters); the engine
    never assumes there are only two.
    """

    def __init__(self, num_domains: int = 2) -> None:
        if num_domains < 1:
            raise ValueError("a machine has at least one cluster")
        self.num_domains = num_domains
        #: value_uid -> {domain: fast cycle at which the value is available there}
        self._availability: Dict[int, Dict[ClockDomain, int]] = {}
        #: value_uid -> domain of a copy already in flight toward that domain
        self._pending: Dict[int, set] = {}
        #: Public live views for the simulator's per-dependence fast path
        #: (one dict probe instead of a method call per source operand).
        #: They alias the internal maps for the engine's lifetime — mutate
        #: only through the engine's methods.
        self.availability_map = self._availability
        self.pending_map = self._pending
        self.stats = CopyStats()

    # --------------------------------------------------------------- tracking
    def note_produced(self, value_uid: int, domain: ClockDomain,
                      ready_cycle: int) -> None:
        """Record that ``value_uid`` will be available in ``domain`` at ``ready_cycle``."""
        slots = self._availability.get(value_uid)
        if slots is None:
            slots = self._availability[value_uid] = {}
        slots[domain] = ready_cycle

    def note_replicated(self, value_uid: int, ready_cycle: int,
                        extra_latency: int = 0) -> None:
        """Load replication (§3.4): the value appears in *every* cluster.

        The replicas become available ``extra_latency`` fast cycles after the
        primary (register-file write port scheduling).
        """
        slots = self._availability.setdefault(value_uid, {})
        for domain in range(self.num_domains):
            if domain in slots:
                continue
            base = min(slots.values()) if slots else ready_cycle
            slots[domain] = max(base, ready_cycle) + extra_latency
        self.stats.replicated_loads += 1

    def availability(self, value_uid: int, domain: ClockDomain) -> Optional[int]:
        """Fast cycle at which the value is available in ``domain`` (None = not there)."""
        slots = self._availability.get(value_uid)
        return None if slots is None else slots.get(domain)

    def domains_available(self, value_uid: int) -> list:
        """Clusters in which the value is (or will be) available."""
        slots = self._availability.get(value_uid)
        return [] if slots is None else list(slots)

    def available_anywhere(self, value_uid: int) -> bool:
        return value_uid in self._availability

    # ------------------------------------------------------------------ copies
    def needs_copy(self, value_uid: int, to_domain: ClockDomain) -> bool:
        """True if the value is not (and will not be) available in ``to_domain``."""
        slots = self._availability.get(value_uid)
        if slots is None:
            # Unknown value (e.g. architectural live-in): treat as available
            # everywhere — live-ins are committed state visible to both
            # register files.
            return False
        if to_domain in slots:
            return False
        pending = self._pending.get(value_uid)
        return pending is None or to_domain not in pending

    def copy_in_flight(self, value_uid: int, to_domain: ClockDomain) -> bool:
        pending = self._pending.get(value_uid)
        return pending is not None and to_domain in pending

    def request_copy(self, value_uid: int, from_domain: ClockDomain,
                     to_domain: ClockDomain, prefetch: bool = False) -> CopyRequest:
        """Create a copy request and record it as pending."""
        if from_domain == to_domain:
            raise ValueError("copy source and destination clusters must differ")
        self._pending.setdefault(value_uid, set()).add(to_domain)
        self.stats.copies_generated += 1
        if prefetch:
            self.stats.prefetched_copies += 1
        else:
            self.stats.demand_copies += 1
        return CopyRequest(value_uid=value_uid, from_domain=from_domain,
                           to_domain=to_domain, prefetch=prefetch)

    def complete_copy(self, request: CopyRequest, ready_cycle: int) -> None:
        """Mark a copy as delivered: the value is now available in the target cluster."""
        self.note_produced(request.value_uid, request.to_domain, ready_cycle)
        pending = self._pending.get(request.value_uid)
        if pending is not None:
            pending.discard(request.to_domain)
            if not pending:
                del self._pending[request.value_uid]

    def cancel_copy(self, request: CopyRequest) -> None:
        """Abandon an in-flight copy (e.g. squashed by flushing recovery).

        Clears the pending marker without publishing any availability, so a
        later consumer can regenerate the copy if it is still needed.
        """
        pending = self._pending.get(request.value_uid)
        if pending is not None:
            pending.discard(request.to_domain)
            if not pending:
                del self._pending[request.value_uid]

    def note_prefetch_useful(self) -> None:
        """A consumer actually used a prefetched copy (CP accuracy accounting)."""
        self.stats.useful_prefetches += 1

    def note_copy_avoided(self) -> None:
        """A copy that would have been generated was avoided by replication."""
        self.stats.copies_avoided_by_replication += 1

    # ----------------------------------------------------------------- cleanup
    def retire_value(self, value_uid: int) -> None:
        """Drop tracking state once the producing uop has committed and its
        consumers have all dispatched (the simulator calls this lazily)."""
        self._availability.pop(value_uid, None)
        self._pending.pop(value_uid, None)

    def reset(self) -> None:
        self._availability.clear()
        self._pending.clear()
        self.stats = CopyStats()
