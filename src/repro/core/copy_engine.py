"""Inter-cluster copy generation, load replication and copy prefetching.

Values produced in one backend and consumed in the other must be moved with
explicit *copy* instructions (the Canal/Parcerisa/González scheme the paper
adopts): the consumer generates a copy uop that is steered to the *producer's*
backend, waits there for the value, and writes it into the consumer backend's
register file.  Copies cost issue slots and latency, so the steering schemes
try to minimise both their number (BR, LR) and their latency (CP).

The :class:`CopyEngine` tracks where each in-flight value is available, decides
when a copy is needed, implements load replication (§3.4: narrow loads write
their result into both clusters through the shared MOB) and copy prefetching
(§3.6: generate the copy at the producer, predicted by the CP bit, instead of
waiting for the consumer).

Storage is struct-of-arrays value *lanes* (see DESIGN.md, "Hot state &
compiled core"): per-value state lives in flat ``array`` columns indexed by
``value_uid * num_domains + domain``.  Trace uids are dense (the uop builder
assigns them sequentially), so the lanes grow geometrically with the highest
uid touched and every per-source probe in the simulator's dependence
resolution is straight index arithmetic — which is also the layout the
compiled ``resolve_deps`` kernel operates on.  Dict-insertion-order
semantics of the old uid-keyed maps are preserved by an explicit
first-arrival stamp per lane (``avail_order_lanes``): the recovery-migration
path of dependence resolution picks its copy-source cluster in value-arrival
order, exactly as iterating the old per-uid dict did.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Optional

from repro.pipeline.clocking import ClockDomain

#: Initial lane capacity in value uids; doubles as higher uids are touched.
_INITIAL_UIDS = 1024


@dataclass(slots=True)
class CopyRequest:
    """A copy uop to be injected by the simulator.

    Attributes
    ----------
    value_uid:
        uid of the producer whose value is being copied.
    from_domain / to_domain:
        Producer cluster (where the copy executes) and consumer cluster
        (where the value is delivered).
    prefetch:
        True when generated at the producer by the CP scheme rather than on
        demand by a consumer.
    """

    value_uid: int
    from_domain: ClockDomain
    to_domain: ClockDomain
    prefetch: bool = False


@dataclass
class CopyStats:
    """Copy activity counters."""

    copies_generated: int = 0
    demand_copies: int = 0
    prefetched_copies: int = 0
    useful_prefetches: int = 0
    replicated_loads: int = 0
    copies_avoided_by_replication: int = 0

    @property
    def prefetch_accuracy(self) -> float:
        if self.prefetched_copies == 0:
            return 0.0
        return self.useful_prefetches / self.prefetched_copies


class CopyEngine:
    """Tracks value availability per cluster and generates copy requests.

    Domains are cluster indices (:class:`ClockDomain` members for the paper's
    wide + narrow pair, plain ints for further helper clusters); the engine
    never assumes there are only two.
    """

    def __init__(self, num_domains: int = 2) -> None:
        if num_domains < 1:
            raise ValueError("a machine has at least one cluster")
        self.num_domains = num_domains
        cap = _INITIAL_UIDS
        self.cap_uids = cap
        lanes = cap * num_domains
        #: Public *live views* of the value lanes (REP003 contract): the
        #: simulator's dependence-resolution fast path and the compiled
        #: ``resolve_deps`` kernel index these arrays directly by
        #: ``value_uid * num_domains + domain``.  They alias the engine's
        #: storage for its whole lifetime — mutate only through the engine's
        #: methods (or the documented hot-state resolve sequence in
        #: :mod:`repro.sim.simulator`).
        #: fast cycle at which the value is available in the lane's domain
        #: (-1 = not there)
        self.avail_lanes = array("q", b"\xff" * (8 * lanes))
        #: first-arrival stamp per lane; reproduces the old per-uid dict's
        #: insertion order when picking a migration copy source
        self.avail_order_lanes = array("q", bytes(8 * lanes))
        #: number of domains each value is (or will be) available in
        self.avail_count_lanes = array("q", bytes(8 * cap))
        #: 1 while a copy is in flight toward the lane's domain
        self.pending_lanes = array("b", bytes(lanes))
        #: 1 while a prefetched copy toward the lane's domain is unconsumed
        self.prefetched_lanes = array("b", bytes(lanes))
        #: 1 once the value incurred a demand copy (or a consumed prefetch);
        #: trains the CP bit at the producer's commit (§3.6)
        self.copied_lanes = array("b", bytes(cap))
        #: hot-path counters the resolve kernel increments directly;
        #: index 0 = useful prefetches (folded into :attr:`stats` by
        #: :meth:`sync_stats`), index 1 = number of set bits in
        #: ``prefetched_lanes`` (live, exposed as :attr:`prefetched_active`)
        self.stat_lanes = array("q", bytes(16))
        #: monotonic first-arrival counter behind ``avail_order_lanes``
        self._order_counter = 0
        self.stats = CopyStats()

    # ------------------------------------------------------------------ lanes
    def _ensure(self, value_uid: int) -> None:
        """Grow the lanes so ``value_uid`` is indexable."""
        cap = self.cap_uids
        if value_uid < cap:
            return
        new_cap = cap
        while value_uid >= new_cap:
            new_cap *= 2
        grow = new_cap - cap
        D = self.num_domains
        self.avail_lanes.extend(array("q", b"\xff" * (8 * grow * D)))
        self.avail_order_lanes.extend(array("q", bytes(8 * grow * D)))
        self.avail_count_lanes.extend(array("q", bytes(8 * grow)))
        self.pending_lanes.extend(bytes(grow * D))
        self.prefetched_lanes.extend(bytes(grow * D))
        self.copied_lanes.extend(bytes(grow))
        self.cap_uids = new_cap

    @property
    def prefetched_active(self) -> int:
        """Number of unconsumed prefetched-copy bits (stat lane 1)."""
        return self.stat_lanes[1]

    @prefetched_active.setter
    def prefetched_active(self, value: int) -> None:
        self.stat_lanes[1] = value

    def sync_stats(self) -> None:
        """Fold the kernel-visible counters into :attr:`stats`."""
        self.stats.useful_prefetches += self.stat_lanes[0]
        self.stat_lanes[0] = 0

    # --------------------------------------------------------------- tracking
    def note_produced(self, value_uid: int, domain: ClockDomain,
                      ready_cycle: int) -> None:
        """Record that ``value_uid`` will be available in ``domain`` at ``ready_cycle``."""
        self._ensure(value_uid)
        lane = value_uid * self.num_domains + domain
        if self.avail_lanes[lane] < 0:
            self.avail_count_lanes[value_uid] += 1
            self.avail_order_lanes[lane] = self._order_counter
            self._order_counter += 1
        self.avail_lanes[lane] = ready_cycle

    def note_replicated(self, value_uid: int, ready_cycle: int,
                        extra_latency: int = 0) -> None:
        """Load replication (§3.4): the value appears in *every* cluster.

        The replicas become available ``extra_latency`` fast cycles after the
        primary (register-file write port scheduling).
        """
        self._ensure(value_uid)
        D = self.num_domains
        base_lane = value_uid * D
        avail = self.avail_lanes
        for domain in range(D):
            if avail[base_lane + domain] >= 0:
                continue
            base = ready_cycle
            filled = False
            for d in range(D):
                cycle = avail[base_lane + d]
                if cycle >= 0 and (not filled or cycle < base):
                    base = cycle
                    filled = True
            cycle = (base if base > ready_cycle else ready_cycle) + extra_latency
            self.note_produced(value_uid, domain, cycle)
        self.stats.replicated_loads += 1

    def availability(self, value_uid: int, domain: ClockDomain) -> Optional[int]:
        """Fast cycle at which the value is available in ``domain`` (None = not there)."""
        if value_uid >= self.cap_uids or value_uid < 0:
            return None
        cycle = self.avail_lanes[value_uid * self.num_domains + domain]
        return None if cycle < 0 else cycle

    def domains_available(self, value_uid: int) -> list:
        """Clusters in which the value is (or will be) available, in
        first-arrival order (the old per-uid dict's insertion order)."""
        if value_uid >= self.cap_uids or value_uid < 0:
            return []
        D = self.num_domains
        base = value_uid * D
        avail = self.avail_lanes
        order = self.avail_order_lanes
        present = [d for d in range(D) if avail[base + d] >= 0]
        present.sort(key=lambda d: order[base + d])
        return present

    def available_anywhere(self, value_uid: int) -> bool:
        return (0 <= value_uid < self.cap_uids
                and self.avail_count_lanes[value_uid] > 0)

    # ------------------------------------------------------------------ copies
    def needs_copy(self, value_uid: int, to_domain: ClockDomain) -> bool:
        """True if the value is not (and will not be) available in ``to_domain``."""
        if not self.available_anywhere(value_uid):
            # Unknown value (e.g. architectural live-in): treat as available
            # everywhere — live-ins are committed state visible to both
            # register files.
            return False
        lane = value_uid * self.num_domains + to_domain
        if self.avail_lanes[lane] >= 0:
            return False
        return not self.pending_lanes[lane]

    def copy_in_flight(self, value_uid: int, to_domain: ClockDomain) -> bool:
        if value_uid >= self.cap_uids or value_uid < 0:
            return False
        return bool(self.pending_lanes[value_uid * self.num_domains + to_domain])

    def request_copy(self, value_uid: int, from_domain: ClockDomain,
                     to_domain: ClockDomain, prefetch: bool = False) -> CopyRequest:
        """Create a copy request and record it as pending."""
        if from_domain == to_domain:
            raise ValueError("copy source and destination clusters must differ")
        self._ensure(value_uid)
        self.pending_lanes[value_uid * self.num_domains + to_domain] = 1
        self.stats.copies_generated += 1
        if prefetch:
            self.stats.prefetched_copies += 1
        else:
            self.stats.demand_copies += 1
        return CopyRequest(value_uid=value_uid, from_domain=from_domain,
                           to_domain=to_domain, prefetch=prefetch)

    def complete_copy(self, request: CopyRequest, ready_cycle: int) -> None:
        """Mark a copy as delivered: the value is now available in the target cluster."""
        self.note_produced(request.value_uid, request.to_domain, ready_cycle)
        self.pending_lanes[
            request.value_uid * self.num_domains + request.to_domain] = 0

    def cancel_copy(self, request: CopyRequest) -> None:
        """Abandon an in-flight copy (e.g. squashed by flushing recovery).

        Clears the pending marker without publishing any availability, so a
        later consumer can regenerate the copy if it is still needed.
        """
        if request.value_uid < self.cap_uids:
            self.pending_lanes[
                request.value_uid * self.num_domains + request.to_domain] = 0

    def note_prefetch_useful(self) -> None:
        """A consumer actually used a prefetched copy (CP accuracy accounting)."""
        self.stats.useful_prefetches += 1

    def note_copy_avoided(self) -> None:
        """A copy that would have been generated was avoided by replication."""
        self.stats.copies_avoided_by_replication += 1

    # --------------------------------------------------- prefetch/CP bookkeeping
    def mark_prefetched(self, value_uid: int, to_domain: ClockDomain) -> None:
        """Record an in-flight prefetched copy toward ``to_domain``."""
        self._ensure(value_uid)
        lane = value_uid * self.num_domains + to_domain
        if not self.prefetched_lanes[lane]:
            self.prefetched_lanes[lane] = 1
            self.prefetched_active += 1

    def mark_copied(self, value_uid: int) -> None:
        """Record that the value incurred a demand copy (CP training, §3.6)."""
        self._ensure(value_uid)
        self.copied_lanes[value_uid] = 1

    def was_copied(self, value_uid: int) -> bool:
        return (0 <= value_uid < self.cap_uids
                and bool(self.copied_lanes[value_uid]))

    # ----------------------------------------------------------------- cleanup
    def retire_value(self, value_uid: int) -> None:
        """Drop tracking state once the producing uop has committed and its
        consumers have all dispatched (the simulator calls this lazily)."""
        if value_uid >= self.cap_uids or value_uid < 0:
            return
        D = self.num_domains
        base = value_uid * D
        if self.avail_count_lanes[value_uid]:
            self.avail_count_lanes[value_uid] = 0
            for d in range(D):
                self.avail_lanes[base + d] = -1
        for d in range(D):
            self.pending_lanes[base + d] = 0

    def reset(self) -> None:
        lanes = self.cap_uids * self.num_domains
        self.avail_lanes[:] = array("q", b"\xff" * (8 * lanes))
        self.avail_order_lanes[:] = array("q", bytes(8 * lanes))
        self.avail_count_lanes[:] = array("q", bytes(8 * self.cap_uids))
        self.pending_lanes[:] = array("b", bytes(lanes))
        self.prefetched_lanes[:] = array("b", bytes(lanes))
        self.copied_lanes[:] = array("b", bytes(self.cap_uids))
        self.stat_lanes[0] = 0
        self.stat_lanes[1] = 0
        self._order_counter = 0
        self.stats = CopyStats()
