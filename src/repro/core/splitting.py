"""Wide-instruction splitting for imbalance reduction (IR, §3.7).

When the helper cluster is underutilised (wide-to-narrow NREADY imbalance),
the decode stage splits a wide instruction into four narrow instructions that
are identical to the original except that they operate on 8-bit register
slices.  The four chunks are chained — each depends on its less-significant
neighbour so the carry ripples in order — and, if the original instruction
had a destination register, the full 32-bit value is prefetched back to the
wide cluster with four 8-bit copy instructions.

The fine-tuned variant (IR-nodest) only splits instructions without a
destination register (stores, compares), trading a little imbalance for a
large reduction in copy traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.opcodes import OpClass, Opcode, opcode_info
from repro.isa.uop import MicroOp
from repro.isa.values import NARROW_WIDTH, split_bytes


@dataclass(frozen=True)
class SplitChunk:
    """One 8-bit slice of a split wide instruction."""

    chunk_index: int          # 0 = least significant byte
    opcode: Opcode
    latency_slow: int
    depends_on_previous: bool


@dataclass
class SplitPlan:
    """The decode-stage rewrite of one wide instruction under IR."""

    original_uid: int
    chunks: List[SplitChunk]
    #: copy-back uops prefetching the reassembled 32-bit result to the wide
    #: cluster (empty when the original has no destination register)
    copy_backs: int

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_uops(self) -> int:
        return self.num_chunks + self.copy_backs


@dataclass
class SplitterStats:
    """IR activity counters."""

    candidates_seen: int = 0
    split_instructions: int = 0
    chunks_created: int = 0
    copy_backs_created: int = 0
    rejected_not_splittable: int = 0
    rejected_has_dest: int = 0


class InstructionSplitter:
    """Builds :class:`SplitPlan` objects for the IR scheme."""

    def __init__(self, narrow_width: int = NARROW_WIDTH, machine_width: int = 32,
                 require_no_dest: bool = False) -> None:
        if machine_width % narrow_width:
            raise ValueError("machine width must be a multiple of the narrow width")
        self.narrow_width = narrow_width
        self.machine_width = machine_width
        self.require_no_dest = require_no_dest
        self.stats = SplitterStats()

    @property
    def num_chunks(self) -> int:
        return self.machine_width // self.narrow_width

    # -------------------------------------------------------------- eligibility
    def can_split(self, uop: MicroOp) -> bool:
        """Whether the IR scheme may split this uop.

        Only chunk-decomposable integer operations qualify (adds, subtracts
        and bitwise logic); shifts, multiplies, memory operations, branches
        and FP are not byte-decomposable with a simple carry chain.  The
        fine-tuned variant additionally requires the uop to have no
        destination register.
        """
        self.stats.candidates_seen += 1
        if not uop.info.splittable:
            self.stats.rejected_not_splittable += 1
            return False
        if self.require_no_dest and uop.has_dest:
            self.stats.rejected_has_dest += 1
            return False
        return True

    # --------------------------------------------------------------------- plan
    def plan(self, uop: MicroOp) -> Optional[SplitPlan]:
        """Build the split plan for ``uop`` or return None if it cannot split."""
        if not self.can_split(uop):
            return None
        chunk_opcode = (Opcode.SPLIT_ADD
                        if uop.opcode in (Opcode.ADD, Opcode.SUB, Opcode.INC, Opcode.DEC)
                        else Opcode.SPLIT_LOGIC)
        # Logic chunks are independent byte-wise; arithmetic chunks chain
        # through the carry, so each depends on its predecessor.
        chained = chunk_opcode is Opcode.SPLIT_ADD
        chunks = [
            SplitChunk(
                chunk_index=i,
                opcode=chunk_opcode,
                latency_slow=opcode_info(chunk_opcode).latency,
                depends_on_previous=chained and i > 0,
            )
            for i in range(self.num_chunks)
        ]
        copy_backs = self.num_chunks if uop.has_dest else 0
        self.stats.split_instructions += 1
        self.stats.chunks_created += len(chunks)
        self.stats.copy_backs_created += copy_backs
        return SplitPlan(original_uid=uop.uid, chunks=chunks, copy_backs=copy_backs)

    # ------------------------------------------------------------------ values
    def chunk_values(self, value: int) -> List[int]:
        """Byte slices (LSB first) of a concrete value, for verification."""
        return split_bytes(value, self.num_chunks, self.narrow_width)

    def reset(self) -> None:
        self.stats = SplitterStats()
