"""Backend (cluster) model: the wide 32-bit and narrow 8-bit execution engines.

A :class:`Backend` bundles the per-cluster structures — issue queue,
functional-unit pool and statistics — together with the clock domain it lives
in.  The helper (narrow) backend has integer units only and is clocked at the
fast frequency; the wide backend also hosts the floating point queue/units
(§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.core.config import MachineConfig, SchedulerConfig
from repro.pipeline.clocking import ClockDomain, ClockingModel
from repro.pipeline.execute import ExecutionUnitPool
from repro.pipeline.scheduler import IssueQueue


class BackendKind(Enum):
    """Which of the two backends a structure belongs to."""

    WIDE = "wide"
    NARROW = "narrow"

    @property
    def domain(self) -> ClockDomain:
        return ClockDomain.WIDE if self is BackendKind.WIDE else ClockDomain.NARROW


@dataclass
class BackendStats:
    """Per-backend activity counters."""

    dispatched: int = 0
    issued: int = 0
    completed: int = 0
    copies_executed: int = 0
    squashed: int = 0
    split_chunks: int = 0


class Backend:
    """One execution backend (cluster)."""

    def __init__(self, kind: BackendKind, config: MachineConfig,
                 clocking: Optional[ClockingModel] = None) -> None:
        self.kind = kind
        self.config = config
        self.clocking = clocking or ClockingModel(ratio=config.clock_ratio)
        scheduler: SchedulerConfig = config.scheduler
        self.issue_queue = IssueQueue(
            size=scheduler.queue_size,
            issue_width=scheduler.issue_width,
            memory_ports=scheduler.memory_ports,
        )
        self.units = ExecutionUnitPool(
            domain=kind.domain,
            clocking=self.clocking,
            has_fp=(kind is BackendKind.WIDE),
        )
        self.stats = BackendStats()

    # ----------------------------------------------------------------- domain
    @property
    def domain(self) -> ClockDomain:
        return self.kind.domain

    @property
    def is_narrow(self) -> bool:
        return self.kind is BackendKind.NARROW

    def active(self, fast_cycle: int) -> bool:
        """Whether this backend gets an issue opportunity this fast cycle."""
        return self.clocking.domain_active(self.domain, fast_cycle)

    # ------------------------------------------------------------------ width
    @property
    def datapath_width(self) -> int:
        """Datapath width in bits."""
        return self.config.helper.narrow_width if self.is_narrow else 32

    def can_execute_width(self, value_is_narrow: bool) -> bool:
        """Whether a value of the given width class fits this backend's datapath."""
        return True if not self.is_narrow else value_is_narrow

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        scheduler = self.config.scheduler
        self.issue_queue = IssueQueue(
            size=scheduler.queue_size,
            issue_width=scheduler.issue_width,
            memory_ports=scheduler.memory_ports,
        )
        self.units.reset()
        self.stats = BackendStats()
