"""Backend (cluster) model: one execution engine per topology cluster.

A :class:`Backend` bundles the per-cluster structures — issue queue,
functional-unit pool and statistics — together with the clock domain it lives
in.  Backends are built from :class:`~repro.core.config.ClusterSpec` records:
cluster 0 is the host (the paper's wide 32-bit backend, which also hosts the
floating point queue/units, §2.1), every further cluster is a helper backend
clocked at its spec's ratio.

The :class:`BackendKind` enum and the ``Backend(kind, config)`` constructor
of the original two-cluster API are kept as shims over the cluster-indexed
form.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from repro.core.config import ClusterSpec, MachineConfig
from repro.pipeline.clocking import ClockDomain, ClockingModel
from repro.pipeline.execute import ExecutionUnitPool
from repro.pipeline.scheduler import IssueQueue


class BackendKind(Enum):
    """Which of the paper's two backends a structure belongs to (shim)."""

    WIDE = "wide"
    NARROW = "narrow"

    @property
    def domain(self) -> ClockDomain:
        return ClockDomain.WIDE if self is BackendKind.WIDE else ClockDomain.NARROW


@dataclass
class BackendStats:
    """Per-backend activity counters."""

    dispatched: int = 0
    issued: int = 0
    completed: int = 0
    copies_executed: int = 0
    squashed: int = 0
    split_chunks: int = 0


class Backend:
    """One execution backend (cluster).

    Parameters
    ----------
    spec_or_kind:
        A :class:`ClusterSpec` (the topology form) or a :class:`BackendKind`
        (the original two-cluster shim, which resolves the spec from
        ``config.cluster_topology()``).
    config:
        The machine configuration the backend belongs to.
    clocking:
        Clock model shared by all backends of a machine.
    index:
        Cluster index in the topology (0 = host).  Implied by the kind in
        the shim form.
    """

    def __init__(self, spec_or_kind: Union[ClusterSpec, BackendKind],
                 config: MachineConfig,
                 clocking: Optional[ClockingModel] = None,
                 index: Optional[int] = None) -> None:
        if isinstance(spec_or_kind, BackendKind):
            topology = config.cluster_topology()
            index = 0 if spec_or_kind is BackendKind.WIDE else 1
            if index < len(topology.clusters):
                spec = topology.clusters[index]
            else:
                # A narrow backend of a host-only machine (the original code
                # always built both): synthesise the shim's helper spec.
                spec = ClusterSpec(
                    name="narrow", datapath_width=config.helper.narrow_width,
                    clock_ratio=config.helper.clock_ratio,
                    issue_width=config.scheduler.issue_width,
                    queue_size=config.scheduler.queue_size,
                    memory_ports=config.scheduler.memory_ports,
                    has_fp=config.helper.has_fp)
        else:
            spec = spec_or_kind
            if index is None:
                raise ValueError("a cluster index is required with a ClusterSpec")
        self.spec = spec
        self.index = index
        self.config = config
        self.clocking = clocking or ClockingModel(ratio=config.clock_ratio)
        self.issue_queue = IssueQueue(
            size=spec.queue_size,
            issue_width=spec.issue_width,
            memory_ports=spec.memory_ports,
        )
        self.units = ExecutionUnitPool(
            domain=self.domain,
            clocking=self.clocking,
            has_fp=spec.has_fp,
        )
        self.stats = BackendStats()

    # ----------------------------------------------------------------- domain
    @property
    def kind(self) -> BackendKind:
        """Two-cluster shim view: the host is WIDE, every helper is NARROW."""
        return BackendKind.WIDE if self.index == 0 else BackendKind.NARROW

    @property
    def domain(self) -> int:
        """Clock domain (= cluster index; a :class:`ClockDomain` member for
        the paper's pair so existing identity checks keep working)."""
        return ClockDomain(self.index) if self.index < 2 else self.index

    @property
    def is_narrow(self) -> bool:
        return self.index != 0

    def active(self, fast_cycle: int) -> bool:
        """Whether this backend gets an issue opportunity this fast cycle."""
        return self.clocking.domain_active(self.domain, fast_cycle)

    # ------------------------------------------------------------------ width
    @property
    def datapath_width(self) -> int:
        """Datapath width in bits."""
        return self.spec.datapath_width

    def can_execute_width(self, value_is_narrow: bool) -> bool:
        """Whether a value of the given width class fits this backend's datapath."""
        return True if not self.is_narrow else value_is_narrow

    # ------------------------------------------------------------------ reset
    def reset(self) -> None:
        spec = self.spec
        self.issue_queue = IssueQueue(
            size=spec.queue_size,
            issue_width=spec.issue_width,
            memory_ports=spec.memory_ports,
        )
        self.units.reset()
        self.stats = BackendStats()
