"""Data-width aware instruction steering policies (§1 items 1-5, §3.2-§3.7).

The steering stage sits between decode/rename and dispatch.  For every uop it
decides which backend the uop executes in, whether it is being steered under a
width *prediction* (and therefore may trigger a flushing recovery if the
prediction turns out fatally wrong), whether a load's result should be
replicated in both clusters (LR), and whether the uop should be split into
narrow chunks (IR).

Decision flow (policy → requirement → selector → cluster): a policy returns
a :class:`SteerDecision` that expresses *intent* — wide vs. helper, plus
optionally a concrete ``target_cluster`` or a declarative
:class:`~repro.core.selection.ClusterRequirement` — and the shared,
policy-visible :class:`~repro.core.selection.ClusterSelector` resolves it to
a concrete cluster of the topology.  The default least-loaded selector
reproduces the paper's behaviour bit-identically; the width-aware selector
routes uops by predicted value width on asymmetric helper mixes.

Policies are expressed as a set of :class:`Scheme` flags so the paper's
cumulative ladder (8-8-8 → +BR → +LR → +CR → +CP → +IR → IR-nodest) maps
directly onto configuration, and ablations can toggle any single scheme.
Policies are *described* by a serializable :class:`PolicySpec` (name, scheme
set, selector, knobs) held in a :class:`PolicyRegistry`; :func:`make_policy`
builds runnable policies from specs, registered names, or ad-hoc ``"+"``
scheme combos, and ``PolicySpec.to_key_dict()`` is what reaches the result
cache key so policies differing only in selector or knobs never alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import MachineConfig
from repro.core.copy_engine import CopyEngine
from repro.core.imbalance import ImbalanceMonitor
from repro.core.predictors import WidthPredictor, WidthPrediction
from repro.core.selection import (
    SELECTORS,
    ClusterRequirement,
    ClusterSelector,
    make_selector,
)
from repro.core.splitting import InstructionSplitter
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import ArchReg
from repro.isa.uop import MicroOp
from repro.isa.values import is_narrow, truncate, value_width
from repro.pipeline.clocking import ClockDomain
from repro.pipeline.frontend import FetchedUop
from repro.pipeline.rename import RenameTable


class Scheme(Enum):
    """The individual steering techniques proposed by the paper."""

    N888 = auto()       # §3.2: all sources and result narrow
    BR = auto()         # §3.3: branches dependent on narrow-value conditions
    LR = auto()         # §3.4: load replication
    CR = auto()         # §3.5: carry-width prediction
    CP = auto()         # §3.6: copy prefetching
    IR = auto()         # §3.7: instruction splitting for imbalance reduction
    IR_NODEST = auto()  # §3.7 fine tuning: split only destination-less uops


#: The cumulative policy ladder evaluated in the paper, in presentation order.
POLICY_LADDER: Dict[str, frozenset] = {
    "baseline": frozenset(),
    "n888": frozenset({Scheme.N888}),
    "n888_br": frozenset({Scheme.N888, Scheme.BR}),
    "n888_br_lr": frozenset({Scheme.N888, Scheme.BR, Scheme.LR}),
    "n888_br_lr_cr": frozenset({Scheme.N888, Scheme.BR, Scheme.LR, Scheme.CR}),
    "n888_br_lr_cr_cp": frozenset({Scheme.N888, Scheme.BR, Scheme.LR, Scheme.CR,
                                   Scheme.CP}),
    "ir": frozenset({Scheme.N888, Scheme.BR, Scheme.LR, Scheme.CR, Scheme.CP,
                     Scheme.IR}),
    "ir_nodest": frozenset({Scheme.N888, Scheme.BR, Scheme.LR, Scheme.CR, Scheme.CP,
                            Scheme.IR, Scheme.IR_NODEST}),
}


@dataclass(slots=True)
class SteerDecision:
    """Outcome of steering one uop.

    ``domain`` expresses the wide-vs-helper intent (kept for the paper's
    two-cluster API).  A helper-bound decision may additionally carry a
    concrete ``target_cluster`` (an index into the topology) or a
    declarative ``requirement`` that the machine's
    :class:`~repro.core.selection.ClusterSelector` resolves; with neither,
    the selector places the uop on capability and load alone.
    """

    domain: ClockDomain
    reason: str = "default_wide"
    #: concrete topology cluster index the policy demands, or ``None`` to
    #: let the selector choose
    target_cluster: Optional[int] = None
    #: declarative placement needs (min datapath width, FP, memory port)
    requirement: Optional[ClusterRequirement] = None
    #: the uop was steered narrow based on a width prediction (8-8-8); a
    #: wrong prediction is fatal and triggers flushing recovery
    predicted_narrow: bool = False
    #: the uop was steered narrow under the CR carry-width prediction; a
    #: propagated carry is fatal
    via_cr: bool = False
    #: the uop is a conditional branch steered narrow by the BR scheme
    via_br: bool = False
    #: LR: the load's result register is allocated in both clusters
    replicate_load: bool = False
    #: IR: the uop is split into narrow chunks (handled by the simulator)
    split: bool = False
    #: width-predictor lookup made while steering, forwarded so dispatch does
    #: not have to probe the table a second time
    prediction: Optional["WidthPrediction"] = None

    @property
    def to_helper(self) -> bool:
        return self.domain != ClockDomain.WIDE


@dataclass
class SteeringContext:
    """Everything a policy may consult when steering a uop."""

    config: MachineConfig
    width_predictor: WidthPredictor
    rename: RenameTable
    imbalance: ImbalanceMonitor
    copy_engine: CopyEngine
    splitter: InstructionSplitter
    #: the machine's shared cluster selector; ``None`` (unit tests, direct
    #: construction) behaves like the default least-loaded selector
    selector: Optional[ClusterSelector] = None

    def __post_init__(self) -> None:
        self._topology_of: Optional[MachineConfig] = None
        self._num_helpers = 0
        self._helper_fp_available = False
        self._steering_width = 0
        self._width_steering = False

    def _sync_topology(self) -> None:
        # Topology facts hoisted out of the per-uop steer loop; recomputed
        # only when the context's config object is swapped.
        if self._topology_of is not self.config:
            topology = self.config.cluster_topology()
            self._topology_of = self.config
            self._num_helpers = topology.num_helpers
            self._helper_fp_available = any(spec.has_fp for spec in topology.helpers)
            selector = self.selector
            if selector is not None:
                self._steering_width = selector.steering_width(self.config, topology)
                self._width_steering = selector.wants_width_bits
            else:
                self._steering_width = self.config.narrow_width
                self._width_steering = False

    @property
    def num_helpers(self) -> int:
        self._sync_topology()
        return self._num_helpers

    @property
    def helper_fp_available(self) -> bool:
        self._sync_topology()
        return self._helper_fp_available

    @property
    def steering_width(self) -> int:
        """Width horizon (bits) the selector wants values classified at."""
        self._sync_topology()
        return self._steering_width

    @property
    def width_steering(self) -> bool:
        """Whether decisions should carry width requirements (and the
        simulator track value widths in bits) for the selector's benefit."""
        self._sync_topology()
        return self._width_steering


@dataclass
class SteeringStats:
    """Per-policy steering counters."""

    steered: int = 0
    to_narrow: int = 0
    to_wide: int = 0
    narrow_by_n888: int = 0
    narrow_by_br: int = 0
    narrow_by_cr: int = 0
    narrow_by_split: int = 0
    rejected_low_confidence: int = 0
    rebalanced_to_wide: int = 0

    @property
    def narrow_fraction(self) -> float:
        return self.to_narrow / self.steered if self.steered else 0.0


class SteeringPolicy:
    """Base class: policies map (uop, context) -> :class:`SteerDecision`."""

    name = "abstract"

    def __init__(self) -> None:
        self.stats = SteeringStats()
        #: the cluster selector this policy wants the machine to use;
        #: ``None`` means the simulator's default (least-loaded)
        self.selector: Optional[ClusterSelector] = None

    def steer(self, fetched: FetchedUop, ctx: SteeringContext) -> SteerDecision:
        raise NotImplementedError

    def _account(self, decision: SteerDecision,
                 prediction: Optional[WidthPrediction] = None) -> SteerDecision:
        decision.prediction = prediction
        self.stats.steered += 1
        if decision.to_helper:
            self.stats.to_narrow += 1
            if decision.split:
                self.stats.narrow_by_split += 1
            elif decision.via_br:
                self.stats.narrow_by_br += 1
            elif decision.via_cr:
                self.stats.narrow_by_cr += 1
            elif decision.predicted_narrow:
                self.stats.narrow_by_n888 += 1
        else:
            self.stats.to_wide += 1
        return decision

    def reset(self) -> None:
        self.stats = SteeringStats()
        if self.selector is not None:
            self.selector.reset()


class BaselineSteering(SteeringPolicy):
    """Monolithic baseline: every uop executes in the wide backend."""

    name = "baseline"

    def steer(self, fetched: FetchedUop, ctx: SteeringContext) -> SteerDecision:
        stats = self.stats
        stats.steered += 1
        stats.to_wide += 1
        return SteerDecision(domain=ClockDomain.WIDE, reason="baseline")


class DataWidthSteering(SteeringPolicy):
    """The paper's data-width aware steering with a configurable scheme set."""

    def __init__(self, schemes: frozenset | set = POLICY_LADDER["ir"],
                 name: Optional[str] = None,
                 selector: Optional[ClusterSelector] = None) -> None:
        super().__init__()
        self.schemes = frozenset(schemes)
        self.selector = selector
        self.name = name or "+".join(sorted(s.name for s in self.schemes)) or "wide_only"
        # Scheme membership tested once here instead of per steered uop.
        self._has_n888 = Scheme.N888 in self.schemes
        self._has_br = Scheme.BR in self.schemes
        self._has_lr = Scheme.LR in self.schemes
        self._has_cr = Scheme.CR in self.schemes
        self._has_ir = Scheme.IR in self.schemes
        self._has_ir_nodest = Scheme.IR_NODEST in self.schemes
        # Per-context facts hoisted out of the per-uop steer path; rebound
        # whenever the context — or any of its cached components — changes
        # identity (see :meth:`_ctx_stale`).
        self._ctx: Optional[SteeringContext] = None
        self._ctx_config: Optional[MachineConfig] = None
        self._ctx_rename: Optional[RenameTable] = None
        self._ctx_predictor: Optional[WidthPredictor] = None
        self._imbalance: Optional[ImbalanceMonitor] = None

    # ---------------------------------------------------------------- binding
    def _ctx_stale(self, ctx: SteeringContext) -> bool:
        """Must the per-context bindings be refreshed for this steer?

        ``SteeringContext`` is a plain mutable dataclass and callers do swap
        its fields between runs, so the guard covers every component the
        fast path caches — not just the context object itself.
        """
        return (ctx is not self._ctx
                or ctx.config is not self._ctx_config
                or ctx.rename is not self._ctx_rename
                or ctx.width_predictor is not self._ctx_predictor
                or ctx.imbalance is not self._imbalance)

    def _bind_ctx(self, ctx: SteeringContext) -> None:
        """Hoist per-machine facts consulted on every steer into attributes."""
        self._ctx = ctx
        self._ctx_config = ctx.config
        self._ctx_rename = ctx.rename
        self._ctx_predictor = ctx.width_predictor
        self._ctx_active = bool(ctx.num_helpers) and bool(self.schemes)
        self._ctx_fp = ctx.helper_fp_available
        self._ctx_width_steering = ctx.width_steering
        self._ctx_narrow_width = ctx.config.narrow_width
        self._rename_entries = ctx.rename.table
        self._flags_entry = ctx.rename.table[ArchReg.FLAGS]
        self._predict = ctx.width_predictor.predict
        self._imbalance = ctx.imbalance

    # ------------------------------------------------------------------ helpers
    def _source_widths(self, uop: MicroOp, ctx: SteeringContext) -> List[bool]:
        """Width-table view of each source: actual width if written back, else prediction."""
        return ctx.rename.source_widths(uop.srcs)

    def _immediate_narrow(self, uop: MicroOp, ctx: SteeringContext) -> bool:
        if uop.imm is None:
            return True
        memo = uop.__dict__.get("_imm_narrow_memo")
        width = ctx.steering_width
        if memo is not None and memo[0] == width:
            return memo[1]
        result = is_narrow(truncate(uop.imm), width)
        uop._imm_narrow_memo = (width, result)
        return result

    def _width_requirement(self, uop: MicroOp, ctx: SteeringContext,
                           prediction: Optional[WidthPrediction]
                           ) -> Optional[ClusterRequirement]:
        """Placement needs of a width-predicted narrow steer.

        Only built when the machine's selector routes by width (the default
        least-loaded selector places on capability and load alone, so the
        hot path pays nothing for requirements it would ignore).
        """
        if not ctx.width_steering:
            return None
        bits = 1
        rename = ctx.rename
        for reg in uop.srcs:
            width = rename.source_width_bits(reg)
            if width > bits:
                bits = width
        if uop.imm is not None:
            width = value_width(truncate(uop.imm))
            if width > bits:
                bits = width
        if (uop.has_dest and prediction is not None
                and prediction.width_bits is not None
                and prediction.width_bits > bits):
            bits = prediction.width_bits
        return ClusterRequirement(min_width=bits, needs_memory_port=uop.is_memory)

    def _helper_supports(self, uop: MicroOp, ctx: SteeringContext) -> bool:
        """Whether some helper backend can execute the uop.

        The paper's helper has integer ALUs/AGUs only (§2.1); FP work becomes
        steerable only when the topology declares an FP-capable helper.
        Long-latency MUL/DIV stay in the wide backend regardless.
        """
        if uop.op_class in (OpClass.MUL, OpClass.DIV):
            return False
        if uop.op_class is OpClass.FP:
            return ctx.helper_fp_available
        return True

    # -------------------------------------------------------------------- steer
    def steer(self, fetched: FetchedUop, ctx: SteeringContext) -> SteerDecision:
        # Flat fast path: per-machine facts are bound once per context, the
        # per-branch accounting of :meth:`SteeringPolicy._account` is inlined
        # at each return site, and width-table reads go straight at the
        # rename entries.  Decision content and every counter are identical
        # to the factored implementation.
        if self._ctx_stale(ctx):
            self._bind_ctx(ctx)
        uop = fetched.uop
        stats = self.stats
        stats.steered += 1

        if not self._ctx_active:
            stats.to_wide += 1
            return SteerDecision(domain=ClockDomain.WIDE,
                                 reason="helper_disabled")
        op_class = uop.op_class
        if (op_class is OpClass.MUL or op_class is OpClass.DIV
                or (op_class is OpClass.FP and not self._ctx_fp)):
            stats.to_wide += 1
            return SteerDecision(domain=ClockDomain.WIDE,
                                 reason="no_unit_in_helper")

        # §1 item 5 / §3.7: if the helper cluster is overloaded, steer narrow
        # work back to the wide cluster until balance is restored.
        rebalance_to_wide = (self._has_ir
                             and self._imbalance.helper_overloaded())

        # --- BR: conditional branch depending on a narrow-cluster flag write.
        # Branches are never candidates for the width-prediction based
        # schemes (they have no register result); they go to the helper
        # cluster only under the BR rule.
        if uop.is_branch:
            if self._has_br and uop.is_cond_branch:
                # Domains may be plain cluster indices (>= 2) for extra
                # helper clusters, so compare by value, not identity.
                if (self._flags_entry.producer_domain != ClockDomain.WIDE
                        and fetched.target_resolved_in_frontend
                        and not rebalance_to_wide):
                    stats.to_narrow += 1
                    stats.narrow_by_br += 1
                    return SteerDecision(domain=ClockDomain.NARROW,
                                         reason="br_narrow_flag", via_br=True)
            stats.to_wide += 1
            return SteerDecision(domain=ClockDomain.WIDE, reason="branch_wide")

        prediction = self._predict(uop.pc)
        entries = self._rename_entries
        sources_narrow = True
        for reg in uop.srcs:
            if not entries[reg].narrow:
                sources_narrow = False
                break
        if sources_narrow and uop.imm is not None:
            sources_narrow = self._immediate_narrow(uop, ctx)

        # --- LR: loads predicted to fetch a narrow value have their result
        # register allocated in both clusters through the shared MOB (§3.4),
        # independent of which cluster executes the load.
        replicate = (self._has_lr and uop.is_load
                     and prediction.narrow and prediction.confident)

        # --- 8-8-8: all sources narrow and result predicted narrow with
        # high confidence (§3.2).
        if self._has_n888 and sources_narrow and uop.srcs:
            narrow_confident = prediction.narrow and prediction.confident
            if uop.has_dest and prediction.narrow and not prediction.confident:
                stats.rejected_low_confidence += 1
            if ((not uop.has_dest or narrow_confident)
                    and not rebalance_to_wide):
                stats.to_narrow += 1
                stats.narrow_by_n888 += 1
                return SteerDecision(
                    domain=ClockDomain.NARROW, reason="n888",
                    predicted_narrow=True, replicate_load=replicate,
                    requirement=(self._width_requirement(uop, ctx, prediction)
                                 if self._ctx_width_steering else None),
                    prediction=prediction)

        # --- CR: one narrow and one wide source, wide result, carry predicted
        # not to propagate past the low byte (§3.5).
        if self._has_cr and uop.info.cr_eligible and not rebalance_to_wide:
            source_widths = [entries[reg].narrow for reg in uop.srcs]
            wide_count = source_widths.count(False)
            result_predicted_wide = uop.has_dest and not prediction.narrow
            addresses_memory = uop.is_memory  # address result is consumed wide
            # Memory operations additionally require the narrow operand to be
            # an immediate (field-style base+displacement addressing).  Index
            # registers sweep through values and routinely cross the carry
            # boundary mid-loop, which the per-PC carry bit cannot track; the
            # flushing recovery they would cause costs more than the narrow
            # execution saves.
            narrow_operand_ok = (uop.imm is not None if addresses_memory
                                 else wide_count < len(source_widths)
                                 or uop.imm is not None)
            if (wide_count == 1 and narrow_operand_ok
                    and (result_predicted_wide or addresses_memory)
                    and prediction.carry_safe):
                # CR work touches only the low narrow_width bits (the wide
                # source's upper bits are reused), so any helper at least
                # that wide qualifies regardless of the operand's full width.
                cr_requirement = (ClusterRequirement(
                    min_width=self._ctx_narrow_width,
                    needs_memory_port=addresses_memory)
                    if self._ctx_width_steering else None)
                stats.to_narrow += 1
                stats.narrow_by_cr += 1
                return SteerDecision(
                    domain=ClockDomain.NARROW, reason="cr_no_carry",
                    via_cr=True, replicate_load=replicate,
                    requirement=cr_requirement, prediction=prediction)

        # --- IR: split wide instructions into narrow chunks while the helper
        # cluster is underutilised (§3.7).
        if self._has_ir and self._imbalance.helper_underutilised():
            ctx.splitter.require_no_dest = self._has_ir_nodest
            if ctx.splitter.can_split(uop):
                stats.to_narrow += 1
                stats.narrow_by_split += 1
                return SteerDecision(domain=ClockDomain.NARROW,
                                     reason="ir_split", split=True,
                                     prediction=prediction)

        stats.to_wide += 1
        if rebalance_to_wide:
            stats.rebalanced_to_wide += 1
            return SteerDecision(domain=ClockDomain.WIDE,
                                 reason="helper_overloaded",
                                 replicate_load=replicate,
                                 prediction=prediction)
        return SteerDecision(domain=ClockDomain.WIDE, reason="default_wide",
                             replicate_load=replicate, prediction=prediction)

    # --------------------------------------------------------------- properties
    @property
    def uses_copy_prefetch(self) -> bool:
        return Scheme.CP in self.schemes

    @property
    def uses_load_replication(self) -> bool:
        return Scheme.LR in self.schemes


# ---------------------------------------------------------------------------
# Policy specs and the registry
# ---------------------------------------------------------------------------
#: Scheme tokens accepted in ad-hoc ``"+"`` combos (e.g. ``"n888+cr"``).
SCHEME_TOKENS: Dict[str, Scheme] = {s.name.lower(): s for s in Scheme}


@dataclass(frozen=True)
class PolicySpec:
    """Serializable description of a steering policy.

    A spec is everything :func:`make_policy` needs to build a runnable
    policy — name, scheme set, cluster-selector name and selector knobs —
    and everything the result cache needs to key its results:
    :meth:`to_key_dict` is folded into the
    :class:`~repro.sim.cache.ResultCache` key, so two policies differing
    only in selector or knobs can never alias a cache entry.
    """

    name: str
    schemes: frozenset = frozenset()
    selector: str = "least_loaded"
    #: selector constructor knobs, stored as a sorted item tuple so the
    #: spec stays hashable; pass a mapping, it is normalised here
    knobs: Tuple[Tuple[str, object], ...] = ()
    #: member of the paper's cumulative ladder (presentation flag only;
    #: deliberately *not* part of the cache key)
    in_ladder: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("policy name must be non-empty")
        object.__setattr__(self, "schemes",
                           frozenset(Scheme(s) for s in self.schemes))
        if not isinstance(self.knobs, tuple):
            object.__setattr__(self, "knobs",
                               tuple(sorted(dict(self.knobs).items())))

    # ------------------------------------------------------------- caching
    def to_key_dict(self) -> dict:
        """Canonical, JSON-serialisable form (the cache-key contract).

        Covers every field that can change simulation behaviour: the name,
        the sorted scheme set, the selector and its knobs.
        """
        return {
            "name": self.name,
            "schemes": sorted(s.name for s in self.schemes),
            "selector": self.selector,
            "knobs": {key: value for key, value in self.knobs},
        }

    # -------------------------------------------------------------- build
    def build(self) -> SteeringPolicy:
        """Construct the runnable policy this spec describes."""
        selector = make_selector(self.selector, **dict(self.knobs))
        if not self.schemes:
            policy: SteeringPolicy = BaselineSteering()
            policy.name = self.name
        else:
            policy = DataWidthSteering(self.schemes, name=self.name,
                                       selector=selector)
        policy.selector = selector
        return policy


class PolicyRegistry:
    """Name -> :class:`PolicySpec` registry.

    The registry is what the CLI, the experiment layer and the sweep engine
    consult instead of the hard-coded ladder dict: registering a spec makes
    the policy runnable everywhere (``--policy`` choices included) without
    touching any of those layers.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, PolicySpec] = {}

    # ---------------------------------------------------------- mutation
    def register(self, spec: PolicySpec, replace: bool = False) -> PolicySpec:
        """Add a spec; re-registering a name requires ``replace=True``."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"policy {spec.name!r} is already registered "
                             "(pass replace=True to override)")
        self._specs[spec.name] = spec
        return spec

    # ------------------------------------------------------------ lookup
    def get(self, name: str) -> PolicySpec:
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(self.unknown_policy_message(name))
        return spec

    def names(self) -> List[str]:
        """All registered policy names, in registration order."""
        return list(self._specs)

    def helper_names(self) -> List[str]:
        """Registered policies that steer to helpers (non-empty scheme set)."""
        return [name for name, spec in self._specs.items() if spec.schemes]

    def ladder_names(self, include_baseline: bool = True) -> List[str]:
        """The paper's cumulative ladder, in presentation order."""
        return [name for name, spec in self._specs.items()
                if spec.in_ladder and (include_baseline or spec.schemes)]

    def unknown_policy_message(self, name: str) -> str:
        return (f"unknown policy {name!r}; known policies: "
                f"{', '.join(self._specs)}; known schemes (combine with '+'): "
                f"{', '.join(SCHEME_TOKENS)}")

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


#: The default registry: the paper's cumulative ladder plus the width-aware
#: variants used by asymmetric-topology exploration.
policy_registry = PolicyRegistry()
for _name, _schemes in POLICY_LADDER.items():
    policy_registry.register(PolicySpec(name=_name, schemes=_schemes,
                                        in_ladder=True))
policy_registry.register(PolicySpec(name="n888_wa",
                                    schemes=POLICY_LADDER["n888"],
                                    selector="width_aware"))
policy_registry.register(PolicySpec(name="ir_wa",
                                    schemes=POLICY_LADDER["ir"],
                                    selector="width_aware"))
del _name, _schemes


def random_policy_spec(rng, allow_baseline: bool = False) -> PolicySpec:
    """Draw a random-but-valid :class:`PolicySpec` from ``rng``.

    Three families, mirroring how policies reach the engine in practice:
    a registered spec straight from the registry, an ad-hoc scheme combo
    (the ``"n888+cr"``-style names the CLI accepts), or a fully synthetic
    spec with a random scheme subset, selector and selector knobs.  The
    draw is a pure function of the ``random.Random`` state, so the fuzz
    harness regenerates identical specs from a case seed.

    ``IR_NODEST`` only refines ``IR``, so synthetic scheme sets that draw
    it without ``IR`` have ``IR`` added — the combination is otherwise
    inert and would waste fuzz cases on duplicate behaviour.
    """
    scheme_pool = [s for s in Scheme]
    family = rng.random()
    if family < 0.4:
        names = [name for name in policy_registry.names()
                 if allow_baseline or policy_registry.get(name).schemes]
        return policy_registry.get(rng.choice(names))
    if family < 0.6:
        count = rng.randint(1, 3)
        tokens = sorted({rng.choice(list(SCHEME_TOKENS)) for _ in range(count)})
        return policy_spec("+".join(tokens))
    schemes = {s for s in scheme_pool if rng.random() < 0.45}
    if not schemes:
        schemes = {rng.choice(scheme_pool)}
    if Scheme.IR_NODEST in schemes:
        schemes.add(Scheme.IR)
    selector = rng.choice(sorted(SELECTORS))
    knobs: Dict[str, object] = {}
    if selector == "width_aware" and rng.random() < 0.5:
        knobs["width_margin"] = rng.randint(0, 8)
    return PolicySpec(
        name="fz_" + "_".join(sorted(s.name.lower() for s in schemes)),
        schemes=frozenset(schemes), selector=selector,
        knobs=tuple(sorted(knobs.items())))


def parse_scheme_combo(name: str) -> Optional[frozenset]:
    """Parse an ad-hoc ``"+"``-separated scheme combo, ``None`` if invalid."""
    tokens = [token.strip().lower() for token in name.split("+")]
    if not tokens or any(token not in SCHEME_TOKENS for token in tokens):
        return None
    return frozenset(SCHEME_TOKENS[token] for token in tokens)


def policy_spec(name: Union[str, PolicySpec],
                registry: Optional[PolicyRegistry] = None) -> PolicySpec:
    """Resolve a policy reference to its :class:`PolicySpec`.

    Accepts a spec (returned as-is), a registered name, or an ad-hoc scheme
    combo such as ``"n888+cr"``.  Anything else raises a ``KeyError`` whose
    message lists both the registered policy names and the known schemes.
    """
    if isinstance(name, PolicySpec):
        return name
    registry = registry if registry is not None else policy_registry
    if name in registry:
        return registry.get(name)
    schemes = parse_scheme_combo(name)
    if schemes is None:
        raise KeyError(registry.unknown_policy_message(name))
    return PolicySpec(name=name, schemes=schemes)


def make_policy(name: Union[str, PolicySpec],
                registry: Optional[PolicyRegistry] = None) -> SteeringPolicy:
    """Construct a policy from a spec, a registered name, or a scheme combo."""
    return policy_spec(name, registry=registry).build()
