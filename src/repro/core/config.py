"""Machine configuration: data-driven cluster topologies plus the Table 1 baseline.

The machine description is a list of :class:`ClusterSpec` records — one per
execution cluster — bundled into a :class:`Topology`.  Cluster 0 is the *host*
(the paper's wide 32-bit backend; it owns the frontend, commit, and the FP
units by default) and every further cluster is a helper backend with its own
datapath width, clock ratio, scheduler resources and FU mix.  The paper's
machine is one point in that space: ``helper_topology()`` (a wide host plus
one 8-bit helper at a 2x clock); the monolithic baseline is
``monolithic_topology()`` (the host alone).

``MachineConfig`` bundles the topology with everything else the simulator
needs: frontend and memory parameters of the monolithic baseline (Table 1),
the predictor configuration, and — for backwards compatibility — the
two-cluster :class:`HelperClusterConfig` shim of the original API.  When no
explicit topology is given, one is derived from the shim, so
``baseline_config()`` / ``helper_cluster_config()`` / ``with_helper()`` keep
working unchanged on top of topologies.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryConfig
from repro.memory.tracecache import TraceCacheConfig


@dataclass(frozen=True)
class SchedulerConfig:
    """Per-backend scheduler resources (Table 1: 32-entry, 3-issue)."""

    queue_size: int = 32
    issue_width: int = 3
    memory_ports: int = 2

    def __post_init__(self) -> None:
        if self.queue_size <= 0 or self.issue_width <= 0 or self.memory_ports <= 0:
            raise ValueError("scheduler parameters must be positive")


@dataclass(frozen=True)
class PredictorConfig:
    """Width / carry / copy-prefetch predictor parameters (§3.2, §3.5, §3.6)."""

    #: Number of entries in the PC-indexed tagless table ("a size of 256
    #: entries was found to be a good compromise", §3.2).
    table_entries: int = 256
    #: Use the 2-bit confidence estimator to gate narrow steering (§3.2).
    use_confidence: bool = True
    #: Confidence counter threshold at which a prediction counts as
    #: high-confidence (2-bit counter, so 0..3; the top two states qualify).
    confidence_threshold: int = 2

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or (self.table_entries & (self.table_entries - 1)):
            raise ValueError("predictor table entries must be a positive power of two")
        if not 0 <= self.confidence_threshold <= 3:
            raise ValueError("confidence threshold must be within a 2-bit counter range")


@dataclass(frozen=True)
class ClusterSpec:
    """One execution cluster of the machine.

    Cluster 0 of a :class:`Topology` is the host (wide) cluster; it must run
    at ``clock_ratio`` 1 and hosts frontend/commit.  Every other cluster is a
    helper backend.
    """

    name: str
    #: Datapath width in bits (32 for the host, 8 for the paper's helper).
    datapath_width: int = MACHINE_WIDTH
    #: Clock multiplier relative to the host cluster (§2.2; 2 at the paper's
    #: design point — narrower datapaths close timing at higher frequency).
    clock_ratio: int = 1
    #: Scheduler resources (Table 1: 32-entry, 3-issue, 2 memory ports).
    issue_width: int = 3
    queue_size: int = 32
    memory_ports: int = 2
    #: Whether the cluster has FP units (§2.1: the helper backend has integer
    #: units only).
    has_fp: bool = False
    #: Latency of an inter-cluster copy executed in this cluster, in slow
    #: cycles (issue in the producer cluster + transfer to the consumer).
    copy_latency_slow: int = 2
    #: Recovery penalty of a flushing squash triggered in this cluster, in
    #: slow cycles (§3.2).
    flush_penalty_slow: int = 5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cluster name must be non-empty")
        if self.datapath_width <= 0 or self.datapath_width > MACHINE_WIDTH:
            raise ValueError("cluster datapath width must be in (0, machine width]")
        if MACHINE_WIDTH % self.datapath_width:
            # The splitter chunks full-width values into datapath-width
            # pieces, so non-divisor widths (e.g. 24) have no well-defined
            # chunk count; reject them here rather than at simulator build.
            raise ValueError(
                f"cluster datapath width must divide the machine width "
                f"({MACHINE_WIDTH}), got {self.datapath_width}")
        if self.clock_ratio < 1:
            raise ValueError("cluster clock ratio must be >= 1")
        if self.issue_width <= 0 or self.queue_size <= 0 or self.memory_ports <= 0:
            raise ValueError("cluster scheduler parameters must be positive")
        if self.copy_latency_slow < 1:
            raise ValueError("copy latency must be >= 1 slow cycle")
        if self.flush_penalty_slow < 0:
            raise ValueError("flush penalty must be non-negative")

    @property
    def is_narrow(self) -> bool:
        return self.datapath_width < MACHINE_WIDTH

    @property
    def split_chunks(self) -> int:
        """Number of chunks a full-width value splits into on this datapath (§3.7)."""
        return max(1, MACHINE_WIDTH // self.datapath_width)

    @property
    def width_fraction(self) -> float:
        """Datapath width as a fraction of the machine width.

        The linear area/capacitance scaling factor the power model applies
        to this cluster's per-access energies (§2.1).
        """
        return self.datapath_width / MACHINE_WIDTH

    def to_key_dict(self) -> dict:
        """Canonical, JSON-serialisable form (cache keys, reports)."""
        return asdict(self)


@dataclass(frozen=True)
class Topology:
    """An ordered set of clusters: host first, helpers after."""

    clusters: Tuple[ClusterSpec, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a topology needs at least one cluster (the host)")
        if not isinstance(self.clusters, tuple):
            object.__setattr__(self, "clusters", tuple(self.clusters))
        host = self.clusters[0]
        if host.clock_ratio != 1:
            raise ValueError("the host cluster must run at clock ratio 1")
        if not host.has_fp:
            # Steering keeps FP/MUL/DIV in the host (§2.1), so a host without
            # FP units would deadlock the simulator on the first FP uop.
            raise ValueError("the host cluster must have FP units (has_fp=True)")
        names = [spec.name for spec in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"cluster names must be unique, got {names}")
        for spec in self.clusters[1:]:
            if spec.datapath_width > host.datapath_width:
                raise ValueError("helper clusters cannot be wider than the host")

    # ------------------------------------------------------------- structure
    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __getitem__(self, index: int) -> ClusterSpec:
        return self.clusters[index]

    @property
    def host(self) -> ClusterSpec:
        return self.clusters[0]

    @property
    def helpers(self) -> Tuple[ClusterSpec, ...]:
        return self.clusters[1:]

    @property
    def num_helpers(self) -> int:
        return len(self.clusters) - 1

    # --------------------------------------------------------------- derived
    @property
    def clock_ratios(self) -> Tuple[int, ...]:
        return tuple(spec.clock_ratio for spec in self.clusters)

    @property
    def max_clock_ratio(self) -> int:
        return max(self.clock_ratios)

    @property
    def narrow_width(self) -> Optional[int]:
        """Narrowest helper datapath width, or None for a host-only topology."""
        if not self.helpers:
            return None
        return min(spec.datapath_width for spec in self.helpers)

    @property
    def flush_penalty_slow(self) -> int:
        """Recovery penalty used by the shared recovery manager."""
        if self.helpers:
            return self.helpers[0].flush_penalty_slow
        return self.host.flush_penalty_slow

    def to_key_dict(self) -> dict:
        """Canonical, JSON-serialisable form (cache keys, reports)."""
        return {"clusters": [spec.to_key_dict() for spec in self.clusters]}


@dataclass(frozen=True)
class HelperClusterConfig:
    """Parameters of the narrow helper backend (§2).

    .. deprecated::
        This is the original two-cluster shim; new code should describe the
        machine with a :class:`Topology` (``MachineConfig.with_topology`` /
        ``helper_topology``).  The shim is kept so existing configs, examples
        and tests run unmodified: when ``MachineConfig.topology`` is unset,
        the topology is derived from these fields.
    """

    #: Whether the helper cluster exists (False = monolithic baseline).
    enabled: bool = True
    #: Narrow datapath width in bits (8 in the paper's design point).
    narrow_width: int = NARROW_WIDTH
    #: Helper-to-wide clock ratio (2 in §2.2).
    clock_ratio: int = 2
    #: The helper backend has integer units only (no FPUs), §2.1.
    has_fp: bool = False
    #: Latency of an inter-cluster copy in slow cycles (issue in the producer
    #: cluster + transfer to the consumer's register file).
    copy_latency_slow: int = 2
    #: Recovery penalty of a flushing squash, in slow cycles (§3.2).
    flush_penalty_slow: int = 5

    def __post_init__(self) -> None:
        if self.narrow_width <= 0 or self.narrow_width > MACHINE_WIDTH:
            raise ValueError("narrow width must be in (0, machine width]")
        if MACHINE_WIDTH % self.narrow_width:
            raise ValueError(
                f"narrow width must divide the machine width "
                f"({MACHINE_WIDTH}), got {self.narrow_width}")
        if self.clock_ratio < 1:
            raise ValueError("clock ratio must be >= 1")
        if self.copy_latency_slow < 1:
            raise ValueError("copy latency must be >= 1 slow cycle")
        if self.flush_penalty_slow < 0:
            raise ValueError("flush penalty must be non-negative")

    @property
    def split_chunks(self) -> int:
        """Number of narrow chunks a wide instruction splits into (§3.7)."""
        return max(1, MACHINE_WIDTH // self.narrow_width)


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description."""

    #: Frontend fetch/decode width per wide cycle.
    fetch_width: int = 6
    #: In-order commit width per wide cycle (Table 1).
    commit_width: int = 6
    #: Reorder buffer capacity (in-flight uops).
    rob_size: int = 128
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    fp_scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    helper: HelperClusterConfig = field(default_factory=HelperClusterConfig)
    #: Explicit cluster topology.  ``None`` derives a topology from the
    #: two-cluster ``helper`` shim above (the original API).
    topology: Optional[Topology] = None

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.commit_width <= 0 or self.rob_size <= 0:
            raise ValueError("frontend/commit/ROB parameters must be positive")

    # ------------------------------------------------------------- topology
    def cluster_topology(self) -> Topology:
        """The machine's topology, deriving one from the shim when unset.

        The derivation *is* :func:`helper_topology` — one construction path
        for canned topologies and the deprecated two-cluster shim alike, so
        the shim cannot drift from the topology API (the degeneracy pins in
        ``tests/test_topology.py`` hold by construction).
        """
        if self.topology is not None:
            return self.topology
        helper = self.helper
        return helper_topology(
            narrow_width=helper.narrow_width,
            clock_ratio=helper.clock_ratio,
            helpers=1 if helper.enabled else 0,
            scheduler=self.scheduler,
            has_fp=helper.has_fp,
            copy_latency_slow=helper.copy_latency_slow,
            flush_penalty_slow=helper.flush_penalty_slow)

    # ------------------------------------------------------------- derived
    @property
    def narrow_width(self) -> int:
        """Narrowest helper datapath width.

        Falls back to the shim's ``narrow_width`` for host-only machines so
        width-accounting (predictor training, Figure 5 statistics) of the
        monolithic baseline is unchanged by the topology refactor.
        """
        if self.topology is not None:
            width = self.topology.narrow_width
            if width is not None:
                return width
        return self.helper.narrow_width

    @property
    def clock_ratio(self) -> int:
        if self.topology is not None:
            return self.topology.max_clock_ratio
        return self.helper.clock_ratio if self.helper.enabled else 1

    def with_helper(self, **overrides) -> "MachineConfig":
        """Return a copy with helper-cluster fields overridden.

        .. deprecated:: prefer :meth:`with_topology`.  Kept as a thin shim:
            it clears any explicit topology so the result is re-derived from
            the updated two-cluster fields.
        """
        warnings.warn(
            "MachineConfig.with_helper() and the HelperClusterConfig shim are "
            "deprecated; describe the machine with a Topology "
            "(MachineConfig.with_topology / helper_topology)",
            DeprecationWarning, stacklevel=2)
        return replace(self, helper=replace(self.helper, **overrides),
                       topology=None)

    def with_topology(self, topology: Topology) -> "MachineConfig":
        """Return a copy using an explicit cluster topology."""
        return replace(self, topology=topology)

    def with_predictor(self, **overrides) -> "MachineConfig":
        """Return a copy with predictor fields overridden."""
        return replace(self, predictor=replace(self.predictor, **overrides))

    def with_scheduler(self, **overrides) -> "MachineConfig":
        """Return a copy with (integer) scheduler fields overridden.

        Like the original shim, one ``SchedulerConfig`` governs every
        backend: with an explicit topology the overrides are applied to all
        of its clusters (use :meth:`with_topology` for per-cluster tuning).
        """
        scheduler = replace(self.scheduler, **overrides)
        topology = self.topology
        if topology is not None:
            topology = Topology(tuple(
                replace(spec,
                        issue_width=scheduler.issue_width,
                        queue_size=scheduler.queue_size,
                        memory_ports=scheduler.memory_ports)
                for spec in topology.clusters))
        return replace(self, scheduler=scheduler, topology=topology)

    # -------------------------------------------------------------- caching
    def to_key_dict(self) -> dict:
        """Canonical, JSON-serialisable description of everything that can
        affect a simulation result.

        This is the cache-key contract (see DESIGN.md): the
        :class:`~repro.sim.cache.ResultCache` key is a SHA-256 over this
        dictionary's sorted-key JSON form, so *any* config field change —
        including nested scheduler/memory/predictor/cluster fields — changes
        the key and can never be served a stale result.
        """
        return {
            "fetch_width": self.fetch_width,
            "commit_width": self.commit_width,
            "rob_size": self.rob_size,
            "scheduler": asdict(self.scheduler),
            "fp_scheduler": asdict(self.fp_scheduler),
            "memory": asdict(self.memory),
            "trace_cache": asdict(self.trace_cache),
            "predictor": asdict(self.predictor),
            "helper": asdict(self.helper),
            "topology": self.cluster_topology().to_key_dict(),
            "explicit_topology": self.topology is not None,
        }


# ---------------------------------------------------------------- topologies
def monolithic_topology(scheduler: Optional[SchedulerConfig] = None) -> Topology:
    """A host-only topology: the monolithic baseline of §3.1."""
    scheduler = scheduler or SchedulerConfig()
    return Topology((ClusterSpec(
        name="wide", datapath_width=MACHINE_WIDTH, clock_ratio=1,
        issue_width=scheduler.issue_width, queue_size=scheduler.queue_size,
        memory_ports=scheduler.memory_ports, has_fp=True),))


def helper_topology(narrow_width: int = NARROW_WIDTH, clock_ratio: int = 2,
                    helpers: int = 1,
                    scheduler: Optional[SchedulerConfig] = None,
                    has_fp: bool = False,
                    copy_latency_slow: int = 2,
                    flush_penalty_slow: int = 5) -> Topology:
    """A wide host plus ``helpers`` identical narrow backends.

    ``helper_topology()`` with the defaults is the paper's design point; the
    2-helper and 16-bit-helper scenarios of the design-space exploration are
    one-argument variations.
    """
    if helpers < 0:
        raise ValueError("helper count must be non-negative")
    scheduler = scheduler or SchedulerConfig()
    host = ClusterSpec(
        name="wide", datapath_width=MACHINE_WIDTH, clock_ratio=1,
        issue_width=scheduler.issue_width, queue_size=scheduler.queue_size,
        memory_ports=scheduler.memory_ports, has_fp=True,
        copy_latency_slow=copy_latency_slow,
        flush_penalty_slow=flush_penalty_slow)
    names = (["narrow"] if helpers == 1
             else [f"narrow{i}" for i in range(helpers)])
    specs = [ClusterSpec(
        name=name, datapath_width=narrow_width, clock_ratio=clock_ratio,
        issue_width=scheduler.issue_width, queue_size=scheduler.queue_size,
        memory_ports=scheduler.memory_ports, has_fp=has_fp,
        copy_latency_slow=copy_latency_slow,
        flush_penalty_slow=flush_penalty_slow) for name in names]
    return Topology(tuple([host] + specs))


def mixed_helper_topology(helper_shapes: Sequence[Tuple[int, int]],
                          scheduler: Optional[SchedulerConfig] = None,
                          has_fp: bool = False,
                          copy_latency_slow: int = 2,
                          flush_penalty_slow: int = 5) -> Topology:
    """A wide host plus an asymmetric mix of helper backends.

    ``helper_shapes`` is a sequence of ``(datapath_width, clock_ratio)``
    pairs, one per helper, so the ROADMAP's 8-bit@2x + 16-bit@1x machine is
    ``mixed_helper_topology([(8, 2), (16, 1)])``.  Helpers are named
    ``n<width>x<ratio>`` (with an index suffix on repeats).
    """
    if not helper_shapes:
        raise ValueError("at least one helper shape is required")
    scheduler = scheduler or SchedulerConfig()
    host = ClusterSpec(
        name="wide", datapath_width=MACHINE_WIDTH, clock_ratio=1,
        issue_width=scheduler.issue_width, queue_size=scheduler.queue_size,
        memory_ports=scheduler.memory_ports, has_fp=True,
        copy_latency_slow=copy_latency_slow,
        flush_penalty_slow=flush_penalty_slow)
    specs = [host]
    seen: Dict[str, int] = {}
    for width, ratio in helper_shapes:
        name = f"n{width}x{ratio}"
        count = seen.get(name, 0)
        seen[name] = count + 1
        if count:
            name = f"{name}_{count}"
        specs.append(ClusterSpec(
            name=name, datapath_width=width, clock_ratio=ratio,
            issue_width=scheduler.issue_width, queue_size=scheduler.queue_size,
            memory_ports=scheduler.memory_ports, has_fp=has_fp,
            copy_latency_slow=copy_latency_slow,
            flush_penalty_slow=flush_penalty_slow))
    return Topology(tuple(specs))


#: Parameter pools :func:`random_topology` draws from.  Kept module-level so
#: tests (and the fuzz corpus docs) can see exactly which machine space the
#: differential-fuzz campaign covers.
#: widths must divide MACHINE_WIDTH — the splitter's chunking contract
#: (a 24-bit draw was the first bug the fuzzer found: the simulator
#: rejected it only at construction time, long after config validation).
RANDOM_HELPER_WIDTHS = (4, 8, 16, 32)
RANDOM_CLOCK_RATIOS = (1, 2, 3, 4)
RANDOM_QUEUE_SIZES = (4, 8, 16, 32, 64)


def random_topology(rng, max_helpers: int = 3) -> Topology:
    """Draw a random-but-valid :class:`Topology` from ``rng``.

    The host is always the paper's wide 32-bit cluster at clock ratio 1
    with FP units (a :class:`Topology` invariant); everything else is
    drawn from the pools above: helper count 0..``max_helpers``, datapath
    widths (including full-width and the awkward non-power-of-two 24-bit
    case), clock ratios, per-cluster scheduler resources, FU mix
    (``has_fp`` helpers included) and copy/flush latencies.  Constraints
    the dataclass validators enforce — helper width <= host width, unique
    names, positive resources — hold by construction, so every returned
    topology is simulatable.

    ``rng`` is a ``random.Random``; the draw is a pure function of its
    state, which is how the fuzz harness regenerates byte-identical cases
    from a single case seed.
    """
    def scheduler_draw() -> dict:
        return {
            "issue_width": rng.randint(1, 4),
            "queue_size": rng.choice(RANDOM_QUEUE_SIZES),
            "memory_ports": rng.randint(1, 3),
        }

    host = ClusterSpec(
        name="wide", datapath_width=MACHINE_WIDTH, clock_ratio=1,
        has_fp=True,
        copy_latency_slow=rng.randint(1, 4),
        flush_penalty_slow=rng.randint(0, 8),
        **scheduler_draw())
    specs = [host]
    for index in range(rng.randint(0, max_helpers)):
        width = rng.choice(RANDOM_HELPER_WIDTHS)
        ratio = rng.choice(RANDOM_CLOCK_RATIOS)
        specs.append(ClusterSpec(
            name=f"fz{index}_{width}x{ratio}",
            datapath_width=width, clock_ratio=ratio,
            has_fp=rng.random() < 0.2,
            copy_latency_slow=rng.randint(1, 4),
            flush_penalty_slow=rng.randint(0, 8),
            **scheduler_draw()))
    return Topology(tuple(specs))


def topology_config(topology: Topology, predictor_entries: int = 256,
                    use_confidence: bool = True) -> MachineConfig:
    """A :class:`MachineConfig` around an explicit topology."""
    return MachineConfig(
        topology=topology,
        helper=HelperClusterConfig(enabled=topology.num_helpers > 0),
        predictor=PredictorConfig(table_entries=predictor_entries,
                                  use_confidence=use_confidence),
    )


def baseline_config() -> MachineConfig:
    """The monolithic baseline: Table 1 resources, no helper cluster."""
    return MachineConfig(helper=HelperClusterConfig(enabled=False))


def helper_cluster_config(narrow_width: int = NARROW_WIDTH, clock_ratio: int = 2,
                          predictor_entries: int = 256,
                          use_confidence: bool = True) -> MachineConfig:
    """The baseline augmented with the 8-bit helper cluster of §2.

    .. deprecated:: prefer :func:`topology_config` around
        :func:`helper_topology` for new code; this remains the canned paper
        design point and is equivalent to
        ``topology_config(helper_topology(narrow_width, clock_ratio))``.
    """
    return MachineConfig(
        helper=HelperClusterConfig(enabled=True, narrow_width=narrow_width,
                                   clock_ratio=clock_ratio),
        predictor=PredictorConfig(table_entries=predictor_entries,
                                  use_confidence=use_confidence),
    )


#: Table 1 of the paper, as a report-friendly mapping.  Used by the
#: Table 1 benchmark and by the README.
TABLE_1_PARAMETERS = {
    "Trace Cache (TC)": "32K uops, 4-way",
    "Level-1 DCache (DL0)": "32KB, 8-way, 3 cycle, 2 R/W ports",
    "Level-2 Cache (UL1)": "4MB, 16-way, 13 cycle, 1 R/W port",
    "Integer Execution": "32 entry scheduler, 3 issue",
    "Fp Execution": "32 entry scheduler, 3 issue",
    "Commit Width": "6 instructions",
    "Main Memory": "450 cycles",
}
