"""Machine configuration: the Table 1 baseline and the helper cluster.

``MachineConfig`` bundles everything the simulator needs: the frontend and
memory parameters of the monolithic baseline (Table 1), the scheduler
parameters shared by both backends, and the helper-cluster parameters of §2
(narrow width, clock ratio, whether the helper cluster exists at all).

The baseline monolithic processor of the paper has the same resources as the
frontend plus the *wide* backend of the clustered machine; the helper-cluster
configuration simply adds the narrow backend.  ``baseline_config()`` and
``helper_cluster_config()`` construct exactly those two machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import MemoryConfig
from repro.memory.tracecache import TraceCacheConfig


@dataclass(frozen=True)
class SchedulerConfig:
    """Per-backend scheduler resources (Table 1: 32-entry, 3-issue)."""

    queue_size: int = 32
    issue_width: int = 3
    memory_ports: int = 2

    def __post_init__(self) -> None:
        if self.queue_size <= 0 or self.issue_width <= 0 or self.memory_ports <= 0:
            raise ValueError("scheduler parameters must be positive")


@dataclass(frozen=True)
class PredictorConfig:
    """Width / carry / copy-prefetch predictor parameters (§3.2, §3.5, §3.6)."""

    #: Number of entries in the PC-indexed tagless table ("a size of 256
    #: entries was found to be a good compromise", §3.2).
    table_entries: int = 256
    #: Use the 2-bit confidence estimator to gate narrow steering (§3.2).
    use_confidence: bool = True
    #: Confidence counter threshold at which a prediction counts as
    #: high-confidence (2-bit counter, so 0..3; the top two states qualify).
    confidence_threshold: int = 2

    def __post_init__(self) -> None:
        if self.table_entries <= 0 or (self.table_entries & (self.table_entries - 1)):
            raise ValueError("predictor table entries must be a positive power of two")
        if not 0 <= self.confidence_threshold <= 3:
            raise ValueError("confidence threshold must be within a 2-bit counter range")


@dataclass(frozen=True)
class HelperClusterConfig:
    """Parameters of the narrow helper backend (§2)."""

    #: Whether the helper cluster exists (False = monolithic baseline).
    enabled: bool = True
    #: Narrow datapath width in bits (8 in the paper's design point).
    narrow_width: int = NARROW_WIDTH
    #: Helper-to-wide clock ratio (2 in §2.2).
    clock_ratio: int = 2
    #: The helper backend has integer units only (no FPUs), §2.1.
    has_fp: bool = False
    #: Latency of an inter-cluster copy in slow cycles (issue in the producer
    #: cluster + transfer to the consumer's register file).
    copy_latency_slow: int = 2
    #: Recovery penalty of a flushing squash, in slow cycles (§3.2).
    flush_penalty_slow: int = 5

    def __post_init__(self) -> None:
        if self.narrow_width <= 0 or self.narrow_width > MACHINE_WIDTH:
            raise ValueError("narrow width must be in (0, machine width]")
        if self.clock_ratio < 1:
            raise ValueError("clock ratio must be >= 1")
        if self.copy_latency_slow < 1:
            raise ValueError("copy latency must be >= 1 slow cycle")
        if self.flush_penalty_slow < 0:
            raise ValueError("flush penalty must be non-negative")

    @property
    def split_chunks(self) -> int:
        """Number of narrow chunks a wide instruction splits into (§3.7)."""
        return max(1, MACHINE_WIDTH // self.narrow_width)


@dataclass(frozen=True)
class MachineConfig:
    """Complete machine description."""

    #: Frontend fetch/decode width per wide cycle.
    fetch_width: int = 6
    #: In-order commit width per wide cycle (Table 1).
    commit_width: int = 6
    #: Reorder buffer capacity (in-flight uops).
    rob_size: int = 128
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    fp_scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    trace_cache: TraceCacheConfig = field(default_factory=TraceCacheConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    helper: HelperClusterConfig = field(default_factory=HelperClusterConfig)

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.commit_width <= 0 or self.rob_size <= 0:
            raise ValueError("frontend/commit/ROB parameters must be positive")

    # ------------------------------------------------------------- derived
    @property
    def narrow_width(self) -> int:
        return self.helper.narrow_width

    @property
    def clock_ratio(self) -> int:
        return self.helper.clock_ratio if self.helper.enabled else 1

    def with_helper(self, **overrides) -> "MachineConfig":
        """Return a copy with helper-cluster fields overridden."""
        return replace(self, helper=replace(self.helper, **overrides))

    def with_predictor(self, **overrides) -> "MachineConfig":
        """Return a copy with predictor fields overridden."""
        return replace(self, predictor=replace(self.predictor, **overrides))

    def with_scheduler(self, **overrides) -> "MachineConfig":
        """Return a copy with (integer) scheduler fields overridden."""
        return replace(self, scheduler=replace(self.scheduler, **overrides))


def baseline_config() -> MachineConfig:
    """The monolithic baseline: Table 1 resources, no helper cluster."""
    return MachineConfig(helper=HelperClusterConfig(enabled=False))


def helper_cluster_config(narrow_width: int = NARROW_WIDTH, clock_ratio: int = 2,
                          predictor_entries: int = 256,
                          use_confidence: bool = True) -> MachineConfig:
    """The baseline augmented with the 8-bit helper cluster of §2."""
    return MachineConfig(
        helper=HelperClusterConfig(enabled=True, narrow_width=narrow_width,
                                   clock_ratio=clock_ratio),
        predictor=PredictorConfig(table_entries=predictor_entries,
                                  use_confidence=use_confidence),
    )


#: Table 1 of the paper, as a report-friendly mapping.  Used by the
#: Table 1 benchmark and by the README.
TABLE_1_PARAMETERS = {
    "Trace Cache (TC)": "32K uops, 4-way",
    "Level-1 DCache (DL0)": "32KB, 8-way, 3 cycle, 2 R/W ports",
    "Level-2 Cache (UL1)": "4MB, 16-way, 13 cycle, 1 R/W port",
    "Integer Execution": "32 entry scheduler, 3 issue",
    "Fp Execution": "32 entry scheduler, 3 issue",
    "Commit Width": "6 instructions",
    "Main Memory": "450 cycles",
}
