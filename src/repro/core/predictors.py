"""Prediction structures of the helper cluster.

Three predictors are described in the paper, all built around the same
256-entry, PC-indexed, tagless table:

* **Width predictor (§3.2)** — one bit per entry remembering the width class
  (narrow / wide) of the last result produced by the instruction at that PC,
  plus a 2-bit confidence estimator; only high-confidence narrow predictions
  are allowed to steer an instruction to the helper cluster.  The paper
  reports ~93.5% accuracy, and the confidence gate reduces mispredictions
  that require recovery from 2.11% to 0.83%.
* **Carry-width predictor (§3.5, CR)** — an additional bit per entry that is
  set at writeback when the instruction's last occurrence operated on only
  the low 8 bits (one narrow and one wide source, wide result, carry not
  propagated past bit 7).
* **Copy-prefetch predictor (§3.6, CP)** — one more bit per entry, set when a
  producer instruction incurred an inter-cluster copy, triggering a prefetch
  of the copy at the producer on its next dynamic instance.  The paper
  reports ~90% accuracy for this predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.values import NARROW_WIDTH


@dataclass
class PredictorStats:
    """Accuracy bookkeeping shared by the predictors."""

    lookups: int = 0
    updates: int = 0
    correct: int = 0
    incorrect: int = 0

    @property
    def accuracy(self) -> float:
        total = self.correct + self.incorrect
        return self.correct / total if total else 0.0


class ConfidenceCounter:
    """A saturating 2-bit confidence counter."""

    __slots__ = ("value", "max_value")

    def __init__(self, initial: int = 0, bits: int = 2) -> None:
        self.max_value = (1 << bits) - 1
        if not 0 <= initial <= self.max_value:
            raise ValueError(f"initial value {initial} outside counter range")
        self.value = initial

    def increment(self) -> None:
        if self.value < self.max_value:
            self.value += 1

    def decrement(self) -> None:
        if self.value > 0:
            self.value -= 1

    def reset(self) -> None:
        self.value = 0

    def is_confident(self, threshold: int = 2) -> bool:
        return self.value >= threshold


@dataclass(slots=True)
class WidthPrediction:
    """Result of a width-predictor lookup."""

    narrow: bool
    confident: bool
    #: carry-width bit (CR): last occurrence operated on low 8 bits only
    carry_safe: bool = False
    #: copy-prefetch bit (CP): last occurrence incurred an inter-cluster copy
    will_copy: bool = False
    #: last observed result width in bits (two's complement), tracked when a
    #: width-aware cluster selector asks for it; ``None`` when untracked
    width_bits: Optional[int] = None


class _Entry:
    """One tagless table entry holding all per-PC prediction state."""

    __slots__ = ("narrow", "confidence", "carry_safe", "carry_confidence",
                 "will_copy", "width_bits", "_pred")

    def __init__(self) -> None:
        # Predict narrow by default: unseen instructions are the common case
        # early on and a wrong "narrow" guess is only acted upon when the
        # confidence gate is disabled.
        self.narrow = True
        self.confidence = ConfidenceCounter()
        self.carry_safe = False
        self.carry_confidence = ConfidenceCounter()
        self.will_copy = False
        #: memoised :class:`WidthPrediction` snapshot; predictions are
        #: immutable, so repeated lookups between updates share one object.
        #: Any update to the entry invalidates it.
        self._pred: Optional["WidthPrediction"] = None
        # Width-in-bits companion of the ``narrow`` bit, consumed by the
        # width-aware selector to pick the tightest-fitting helper cluster.
        self.width_bits = NARROW_WIDTH


class WidthPredictor:
    """The PC-indexed tagless width predictor with confidence estimation.

    The same physical table also hosts the CR and CP bits; they are exposed
    through :class:`CarryPredictor` and :class:`CopyPrefetchPredictor` views
    so each scheme can be enabled independently, exactly as the paper layers
    them.
    """

    def __init__(self, entries: int = 256, use_confidence: bool = True,
                 confidence_threshold: int = 2,
                 carry_confidence_threshold: int = 3) -> None:
        if entries <= 0 or (entries & (entries - 1)):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.use_confidence = use_confidence
        self.confidence_threshold = confidence_threshold
        # CR mispredictions are expensive (flushing recovery), so the carry
        # bit is gated by a stricter (saturated) confidence requirement.
        self.carry_confidence_threshold = carry_confidence_threshold
        self._mask = entries - 1
        self._table: List[_Entry] = [_Entry() for _ in range(entries)]
        self.stats = PredictorStats()
        self.carry_stats = PredictorStats()
        self.copy_stats = PredictorStats()

    # ------------------------------------------------------------------ index
    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def entry_for(self, pc: int) -> _Entry:
        return self._table[(pc >> 2) & self._mask]

    # ---------------------------------------------------------------- predict
    def predict(self, pc: int) -> WidthPrediction:
        """Predict the result width of the instruction at ``pc``.

        Predictions are immutable snapshots of the entry's state, so the
        entry memoises one and reuses it until the next update invalidates
        it — repeated lookups at a stable PC cost one dict probe, and the
        returned object is exactly what a fresh construction would hold.
        """
        entry = self._table[(pc >> 2) & self._mask]
        self.stats.lookups += 1
        prediction = entry._pred
        if prediction is None:
            confident = (not self.use_confidence
                         or entry.confidence.value >= self.confidence_threshold)
            prediction = WidthPrediction(
                narrow=entry.narrow,
                confident=confident,
                carry_safe=(entry.carry_safe and entry.carry_confidence.value
                            >= self.carry_confidence_threshold),
                will_copy=entry.will_copy,
                width_bits=entry.width_bits,
            )
            entry._pred = prediction
        return prediction

    # ----------------------------------------------------------------- update
    def update(self, pc: int, actual_narrow: bool,
               width_bits: Optional[int] = None) -> None:
        """Writeback-time update with the actual result width.

        ``width_bits`` — the result's two's-complement width — is recorded
        alongside the width-class bit when a width-aware selector tracks it;
        it never influences the ``narrow``/confidence state, so the default
        machines are untouched by the extra channel.
        """
        entry = self._table[(pc >> 2) & self._mask]
        entry._pred = None
        self.stats.updates += 1
        if width_bits is not None:
            entry.width_bits = width_bits
        if entry.narrow == actual_narrow:
            self.stats.correct += 1
            entry.confidence.increment()
        else:
            self.stats.incorrect += 1
            entry.confidence.reset()
            entry.narrow = actual_narrow

    def update_carry(self, pc: int, operated_narrow: bool) -> None:
        """Writeback-time update of the CR bit (§3.5)."""
        entry = self._table[(pc >> 2) & self._mask]
        entry._pred = None
        self.carry_stats.updates += 1
        if entry.carry_safe == operated_narrow:
            self.carry_stats.correct += 1
            entry.carry_confidence.increment()
        else:
            self.carry_stats.incorrect += 1
            entry.carry_confidence.reset()
            entry.carry_safe = operated_narrow

    def update_copy(self, pc: int, incurred_copy: bool) -> None:
        """Writeback-time update of the CP bit (§3.6)."""
        entry = self._table[(pc >> 2) & self._mask]
        entry._pred = None
        self.copy_stats.updates += 1
        if entry.will_copy == incurred_copy:
            self.copy_stats.correct += 1
        else:
            self.copy_stats.incorrect += 1
        entry.will_copy = incurred_copy

    def reset(self) -> None:
        self._table = [_Entry() for _ in range(self.entries)]
        self.stats = PredictorStats()
        self.carry_stats = PredictorStats()
        self.copy_stats = PredictorStats()


class CarryPredictor:
    """View over :class:`WidthPredictor` exposing only the CR scheme's bit."""

    def __init__(self, width_predictor: WidthPredictor) -> None:
        self._wp = width_predictor

    def predict_carry_safe(self, pc: int) -> bool:
        """True if the last occurrence at ``pc`` did not propagate a carry past bit 7."""
        return self._wp.predict(pc).carry_safe

    def update(self, pc: int, operated_narrow: bool) -> None:
        self._wp.update_carry(pc, operated_narrow)

    @property
    def stats(self) -> PredictorStats:
        return self._wp.carry_stats


class CopyPrefetchPredictor:
    """View over :class:`WidthPredictor` exposing only the CP scheme's bit."""

    def __init__(self, width_predictor: WidthPredictor) -> None:
        self._wp = width_predictor

    def predict_will_copy(self, pc: int) -> bool:
        """True if the producer at ``pc`` incurred an inter-cluster copy last time."""
        return self._wp.predict(pc).will_copy

    def update(self, pc: int, incurred_copy: bool) -> None:
        self._wp.update_copy(pc, incurred_copy)

    @property
    def stats(self) -> PredictorStats:
        return self._wp.copy_stats
