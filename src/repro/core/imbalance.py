"""Workload-imbalance measurement: the NREADY metric (§3.7).

Following Parcerisa & González, the workload imbalance at a given instant is
the number of *ready* instructions that cannot issue in their own cluster but
could have issued in another cluster with spare issue slots.  If the helper
clusters are underutilised there is wide-to-narrow imbalance (ready wide
work that an idle helper could have absorbed); if they are overutilised the
narrow-to-wide imbalance dominates.

The monitor also tracks the issue-queue occupancy discrepancy, which is the
signal the IR splitting heuristic actually uses at dispatch time ("whenever
wide-to-narrow imbalance exists, as indicated by the discrepancy of the issue
queue occupancy rates of the clusters").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ImbalanceSample:
    """One per-cycle imbalance observation."""

    fast_cycle: int
    wide_ready_blocked: int
    narrow_ready_blocked: int
    wide_free_slots: int
    narrow_free_slots: int
    wide_occupancy: int
    narrow_occupancy: int


@dataclass
class ImbalanceMonitor:
    """Accumulates NREADY imbalance and occupancy statistics.

    Parameters
    ----------
    occupancy_threshold:
        Relative issue-queue occupancy gap (wide minus narrow, normalised by
        queue size) above which the IR heuristic considers the helper cluster
        underutilised and enables splitting.
    """

    queue_size: int = 32
    #: wide-cluster scheduler capacity; defaults to ``queue_size`` (the two
    #: clusters of the paper's machine have identical schedulers).  With
    #: several helper clusters ``queue_size`` is the *aggregate* helper
    #: capacity, which no longer equals the wide queue's own size.
    wide_queue_size: Optional[int] = None
    #: occupancy gap (wide minus narrow, normalised by queue size) above which
    #: the IR heuristic splits wide instructions toward the narrow cluster
    occupancy_threshold: float = 0.15
    #: reverse gap above which narrow-eligible work is steered back to the
    #: wide cluster (the helper cluster is overloaded, §1 item 5)
    overload_threshold: float = 0.50
    samples: int = 0
    issue_opportunities: int = 0
    wide_to_narrow_nready: int = 0
    narrow_to_wide_nready: int = 0
    wide_occupancy_accum: int = 0
    narrow_occupancy_accum: int = 0
    #: documented live-view aliases (REP003): the simulator's sampling
    #: fast path writes these directly instead of building an
    #: ImbalanceSample per wide cycle, and the IR heuristics read them
    last_wide_occupancy: int = 0
    last_narrow_occupancy: int = 0

    # ----------------------------------------------------------------- sample
    def record(self, sample: ImbalanceSample) -> None:
        """Record one cycle's observation.

        ``wide_ready_blocked`` counts ready instructions in the wide queue
        that could not issue this cycle; they count toward wide-to-narrow
        imbalance only insofar as the narrow cluster had free issue slots,
        and vice versa (that is the NREADY definition).
        """
        self.record_cycle(sample.wide_ready_blocked, sample.narrow_ready_blocked,
                          sample.wide_free_slots, sample.narrow_free_slots,
                          sample.wide_occupancy, sample.narrow_occupancy)

    def record_cycle(self, wide_ready_blocked: int, narrow_ready_blocked: int,
                     wide_free_slots: int, narrow_free_slots: int,
                     wide_occupancy: int, narrow_occupancy: int) -> None:
        """Scalar fast path of :meth:`record` (no sample object allocation)."""
        self.samples += 1
        self.issue_opportunities += max(1, wide_occupancy + narrow_occupancy)
        self.wide_to_narrow_nready += min(wide_ready_blocked, narrow_free_slots)
        self.narrow_to_wide_nready += min(narrow_ready_blocked, wide_free_slots)
        self.wide_occupancy_accum += wide_occupancy
        self.narrow_occupancy_accum += narrow_occupancy
        self.last_wide_occupancy = wide_occupancy
        self.last_narrow_occupancy = narrow_occupancy

    def record_idle_cycles(self, wide_occupancy: int, narrow_occupancy: int,
                           cycles: int) -> None:
        """Record ``cycles`` consecutive idle observations in one call.

        Used when the simulator fast-forwards over cycles during which
        provably nothing issues, completes or dispatches: the queues are
        frozen, no active backend has blocked-ready work, so every skipped
        cycle would have contributed identical occupancy terms and zero
        NREADY terms.  The aggregate equals per-cycle sampling exactly.
        """
        self.samples += cycles
        self.issue_opportunities += cycles * max(1, wide_occupancy + narrow_occupancy)
        self.wide_occupancy_accum += cycles * wide_occupancy
        self.narrow_occupancy_accum += cycles * narrow_occupancy
        self.last_wide_occupancy = wide_occupancy
        self.last_narrow_occupancy = narrow_occupancy

    # ------------------------------------------------------------------ rates
    def wide_to_narrow_imbalance(self) -> float:
        """Fraction of issue opportunities lost to wide-to-narrow imbalance."""
        if self.issue_opportunities == 0:
            return 0.0
        return self.wide_to_narrow_nready / self.issue_opportunities

    def narrow_to_wide_imbalance(self) -> float:
        """Fraction of issue opportunities lost to narrow-to-wide imbalance."""
        if self.issue_opportunities == 0:
            return 0.0
        return self.narrow_to_wide_nready / self.issue_opportunities

    def mean_wide_occupancy(self) -> float:
        return self.wide_occupancy_accum / self.samples if self.samples else 0.0

    def mean_narrow_occupancy(self) -> float:
        return self.narrow_occupancy_accum / self.samples if self.samples else 0.0

    # ------------------------------------------------------------ IR decision
    def helper_underutilised(self) -> bool:
        """Dispatch-time signal for the IR scheme: is there wide-to-narrow imbalance?

        Uses the instantaneous issue-queue occupancy discrepancy, which is
        what the paper's heuristic consults ("indicated by the discrepancy of
        the issue queue occupancy rates of the clusters").  Splitting only
        pays off when the wide scheduler is genuinely congested, so an
        absolute occupancy floor is required as well.
        """
        wide_capacity = (self.wide_queue_size if self.wide_queue_size is not None
                         else self.queue_size)
        if self.last_wide_occupancy < 0.75 * wide_capacity:
            return False
        if self.last_narrow_occupancy > 0.5 * self.queue_size:
            return False
        gap = (self.last_wide_occupancy - self.last_narrow_occupancy) / max(1, self.queue_size)
        return gap > self.occupancy_threshold

    def helper_overloaded(self) -> bool:
        """Opposite condition: steer narrow work back to the wide cluster (§1, item 5)."""
        gap = (self.last_narrow_occupancy - self.last_wide_occupancy) / max(1, self.queue_size)
        return gap > self.overload_threshold

    def reset(self) -> None:
        self.samples = 0
        self.issue_opportunities = 0
        self.wide_to_narrow_nready = 0
        self.narrow_to_wide_nready = 0
        self.wide_occupancy_accum = 0
        self.narrow_occupancy_accum = 0
        self.last_wide_occupancy = 0
        self.last_narrow_occupancy = 0
