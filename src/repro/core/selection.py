"""Cluster selection: resolving steering decisions to concrete clusters.

The steering API separates *intent* from *placement*.  A
:class:`~repro.core.steering.SteeringPolicy` returns a
:class:`~repro.core.steering.SteerDecision` that either names a concrete
``target_cluster`` (an index into the topology) or carries a declarative
:class:`ClusterRequirement` (minimum datapath width, FP need, memory-port
need).  A shared, policy-visible :class:`ClusterSelector` — bound to the
simulator's backends at construction — resolves that intent to a cluster
index once per dispatched uop, replacing the helper-resolution logic that
used to live inside the simulator's hot loop.

Two selectors ship by default:

* :class:`LeastLoadedSelector` reproduces the original behaviour
  bit-identically: the single-helper machine of the paper trivially uses
  cluster 1, and with several helpers the least-loaded capable one wins
  (lowest index on ties).
* :class:`WidthAwareSelector` routes uops by *predicted value width*: the
  narrowest helper whose datapath fits the requirement wins, so on an
  asymmetric 8-bit + 16-bit machine 9-16-bit values land on the 16-bit
  helper instead of bouncing to the wide host, and 8-bit values keep the
  fast 8-bit helper.  It also widens the steering width horizon to the
  widest helper datapath and asks the simulator to track value widths in
  bits (rename width table and width predictor).

New selectors register by name in :data:`SELECTORS`;
:class:`~repro.core.steering.PolicySpec` records the selector name plus its
knobs, which is how selector choice reaches the result-cache key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusterSpec, MachineConfig, Topology
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class ClusterRequirement:
    """Declarative execution needs of one steered uop.

    ``min_width`` is the number of bits the uop's operand/result values are
    expected to need (two's-complement width, see
    :func:`repro.isa.values.value_width`); a cluster can host the uop only
    if its datapath is at least that wide.  ``needs_memory_port`` is
    future-proofing: every :class:`ClusterSpec` currently validates
    ``memory_ports >= 1``, so it only starts filtering if port-less
    clusters become expressible.
    """

    min_width: int = 1
    needs_fp: bool = False
    needs_memory_port: bool = False

    def satisfied_by(self, spec: ClusterSpec, width_margin: int = 0) -> bool:
        """Whether a cluster of the given spec can execute the uop."""
        if spec.datapath_width < self.min_width + width_margin:
            return False
        if self.needs_fp and not spec.has_fp:
            return False
        if self.needs_memory_port and spec.memory_ports <= 0:
            return False
        return True


class ClusterSelector:
    """Base class: selectors map steering intent to a concrete cluster.

    A selector is *bound* to a simulator's topology and backend list once at
    simulator construction and consulted per dispatched uop.  It is shared
    state visible to the policy through the
    :class:`~repro.core.steering.SteeringContext`, which is how a policy can
    adapt its width classification to the selector's horizon.
    """

    name = "abstract"
    #: Ask the simulator to track value widths in bits (rename width table
    #: and width predictor) so requirements can carry precise widths.
    wants_width_bits = False

    def __init__(self) -> None:
        self._backends: List = []
        self._helpers: List = []
        self._single_helper = False

    # ------------------------------------------------------------------ bind
    def bind(self, topology: Topology, backends: Sequence) -> None:
        """Attach the selector to a machine's backend list (cluster order)."""
        self._backends = list(backends)
        self._helpers = self._backends[1:]
        self._single_helper = len(self._helpers) == 1

    # ------------------------------------------------------------- horizon
    def steering_width(self, config: MachineConfig, topology: Topology) -> int:
        """Value-width horizon (bits) below which a value counts as narrow
        for steering classification, predictor training and the rename
        width table.  The default is the machine's ``narrow_width`` (the
        narrowest helper datapath), the paper's classification."""
        return config.narrow_width

    # -------------------------------------------------------------- select
    def select(self, requirement: Optional[ClusterRequirement] = None,
               opcode: Optional[Opcode] = None) -> Optional[int]:
        """Pick a helper cluster index, or ``None`` when no helper fits."""
        raise NotImplementedError

    def resolve(self, decision, opcode: Optional[Opcode] = None) -> int:
        """Resolve a full :class:`SteerDecision` to a cluster index.

        Wide decisions map to the host (cluster 0).  An explicit
        ``target_cluster`` wins when it names a valid, capable helper — FU
        support *and* the decision's requirement, so a too-narrow target
        cannot silently invite a fatal width flush; otherwise (and when the
        target fails those checks) the requirement drives :meth:`select`,
        and a failed selection falls back to the host.
        """
        if not decision.to_helper:
            return 0
        target = decision.target_cluster
        requirement = decision.requirement
        if target is not None and 1 <= target < len(self._backends):
            backend = self._backends[target]
            if ((opcode is None or backend.units.supports(opcode))
                    and (requirement is None
                         or requirement.satisfied_by(backend.spec))):
                return target
        choice = self.select(requirement=requirement, opcode=opcode)
        return 0 if choice is None else choice

    # --------------------------------------------------------------- stats
    def reset(self) -> None:
        """Clear per-run statistics (policies call this from their reset)."""


class LeastLoadedSelector(ClusterSelector):
    """The original helper resolution: least-loaded capable helper.

    Bit-identical to the resolution the simulator used to perform inline:
    the single-helper machine of the paper trivially returns cluster 1, and
    with several helpers the one with the most free scheduler slots wins
    (lowest index on ties).  Requirements are honoured when present, but
    ladder policies under this selector do not emit them, preserving the
    original behaviour exactly.
    """

    name = "least_loaded"

    def select(self, requirement: Optional[ClusterRequirement] = None,
               opcode: Optional[Opcode] = None) -> Optional[int]:
        if self._single_helper and requirement is None:
            return 1
        best: Optional[int] = None
        best_free = -1
        for backend in self._helpers:
            if requirement is not None and not requirement.satisfied_by(backend.spec):
                continue
            if opcode is not None and not backend.units.supports(opcode):
                continue
            free = backend.issue_queue.free_slots
            if free > best_free:
                best = backend.index
                best_free = free
        return best


class WidthAwareSelector(ClusterSelector):
    """Route steered uops to the narrowest helper that fits their width.

    The tightest-fitting capable helper wins: a requirement of 9-16 bits on
    an 8-bit + 16-bit machine can only land on the 16-bit helper, while
    8-bit work keeps the (faster-clocked) 8-bit helper.  Among helpers of
    equal width the least-loaded wins (lowest index on ties), and when the
    narrowest fit has no free scheduler slot the work spills to the next
    narrowest helper that has one rather than stalling dispatch.

    ``width_margin`` demands that many spare bits of datapath beyond the
    requirement (a conservatism knob carried through
    :class:`~repro.core.steering.PolicySpec.knobs`).
    """

    name = "width_aware"
    wants_width_bits = True

    def __init__(self, width_margin: int = 0) -> None:
        super().__init__()
        if width_margin < 0:
            raise ValueError("width margin must be non-negative")
        self.width_margin = width_margin
        #: (requirement min_width, chosen cluster index) -> count; how the
        #: selector routed width-carrying requirements (test/report hook).
        self.routed: Dict[Tuple[int, int], int] = {}

    def steering_width(self, config: MachineConfig, topology: Topology) -> int:
        """Widest helper datapath: anything that fits *some* helper is a
        steering candidate; the requirement records how many bits it needs."""
        widths = [spec.datapath_width for spec in topology.helpers]
        return max(widths) if widths else config.narrow_width

    def select(self, requirement: Optional[ClusterRequirement] = None,
               opcode: Optional[Opcode] = None) -> Optional[int]:
        best: Optional[Tuple[Tuple[int, int, int], int]] = None
        best_with_room: Optional[Tuple[Tuple[int, int, int], int]] = None
        for backend in self._helpers:
            spec = backend.spec
            if requirement is not None and not requirement.satisfied_by(
                    spec, width_margin=self.width_margin):
                continue
            if opcode is not None and not backend.units.supports(opcode):
                continue
            free = backend.issue_queue.free_slots
            rank = (spec.datapath_width, -free, backend.index)
            if best is None or rank < best[0]:
                best = (rank, backend.index)
            if free > 0 and (best_with_room is None or rank < best_with_room[0]):
                best_with_room = (rank, backend.index)
        choice = best_with_room if best_with_room is not None else best
        if choice is None:
            return None
        cluster = choice[1]
        if requirement is not None:
            key = (requirement.min_width, cluster)
            self.routed[key] = self.routed.get(key, 0) + 1
        return cluster

    def reset(self) -> None:
        self.routed.clear()


#: Selector registry: :class:`~repro.core.steering.PolicySpec` names one of
#: these; register new selectors here to make them spec-addressable.
SELECTORS: Dict[str, type] = {
    LeastLoadedSelector.name: LeastLoadedSelector,
    WidthAwareSelector.name: WidthAwareSelector,
}


def make_selector(name: str, **knobs) -> ClusterSelector:
    """Instantiate a registered selector by name with its knobs."""
    cls = SELECTORS.get(name)
    if cls is None:
        raise KeyError(f"unknown cluster selector {name!r}; "
                       f"known: {', '.join(SELECTORS)}")
    return cls(**knobs)
