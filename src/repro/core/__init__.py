"""Core library: the paper's contribution.

This subpackage implements the helper-cluster mechanisms proposed by the
paper on top of the pipeline/memory substrates:

* :mod:`repro.core.config` — machine configuration (Table 1 baseline plus the
  helper-cluster parameters of §2).
* :mod:`repro.core.predictors` — the PC-indexed width predictor with its
  2-bit confidence estimator (§3.2), the carry-width predictor extension
  (§3.5) and the copy-prefetch predictor (§3.6).
* :mod:`repro.core.cluster` — the wide and narrow backend models.
* :mod:`repro.core.copy_engine` — inter-cluster copy generation and
  prefetching (the Canal/Parcerisa/González copy-instruction scheme).
* :mod:`repro.core.splitting` — wide-instruction splitting for imbalance
  reduction (§3.7).
* :mod:`repro.core.imbalance` — the NREADY workload-imbalance metric.
* :mod:`repro.core.steering` — the data-width aware steering policies
  (8-8-8, BR, LR, CR, CP, IR and the IR no-destination fine tuning), the
  serializable :class:`~repro.core.steering.PolicySpec` records and the
  policy registry that :func:`~repro.core.steering.make_policy` builds from.
* :mod:`repro.core.selection` — cluster selectors resolving steering intent
  (concrete targets or declarative width/FP/memory requirements) to a
  topology cluster.
"""

from repro.core.config import (
    HelperClusterConfig,
    MachineConfig,
    PredictorConfig,
    SchedulerConfig,
    baseline_config,
    helper_cluster_config,
    helper_topology,
    mixed_helper_topology,
    monolithic_topology,
    topology_config,
)
from repro.core.selection import (
    ClusterRequirement,
    ClusterSelector,
    LeastLoadedSelector,
    WidthAwareSelector,
    make_selector,
)
from repro.core.predictors import (
    WidthPredictor,
    WidthPrediction,
    ConfidenceCounter,
    CarryPredictor,
    CopyPrefetchPredictor,
    PredictorStats,
)
from repro.core.cluster import Backend, BackendKind
from repro.core.imbalance import ImbalanceMonitor, ImbalanceSample
from repro.core.copy_engine import CopyEngine, CopyRequest, CopyStats
from repro.core.splitting import InstructionSplitter, SplitPlan, SplitChunk
from repro.core.steering import (
    SteeringPolicy,
    SteerDecision,
    SteeringContext,
    BaselineSteering,
    DataWidthSteering,
    Scheme,
    POLICY_LADDER,
    PolicyRegistry,
    PolicySpec,
    make_policy,
    policy_registry,
    policy_spec,
)

__all__ = [
    "HelperClusterConfig",
    "MachineConfig",
    "PredictorConfig",
    "SchedulerConfig",
    "baseline_config",
    "helper_cluster_config",
    "helper_topology",
    "mixed_helper_topology",
    "monolithic_topology",
    "topology_config",
    "ClusterRequirement",
    "ClusterSelector",
    "LeastLoadedSelector",
    "WidthAwareSelector",
    "make_selector",
    "WidthPredictor",
    "WidthPrediction",
    "ConfidenceCounter",
    "CarryPredictor",
    "CopyPrefetchPredictor",
    "PredictorStats",
    "Backend",
    "BackendKind",
    "ImbalanceMonitor",
    "ImbalanceSample",
    "CopyEngine",
    "CopyRequest",
    "CopyStats",
    "InstructionSplitter",
    "SplitPlan",
    "SplitChunk",
    "SteeringPolicy",
    "SteerDecision",
    "SteeringContext",
    "BaselineSteering",
    "DataWidthSteering",
    "Scheme",
    "POLICY_LADDER",
    "PolicyRegistry",
    "PolicySpec",
    "make_policy",
    "policy_registry",
    "policy_spec",
]
