/* repro._corekernel — compiled inner kernels of the event-wheel simulator.
 *
 * Optional CPython extension implementing the innermost *pure decision*
 * kernels of repro.sim.simulator over the struct-of-arrays hot state
 * (see DESIGN.md, "Hot state & compiled core"):
 *
 *   - next_event:      the event wheel's next-eventful-cycle selection
 *                      (helper clock edges / completion calendar head /
 *                      wide dispatch-commit boundary);
 *   - select_slots:    oldest-first ready-scan issue selection under the
 *                      issue-width and DL0 memory-port budgets;
 *   - rob_commit_scan: contiguous-completed head scan of the ROB ring.
 *
 * plus, once bind_uops() extends the state, the per-uop dispatch chain
 * (python fallbacks in repro.sim.simulator are the semantic source of
 * truth for all three):
 *
 *   - wakeup_waiters:  walk-and-free a producer's waiter list, decrement
 *                      consumer source counts on the scheduler columns;
 *   - resolve_deps:    per-source availability scan over the copy
 *                      engine's value lanes with waiter-list appends;
 *   - dispatch_uop /   the per-uop dispatch tail (resolve + ROB ring
 *     dispatch_batch:  allocate + scheduler column insert + stat lanes),
 *                      batched across a recovery re-dispatch burst.
 *
 * The original kernels mutate nothing except the completion heap's lazy
 * pruning; the dispatch-chain kernels write exactly the columns, dicts
 * and payload lists their python fallbacks write, in the same order.
 * Whenever a call would need to *grow* anything (scheduler free list
 * empty, waiter pool out of nodes, value lanes not yet sized) or inject
 * copy uops, it commits nothing and punts back to the python fallback —
 * growth and copy injection stay in python.  The bound state (a capsule)
 * holds references to long-lived python objects: the calendar dict, the
 * heap list, each cluster's ready dict and array('q') columns.  Buffers
 * of growable arrays are acquired per call, so in-place extension of any
 * column cannot leave dangling pointers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>

static const char CAPSULE_NAME[] = "repro._corekernel.state";

typedef struct {
    PyObject *completions;   /* dict: fast cycle -> bucket list            */
    PyObject *heap;          /* list of int, min-heap of calendar cycles   */
    PyObject *ready_list;    /* list of per-cluster ready dicts (uid->slot)*/
    PyObject *agekey_list;   /* list of per-cluster array('q') age keys    */
    PyObject *mem_list;      /* list of per-cluster array('q') mem flags   */
    PyObject *rob_state;     /* array('q'): ROB ring completion states     */
    long long *periods;      /* per-cluster period in fast cycles          */
    Py_ssize_t n_clusters;
    long long ratio;
    long long rob_size;
    long long commit_width;
    /* ---- dispatch-chain state, populated by bind_uops() ------------- */
    int uops_bound;
    PyObject *dyn_flags;     /* array('q'): DynTable flags column          */
    PyObject *dyn_domain;    /* array('q'): DynTable domain column         */
    PyObject *node_dyn;      /* array('q'): WaiterPool node dyn slots      */
    PyObject *node_next;     /* array('q'): WaiterPool node links          */
    PyObject *pool_ctrl;     /* array('q'): [free head, live count]        */
    PyObject *value_heads;   /* array('q'): per (uid, domain) list heads   */
    PyObject *value_tails;   /* array('q'): per (uid, domain) list tails   */
    PyObject *avail;         /* array('q'): CopyEngine avail_lanes         */
    PyObject *avail_order;   /* array('q'): CopyEngine avail_order_lanes   */
    PyObject *avail_counts;  /* array('q'): CopyEngine avail_count_lanes   */
    PyObject *pending;       /* array('b'): CopyEngine pending_lanes       */
    PyObject *prefetched;    /* array('b'): CopyEngine prefetched_lanes    */
    PyObject *copied;        /* array('b'): CopyEngine copied_lanes        */
    PyObject *engine_stats;  /* array('q'): [useful prefetches, active]    */
    PyObject *rob_uid;       /* array('q'): ROB uid ring                   */
    PyObject *rob_seq;       /* array('q'): ROB seq ring                   */
    PyObject *rob_dyn;       /* array('q'): ROB dyn-slot ring              */
    PyObject *rob_ctrl;      /* array('q'): [head, count]                  */
    PyObject *rob_by_uid;    /* dict: uid -> ring slot                     */
    PyObject *rob_payloads;  /* list: ring payloads                        */
    PyObject *entries_list;  /* list of per-cluster entries dicts          */
    PyObject *remaining_list;/* list of per-cluster array('q') columns     */
    PyObject *uids_list;     /* list of per-cluster array('q') columns     */
    PyObject *payloads_list; /* list of per-cluster payload lists          */
    PyObject *free_lists;    /* list of per-cluster free-slot lists        */
    PyObject *qctrl_list;    /* list of per-cluster array('q') [order]     */
    PyObject *hot_stats;     /* array('q'): dispatch stat lanes            */
    long long *qsizes;       /* per-cluster logical scheduler capacity     */
} CoreState;

static void
state_destructor(PyObject *capsule)
{
    CoreState *st = (CoreState *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
    if (st == NULL)
        return;
    Py_XDECREF(st->completions);
    Py_XDECREF(st->heap);
    Py_XDECREF(st->ready_list);
    Py_XDECREF(st->agekey_list);
    Py_XDECREF(st->mem_list);
    Py_XDECREF(st->rob_state);
    Py_XDECREF(st->dyn_flags);
    Py_XDECREF(st->dyn_domain);
    Py_XDECREF(st->node_dyn);
    Py_XDECREF(st->node_next);
    Py_XDECREF(st->pool_ctrl);
    Py_XDECREF(st->value_heads);
    Py_XDECREF(st->value_tails);
    Py_XDECREF(st->avail);
    Py_XDECREF(st->avail_order);
    Py_XDECREF(st->avail_counts);
    Py_XDECREF(st->pending);
    Py_XDECREF(st->prefetched);
    Py_XDECREF(st->copied);
    Py_XDECREF(st->engine_stats);
    Py_XDECREF(st->rob_uid);
    Py_XDECREF(st->rob_seq);
    Py_XDECREF(st->rob_dyn);
    Py_XDECREF(st->rob_ctrl);
    Py_XDECREF(st->rob_by_uid);
    Py_XDECREF(st->rob_payloads);
    Py_XDECREF(st->entries_list);
    Py_XDECREF(st->remaining_list);
    Py_XDECREF(st->uids_list);
    Py_XDECREF(st->payloads_list);
    Py_XDECREF(st->free_lists);
    Py_XDECREF(st->qctrl_list);
    Py_XDECREF(st->hot_stats);
    free(st->qsizes);
    free(st->periods);
    free(st);
}

static CoreState *
get_state(PyObject *capsule)
{
    return (CoreState *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
}

/* ------------------------------------------------------------------ bind */

static PyObject *
k_bind(PyObject *self, PyObject *args)
{
    PyObject *completions, *heap, *ready_list, *agekey_list, *mem_list;
    PyObject *periods_obj, *rob_state;
    long long ratio, rob_size, commit_width;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!OLOLL",
                          &PyDict_Type, &completions,
                          &PyList_Type, &heap,
                          &PyList_Type, &ready_list,
                          &PyList_Type, &agekey_list,
                          &PyList_Type, &mem_list,
                          &periods_obj, &ratio,
                          &rob_state, &rob_size, &commit_width))
        return NULL;

    Py_ssize_t n_clusters = PyList_GET_SIZE(ready_list);
    if (PyList_GET_SIZE(agekey_list) != n_clusters
        || PyList_GET_SIZE(mem_list) != n_clusters) {
        PyErr_SetString(PyExc_ValueError,
                        "per-cluster column lists disagree on length");
        return NULL;
    }

    Py_buffer pview;
    if (PyObject_GetBuffer(periods_obj, &pview, PyBUF_SIMPLE) < 0)
        return NULL;
    if ((Py_ssize_t)(pview.len / sizeof(long long)) < n_clusters) {
        PyBuffer_Release(&pview);
        PyErr_SetString(PyExc_ValueError, "periods shorter than cluster list");
        return NULL;
    }

    CoreState *st = (CoreState *)calloc(1, sizeof(CoreState));
    if (st == NULL) {
        PyBuffer_Release(&pview);
        return PyErr_NoMemory();
    }
    st->periods = (long long *)malloc(sizeof(long long) * (size_t)n_clusters);
    if (st->periods == NULL) {
        PyBuffer_Release(&pview);
        free(st);
        return PyErr_NoMemory();
    }
    memcpy(st->periods, pview.buf, sizeof(long long) * (size_t)n_clusters);
    PyBuffer_Release(&pview);

    Py_INCREF(completions); st->completions = completions;
    Py_INCREF(heap);        st->heap = heap;
    Py_INCREF(ready_list);  st->ready_list = ready_list;
    Py_INCREF(agekey_list); st->agekey_list = agekey_list;
    Py_INCREF(mem_list);    st->mem_list = mem_list;
    Py_INCREF(rob_state);   st->rob_state = rob_state;
    st->n_clusters = n_clusters;
    st->ratio = ratio;
    st->rob_size = rob_size;
    st->commit_width = commit_width;

    PyObject *capsule = PyCapsule_New(st, CAPSULE_NAME, state_destructor);
    if (capsule == NULL) {
        Py_DECREF(completions); Py_DECREF(heap); Py_DECREF(ready_list);
        Py_DECREF(agekey_list); Py_DECREF(mem_list); Py_DECREF(rob_state);
        free(st->periods);
        free(st);
        return NULL;
    }
    return capsule;
}

/* ------------------------------------------------- completion heap (lazy) */

/* Discard the heap's root, restoring the min-heap property.  Elements are
 * unique python ints; any valid min-heap over the same values is
 * indistinguishable from heapq's arrangement through the only operations
 * ever applied (min-peek here, heappush/heappop in python). */
static int
heap_pop_discard(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return -1;
    }
    n -= 1;
    if (n == 0) {
        Py_DECREF(last);
        return 0;
    }
    long long lastv = PyLong_AsLongLong(last);
    if (lastv == -1 && PyErr_Occurred()) {
        Py_DECREF(last);
        return -1;
    }
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        long long childv = PyLong_AsLongLong(PyList_GET_ITEM(heap, child));
        if (child + 1 < n) {
            long long rightv =
                PyLong_AsLongLong(PyList_GET_ITEM(heap, child + 1));
            if (rightv < childv) {
                childv = rightv;
                child += 1;
            }
        }
        if (lastv <= childv)
            break;
        PyObject *childobj = PyList_GET_ITEM(heap, child);
        Py_INCREF(childobj);
        PyList_SetItem(heap, pos, childobj);   /* steals, decrefs old */
        pos = child;
    }
    PyList_SetItem(heap, pos, last);           /* steals last */
    return 0;
}

/* Earliest calendar cycle still holding a bucket; prunes stale heads.
 * Returns 0 with *has = 0 when the calendar is empty, -1 on error. */
static int
next_completion(CoreState *st, long long *value, int *has)
{
    PyObject *heap = st->heap;
    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *head = PyList_GET_ITEM(heap, 0);
        int contains = PyDict_Contains(st->completions, head);
        if (contains < 0)
            return -1;
        if (contains) {
            long long v = PyLong_AsLongLong(head);
            if (v == -1 && PyErr_Occurred())
                return -1;
            *value = v;
            *has = 1;
            return 0;
        }
        if (heap_pop_discard(heap) < 0)
            return -1;
    }
    *has = 0;
    *value = 0;
    return 0;
}

/* ------------------------------------------------------------ next_event */

/* flags: bit 0 = dispatch possible (frontend has work or redispatch /
 *                pending fetch queues are non-empty),
 *        bit 1 = ROB full,
 *        bit 2 = machine drained except for the calendar (redispatch and
 *                fetch queues empty, frontend exhausted, ROB empty).
 * Returns (target << 1) | idle_sampled. */
static PyObject *
k_next_event(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "next_event(state, t, flags)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    long long t = PyLong_AsLongLong(args[1]);
    long long flags = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;

    long long next_t = t + 1;
    long long helper_bound = -1;
    for (Py_ssize_t i = 1; i < st->n_clusters; i++) {
        PyObject *ready = PyList_GET_ITEM(st->ready_list, i);
        if (PyDict_GET_SIZE(ready) == 0)
            continue;
        long long period = st->periods[i];
        if (period == 1)
            return PyLong_FromLongLong(next_t << 1);
        long long remainder = next_t % period;
        if (remainder == 0)
            return PyLong_FromLongLong(next_t << 1);
        long long nxt = next_t + (period - remainder);
        if (helper_bound < 0 || nxt < helper_bound)
            helper_bound = nxt;
    }

    Py_ssize_t calendar_n = PyDict_GET_SIZE(st->completions);
    PyObject *wide_ready = PyList_GET_ITEM(st->ready_list, 0);
    long long ratio = st->ratio;

    if (calendar_n > 0 && PyDict_GET_SIZE(wide_ready) == 0) {
        long long next_event;
        int has;
        if (next_completion(st, &next_event, &has) < 0)
            return NULL;
        /* has is guaranteed: a non-empty calendar keeps its keys heaped */
        if ((flags & 1) && !(flags & 2)) {
            long long remainder = next_t % ratio;
            long long next_wide = remainder == 0
                ? next_t : next_t + (ratio - remainder);
            if (next_wide < next_event)
                next_event = next_wide;
        }
        if (helper_bound >= 0 && helper_bound < next_event)
            next_event = helper_bound;
        if (next_event > next_t)
            return PyLong_FromLongLong(next_event << 1);
        return PyLong_FromLongLong(next_t << 1);
    }

    long long remainder = next_t % ratio;
    long long target = remainder == 0 ? next_t : next_t + (ratio - remainder);
    long long nc;
    int has;
    if (next_completion(st, &nc, &has) < 0)
        return NULL;
    if (has && nc < target)
        target = nc;
    if (helper_bound >= 0 && helper_bound < target)
        target = helper_bound;
    if (target > next_t && calendar_n == 0 && (flags & 4))
        return PyLong_FromLongLong(next_t << 1);
    return PyLong_FromLongLong((target << 1) | 1);
}

/* ----------------------------------------------------------- select_slots */

typedef struct {
    long long key;
    long long slot;
} ReadySlot;

static int
cmp_ready(const void *a, const void *b)
{
    long long ka = ((const ReadySlot *)a)->key;
    long long kb = ((const ReadySlot *)b)->key;
    return (ka > kb) - (ka < kb);
}

/* select_slots(state, cluster, budget, mem_budget) -> list of slot ints,
 * oldest first, identical to IssueQueue.select's choice (removal is the
 * caller's IssueQueue.take_slots). */
static PyObject *
k_select_slots(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "select_slots(state, cluster, budget, mem_budget)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    Py_ssize_t cluster = PyLong_AsSsize_t(args[1]);
    long long budget = PyLong_AsLongLong(args[2]);
    long long mem_budget = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;
    if (cluster < 0 || cluster >= st->n_clusters) {
        PyErr_SetString(PyExc_IndexError, "cluster index out of range");
        return NULL;
    }

    PyObject *ready = PyList_GET_ITEM(st->ready_list, cluster);
    Py_ssize_t n = PyDict_GET_SIZE(ready);
    if (n == 0 || budget <= 0)
        return PyList_New(0);

    Py_buffer age_view, mem_view;
    if (PyObject_GetBuffer(PyList_GET_ITEM(st->agekey_list, cluster),
                           &age_view, PyBUF_SIMPLE) < 0)
        return NULL;
    if (PyObject_GetBuffer(PyList_GET_ITEM(st->mem_list, cluster),
                           &mem_view, PyBUF_SIMPLE) < 0) {
        PyBuffer_Release(&age_view);
        return NULL;
    }
    const long long *agekey = (const long long *)age_view.buf;
    const long long *mem = (const long long *)mem_view.buf;

    PyObject *result = NULL;
    ReadySlot stack_slots[64];
    ReadySlot *slots = stack_slots;
    if (n > 64) {
        slots = (ReadySlot *)malloc(sizeof(ReadySlot) * (size_t)n);
        if (slots == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }

    Py_ssize_t pos = 0, count = 0;
    PyObject *key, *value;
    while (PyDict_Next(ready, &pos, &key, &value)) {
        long long slot = PyLong_AsLongLong(value);
        if (slot == -1 && PyErr_Occurred())
            goto done_free;
        slots[count].slot = slot;
        slots[count].key = agekey[slot];
        count += 1;
    }

    if (count == 1) {
        if (mem[slots[0].slot] && mem_budget <= 0) {
            result = PyList_New(0);
            goto done_free;
        }
    } else {
        qsort(slots, (size_t)count, sizeof(ReadySlot), cmp_ready);
    }

    result = PyList_New(0);
    if (result == NULL)
        goto done_free;
    long long taken = 0;
    for (Py_ssize_t i = 0; i < count; i++) {
        if (taken >= budget)
            break;
        long long slot = slots[i].slot;
        if (mem[slot]) {
            if (mem_budget <= 0)
                continue;
            mem_budget -= 1;
        }
        PyObject *slot_obj = PyLong_FromLongLong(slot);
        if (slot_obj == NULL || PyList_Append(result, slot_obj) < 0) {
            Py_XDECREF(slot_obj);
            Py_CLEAR(result);
            goto done_free;
        }
        Py_DECREF(slot_obj);
        taken += 1;
    }

done_free:
    if (slots != stack_slots)
        free(slots);
done:
    PyBuffer_Release(&age_view);
    PyBuffer_Release(&mem_view);
    return result;
}

/* -------------------------------------------------------- rob_commit_scan */

/* rob_commit_scan(state, head, count) -> number of contiguous completed
 * entries at the ROB ring's head, capped at the commit width. */
static PyObject *
k_rob_commit_scan(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "rob_commit_scan(state, head, count)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    long long head = PyLong_AsLongLong(args[1]);
    long long count = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;

    long long limit = count < st->commit_width ? count : st->commit_width;
    if (limit <= 0)
        return PyLong_FromLong(0);

    Py_buffer view;
    if (PyObject_GetBuffer(st->rob_state, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    const long long *state = (const long long *)view.buf;
    long long size = st->rob_size;
    long long retirable = 0;
    while (retirable < limit && (state[(head + retirable) % size] & 1))
        retirable += 1;
    PyBuffer_Release(&view);
    return PyLong_FromLongLong(retirable);
}


/* ================================================================== */
/* Per-uop dispatch chain (bind_uops + wakeup_waiters + resolve_deps  */
/* + dispatch_uop / dispatch_batch).                                  */
/* ================================================================== */

/* DynTable flag bits and waiter-punt limits; the python constants in
 * repro.sim.hotstate are the source of truth (asserted by the lintkit
 * fingerprint tests whenever the hot state changes). */
#define DYN_F_SQUASHED 2
#define DYN_F_IN_ROB 8
#define ORDER_BITS 32
#define MAX_SOURCES 32

/* bind_uops(state, ...29 objects...) — extend an existing capsule with
 * the dispatch-chain bindings.  Idempotent per capsule: rebinding
 * replaces the previous references. */
static PyObject *
k_bind_uops(PyObject *self, PyObject *args)
{
    PyObject *capsule;
    PyObject *o[28];
    PyObject *qsizes_obj;

    if (!PyArg_ParseTuple(args,
                          "OOOOOOOOOOOOOOOOOOOOOOOOOOOOO",
                          &capsule,
                          &o[0], &o[1],                  /* dyn flags/domain */
                          &o[2], &o[3], &o[4],           /* pool nodes/ctrl  */
                          &o[5], &o[6],                  /* value head/tail  */
                          &o[7], &o[8], &o[9],           /* avail/order/cnt  */
                          &o[10], &o[11], &o[12],        /* pend/pre/copied  */
                          &o[13],                        /* engine stats     */
                          &o[14], &o[15], &o[16], &o[17],/* rob rings + ctrl */
                          &o[18], &o[19],                /* by_uid, payloads */
                          &o[20], &o[21], &o[22],        /* entries/rem/uids */
                          &o[23], &o[24], &o[25],        /* payl/free/qctrl  */
                          &o[26],                        /* hot stat lanes   */
                          &qsizes_obj))
        return NULL;

    CoreState *st = get_state(capsule);
    if (st == NULL)
        return NULL;

    Py_buffer qview;
    if (PyObject_GetBuffer(qsizes_obj, &qview, PyBUF_SIMPLE) < 0)
        return NULL;
    if ((Py_ssize_t)(qview.len / sizeof(long long)) < st->n_clusters) {
        PyBuffer_Release(&qview);
        PyErr_SetString(PyExc_ValueError, "qsizes shorter than cluster list");
        return NULL;
    }
    long long *qsizes =
        (long long *)malloc(sizeof(long long) * (size_t)st->n_clusters);
    if (qsizes == NULL) {
        PyBuffer_Release(&qview);
        return PyErr_NoMemory();
    }
    memcpy(qsizes, qview.buf, sizeof(long long) * (size_t)st->n_clusters);
    PyBuffer_Release(&qview);
    free(st->qsizes);
    st->qsizes = qsizes;

    PyObject **slots[] = {
        &st->dyn_flags, &st->dyn_domain,
        &st->node_dyn, &st->node_next, &st->pool_ctrl,
        &st->value_heads, &st->value_tails,
        &st->avail, &st->avail_order, &st->avail_counts,
        &st->pending, &st->prefetched, &st->copied,
        &st->engine_stats,
        &st->rob_uid, &st->rob_seq, &st->rob_dyn, &st->rob_ctrl,
        &st->rob_by_uid, &st->rob_payloads,
        &st->entries_list, &st->remaining_list, &st->uids_list,
        &st->payloads_list, &st->free_lists, &st->qctrl_list,
        &st->hot_stats,
    };
    for (size_t i = 0; i < sizeof(slots) / sizeof(slots[0]); i++) {
        Py_INCREF(o[i]);
        Py_XDECREF(*slots[i]);
        *slots[i] = o[i];
    }
    st->uops_bound = 1;
    Py_RETURN_NONE;
}

/* Buffer bundle for the dispatch-chain kernels.  Growable arrays are
 * (re)acquired per call — python-side in-place extension keeps object
 * identity but may move the storage. */
typedef struct {
    Py_buffer views[16];
    int n_views;
    long long *dyn_flags, *dyn_domain;
    long long *node_dyn, *node_next, *pool_ctrl, *vheads, *vtails;
    long long *avail, *order, *counts;
    signed char *pending, *pre, *copied;
    long long *estats;
    long long *rob_dyn;
    long long cap;          /* engine capacity in uids (len of counts)    */
    long long ncap;         /* waiter-pool node capacity                  */
    long long vlanes;       /* value head/tail lane count                 */
} ChainBufs;

static void
chain_release(ChainBufs *b)
{
    for (int i = 0; i < b->n_views; i++)
        PyBuffer_Release(&b->views[i]);
    b->n_views = 0;
}

static int
chain_grab(ChainBufs *b, PyObject *obj, void **out)
{
    if (PyObject_GetBuffer(obj, &b->views[b->n_views], PyBUF_SIMPLE) < 0)
        return -1;
    *out = b->views[b->n_views].buf;
    b->n_views += 1;
    return 0;
}

/* Acquire everything resolve/dispatch need.  Returns 0 or -1. */
static int
chain_acquire(CoreState *st, ChainBufs *b)
{
    b->n_views = 0;
    if (chain_grab(b, st->dyn_flags, (void **)&b->dyn_flags) < 0
        || chain_grab(b, st->dyn_domain, (void **)&b->dyn_domain) < 0
        || chain_grab(b, st->node_dyn, (void **)&b->node_dyn) < 0
        || chain_grab(b, st->node_next, (void **)&b->node_next) < 0
        || chain_grab(b, st->pool_ctrl, (void **)&b->pool_ctrl) < 0
        || chain_grab(b, st->value_heads, (void **)&b->vheads) < 0
        || chain_grab(b, st->value_tails, (void **)&b->vtails) < 0
        || chain_grab(b, st->avail, (void **)&b->avail) < 0
        || chain_grab(b, st->avail_order, (void **)&b->order) < 0
        || chain_grab(b, st->avail_counts, (void **)&b->counts) < 0
        || chain_grab(b, st->pending, (void **)&b->pending) < 0
        || chain_grab(b, st->prefetched, (void **)&b->pre) < 0
        || chain_grab(b, st->copied, (void **)&b->copied) < 0
        || chain_grab(b, st->engine_stats, (void **)&b->estats) < 0
        || chain_grab(b, st->rob_dyn, (void **)&b->rob_dyn) < 0) {
        chain_release(b);
        return -1;
    }
    b->cap = (long long)(b->views[9].len / sizeof(long long));
    b->ncap = (long long)(b->views[2].len / sizeof(long long));
    b->vlanes = (long long)(b->views[5].len / sizeof(long long));
    return 0;
}

/* The dependence-resolution scan (fallback: _resolve_dependences).
 *
 * Returns the outstanding-source count (>= 0) with the dyn appended to
 * every still-in-flight producer's waiter list, RESOLVE_PUNT when the
 * call must be redone in python (a demand copy is needed, or the waiter
 * pool / value lanes would have to grow), or RESOLVE_ERR.  Punting is
 * side-effect-free except for prefetch consumption, which the python
 * rescan cannot double-count (the lane bit is already cleared). */
#define RESOLVE_PUNT (-1)
#define RESOLVE_ERR (-2)

static long long
resolve_core(CoreState *st, ChainBufs *b, long long dyn_id,
             PyObject *producers, long long t, long long domain)
{
    PyObject *fast = PySequence_Fast(producers, "producers not a sequence");
    if (fast == NULL)
        return RESOLVE_ERR;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n == 0) {
        Py_DECREF(fast);
        return 0;
    }
    if (n > MAX_SOURCES) {
        Py_DECREF(fast);
        return RESOLVE_PUNT;
    }
    PyObject **items = PySequence_Fast_ITEMS(fast);
    long long D = (long long)st->n_clusters;

    /* Waiter appends must not grow anything: every producer uid needs an
     * indexable lane and the pool needs one free node per source. */
    long long max_uid = -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        long long uid = PyLong_AsLongLong(items[i]);
        if (uid == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return RESOLVE_ERR;
        }
        if (uid > max_uid)
            max_uid = uid;
    }
    if (max_uid * D + D > b->vlanes
        || b->ncap - b->pool_ctrl[1] < (long long)n) {
        Py_DECREF(fast);
        return RESOLVE_PUNT;
    }

    long long deps[MAX_SOURCES];
    Py_ssize_t ndeps = 0;
    long long outstanding = 0;

    for (Py_ssize_t i = 0; i < n; i++) {
        long long uid = PyLong_AsLongLong(items[i]);
        long long base, lane, avail_here;
        int known;
        if (uid < b->cap) {
            base = uid * D;
            lane = base + domain;
            known = b->counts[uid] > 0;
            avail_here = b->avail[lane];
        } else {
            base = lane = -1;
            known = 0;
            avail_here = -1;
        }
        if (avail_here >= 0 && avail_here <= t) {
            if (b->pre[lane]) {
                /* consumed prefetch: count it and keep the CP bit trained */
                b->estats[0] += 1;
                b->pre[lane] = 0;
                b->estats[1] -= 1;
                b->copied[uid] = 1;
            }
            continue;
        }
        PyObject *key = PyLong_FromLongLong(uid);
        if (key == NULL)
            goto err;
        PyObject *slotobj = PyDict_GetItemWithError(st->rob_by_uid, key);
        Py_DECREF(key);
        long long producer_domain = -1;
        if (slotobj != NULL) {
            long long rslot = PyLong_AsLongLong(slotobj);
            if (rslot == -1 && PyErr_Occurred())
                goto err;
            long long ds = b->rob_dyn[rslot];
            if (ds >= 0)
                producer_domain = b->dyn_domain[ds];
        } else if (PyErr_Occurred()) {
            goto err;
        }
        if (producer_domain < 0 && !known)
            continue;           /* retired before tracking / trace live-in */
        int copy_pending = lane >= 0 && b->pending[lane];
        if (copy_pending && b->pre[lane]) {
            b->estats[0] += 1;
            b->pre[lane] = 0;
            b->estats[1] -= 1;
            b->copied[uid] = 1;
        }
        if (avail_here < 0 && !copy_pending) {
            long long source_domain = producer_domain;
            if (source_domain < 0 || source_domain == domain) {
                source_domain = -1;
                if (known) {
                    long long best_order = -1;
                    for (long long d = 0; d < D; d++) {
                        if (d != domain && b->avail[base + d] >= 0) {
                            long long o = b->order[base + d];
                            if (best_order < 0 || o < best_order) {
                                best_order = o;
                                source_domain = d;
                            }
                        }
                    }
                }
            }
            if (source_domain >= 0 && source_domain != domain) {
                /* demand copy needed: punt before any waiter append */
                Py_DECREF(fast);
                return RESOLVE_PUNT;
            }
        }
        deps[ndeps++] = uid;
        outstanding += 1;
    }
    Py_DECREF(fast);

    /* FIFO tail-appends, one pre-reserved free node per dependence. */
    for (Py_ssize_t j = 0; j < ndeps; j++) {
        long long node = b->pool_ctrl[0];
        b->pool_ctrl[0] = b->node_next[node];
        b->node_dyn[node] = dyn_id;
        b->node_next[node] = -1;
        b->pool_ctrl[1] += 1;
        long long lane = deps[j] * D + domain;
        long long tail = b->vtails[lane];
        if (tail < 0)
            b->vheads[lane] = node;
        else
            b->node_next[tail] = node;
        b->vtails[lane] = node;
    }
    return outstanding;

err:
    Py_DECREF(fast);
    return RESOLVE_ERR;
}

/* resolve_deps(state, dyn_id, producers, t) -> outstanding | None.
 * None = punt: the caller must rerun the python fallback. */
static PyObject *
k_resolve_deps(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "resolve_deps(state, dyn_id, producers, t)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    if (!st->uops_bound) {
        PyErr_SetString(PyExc_RuntimeError, "bind_uops() not called");
        return NULL;
    }
    long long dyn_id = PyLong_AsLongLong(args[1]);
    long long t = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;

    ChainBufs bufs;
    if (chain_acquire(st, &bufs) < 0)
        return NULL;
    long long domain = bufs.dyn_domain[dyn_id];
    long long r = resolve_core(st, &bufs, dyn_id, args[2], t, domain);
    chain_release(&bufs);
    if (r == RESOLVE_ERR)
        return NULL;
    if (r == RESOLVE_PUNT)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(r);
}

/* wakeup_waiters(state, value_uid, domain) -> None.
 * Walk (and free) the (value_uid, domain) waiter list, decrementing each
 * non-squashed waiter's remaining-source count on its scheduler columns
 * and marking ready at zero (fallback: _wake_python). */
static PyObject *
k_wakeup_waiters(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "wakeup_waiters(state, value_uid, domain)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    if (!st->uops_bound) {
        PyErr_SetString(PyExc_RuntimeError, "bind_uops() not called");
        return NULL;
    }
    long long uid = PyLong_AsLongLong(args[1]);
    long long domain = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;
    if (uid < 0)
        Py_RETURN_NONE;

    long long D = (long long)st->n_clusters;
    Py_buffer views[7];
    int nv = 0;
    long long *vheads, *vtails, *node_dyn, *node_next, *pool_ctrl;
    long long *flags, *domcol;
    PyObject *result = NULL;

#define GRAB(obj, ptr)                                                   \
    do {                                                                 \
        if (PyObject_GetBuffer((obj), &views[nv], PyBUF_SIMPLE) < 0)     \
            goto done;                                                   \
        (ptr) = (long long *)views[nv].buf;                              \
        nv += 1;                                                         \
    } while (0)

    GRAB(st->value_heads, vheads);
    GRAB(st->value_tails, vtails);
    GRAB(st->node_dyn, node_dyn);
    GRAB(st->node_next, node_next);
    GRAB(st->pool_ctrl, pool_ctrl);
    GRAB(st->dyn_flags, flags);
    GRAB(st->dyn_domain, domcol);
#undef GRAB

    {
        long long lane = uid * D + domain;
        if (lane >= (long long)(views[0].len / sizeof(long long))) {
            result = Py_None;
            Py_INCREF(result);
            goto done;
        }
        long long node = vheads[lane];
        if (node < 0) {
            result = Py_None;
            Py_INCREF(result);
            goto done;
        }
        vheads[lane] = -1;
        vtails[lane] = -1;
        while (node >= 0) {
            long long nxt = node_next[node];
            long long d = node_dyn[node];
            node_next[node] = pool_ctrl[0];
            node_dyn[node] = -1;
            pool_ctrl[0] = node;
            pool_ctrl[1] -= 1;
            node = nxt;
            if (flags[d] & DYN_F_SQUASHED)
                continue;
            long long cluster = domcol[d];
            PyObject *entries = PyList_GET_ITEM(st->entries_list, cluster);
            PyObject *key = PyLong_FromLongLong(d);
            if (key == NULL)
                goto done;
            PyObject *slotobj = PyDict_GetItemWithError(entries, key);
            if (slotobj == NULL) {
                Py_DECREF(key);
                if (PyErr_Occurred())
                    goto done;
                continue;       /* already issued (e.g. forced re-insert) */
            }
            long long slot = PyLong_AsLongLong(slotobj);
            if (slot == -1 && PyErr_Occurred()) {
                Py_DECREF(key);
                goto done;
            }
            /* remaining column: re-acquired per wake (it can grow) */
            Py_buffer rview;
            if (PyObject_GetBuffer(
                    PyList_GET_ITEM(st->remaining_list, cluster),
                    &rview, PyBUF_SIMPLE) < 0) {
                Py_DECREF(key);
                goto done;
            }
            long long *remaining = (long long *)rview.buf;
            long long rem = remaining[slot] - 1;
            if (rem <= 0) {
                rem = 0;
                PyObject *ready = PyList_GET_ITEM(st->ready_list, cluster);
                if (PyDict_SetItem(ready, key, slotobj) < 0) {
                    PyBuffer_Release(&rview);
                    Py_DECREF(key);
                    goto done;
                }
            }
            remaining[slot] = rem;
            PyBuffer_Release(&rview);
            Py_DECREF(key);
        }
        result = Py_None;
        Py_INCREF(result);
    }

done:
    for (int i = 0; i < nv; i++)
        PyBuffer_Release(&views[i]);
    return result;
}

/* The per-uop dispatch tail (fallback: _dispatch_tail_python): resolve
 * dependences, allocate the ROB ring slot, insert into the scheduler
 * columns, bump the stat lanes.  Returns 1 = dispatched, 0 = punt
 * (commits nothing; caller reruns the python fallback), -1 = error. */
static int
dispatch_one(CoreState *st, ChainBufs *b, PyObject *dyn, long long dyn_id,
             long long uop_uid, long long seq, long long cluster,
             int is_memory, long long unit_kind, PyObject *producers,
             long long t, int allocate_rob, int force)
{
    if (cluster < 0 || cluster >= st->n_clusters) {
        PyErr_SetString(PyExc_IndexError, "cluster index out of range");
        return -1;
    }
    PyObject *entries = PyList_GET_ITEM(st->entries_list, cluster);
    PyObject *free_list = PyList_GET_ITEM(st->free_lists, cluster);
    if (!force && PyDict_GET_SIZE(entries) >= st->qsizes[cluster])
        return 0;               /* full: python raises the contract error */
    if (PyList_GET_SIZE(free_list) == 0)
        return 0;               /* physical growth needed: python grows   */

    PyObject *dyn_key = PyLong_FromLongLong(dyn_id);
    if (dyn_key == NULL)
        return -1;
    int dup = PyDict_Contains(entries, dyn_key);
    if (dup != 0) {
        Py_DECREF(dyn_key);
        return dup < 0 ? -1 : 0;    /* duplicate uid: python raises */
    }

    Py_buffer rob_views[4];
    int n_rob_views = 0;
    long long *rob_ctrl = NULL, *rob_uid = NULL, *rob_seqc = NULL,
              *rob_dync = NULL;
    long long head = 0, count = 0;
    if (allocate_rob) {
#define RGRAB(obj, ptr)                                                    \
        do {                                                               \
            if (PyObject_GetBuffer((obj), &rob_views[n_rob_views],         \
                                   PyBUF_SIMPLE) < 0) {                    \
                Py_DECREF(dyn_key);                                        \
                for (int i = 0; i < n_rob_views; i++)                      \
                    PyBuffer_Release(&rob_views[i]);                       \
                return -1;                                                 \
            }                                                              \
            (ptr) = (long long *)rob_views[n_rob_views].buf;               \
            n_rob_views += 1;                                              \
        } while (0)
        RGRAB(st->rob_ctrl, rob_ctrl);
        RGRAB(st->rob_uid, rob_uid);
        RGRAB(st->rob_seq, rob_seqc);
        RGRAB(st->rob_dyn, rob_dync);
#undef RGRAB
        head = rob_ctrl[0];
        count = rob_ctrl[1];
        if (count >= st->rob_size
            || (count
                && seq <= rob_seqc[(head + count - 1) % st->rob_size])) {
            /* capacity / program-order violation: python raises */
            Py_DECREF(dyn_key);
            for (int i = 0; i < n_rob_views; i++)
                PyBuffer_Release(&rob_views[i]);
            return 0;
        }
    }

    long long domain = b->dyn_domain[dyn_id];
    long long outstanding = resolve_core(st, b, dyn_id, producers, t, domain);
    if (outstanding < 0) {
        Py_DECREF(dyn_key);
        for (int i = 0; i < n_rob_views; i++)
            PyBuffer_Release(&rob_views[i]);
        return outstanding == RESOLVE_PUNT ? 0 : -1;
    }

    /* Point of no return: every write below is unconditional in the
     * fallback once resolve succeeds. */
    int rc = -1;
    Py_buffer hview;
    long long *hstats = NULL;
    if (PyObject_GetBuffer(st->hot_stats, &hview, PyBUF_SIMPLE) < 0)
        goto out;
    hstats = (long long *)hview.buf;

    if (allocate_rob) {
        long long slot = (head + count) % st->rob_size;
        rob_uid[slot] = uop_uid;
        rob_seqc[slot] = seq;
        rob_dync[slot] = dyn_id;
        /* state ring: shared with the commit-scan kernel binding */
        Py_buffer sview;
        if (PyObject_GetBuffer(st->rob_state, &sview, PyBUF_SIMPLE) < 0)
            goto out_h;
        ((long long *)sview.buf)[slot] = 0;
        PyBuffer_Release(&sview);
        Py_INCREF(dyn);
        if (PyList_SetItem(st->rob_payloads, slot, dyn) < 0)
            goto out_h;
        PyObject *uid_key = PyLong_FromLongLong(uop_uid);
        PyObject *slot_obj = PyLong_FromLongLong(slot);
        if (uid_key == NULL || slot_obj == NULL
            || PyDict_SetItem(st->rob_by_uid, uid_key, slot_obj) < 0) {
            Py_XDECREF(uid_key);
            Py_XDECREF(slot_obj);
            goto out_h;
        }
        Py_DECREF(uid_key);
        Py_DECREF(slot_obj);
        rob_ctrl[1] = count + 1;
        b->dyn_flags[dyn_id] |= DYN_F_IN_ROB;
        hstats[6 * st->n_clusters] += 1;              /* rob_ops lane */
    }

    /* Scheduler column insert (fallback: IssueQueue.insert_uop). */
    {
        Py_ssize_t nfree = PyList_GET_SIZE(free_list);
        PyObject *slot_obj = PyList_GET_ITEM(free_list, nfree - 1);
        long long qslot = PyLong_AsLongLong(slot_obj);
        if (qslot == -1 && PyErr_Occurred())
            goto out_h;
        Py_INCREF(slot_obj);
        if (PyList_SetSlice(free_list, nfree - 1, nfree, NULL) < 0) {
            Py_DECREF(slot_obj);
            goto out_h;
        }
        Py_buffer qviews[5];
        int nq = 0;
        long long *agekey = NULL, *remaining = NULL, *mem = NULL,
                  *uids = NULL, *qctrl = NULL;
#define QGRAB(obj, ptr)                                                    \
        do {                                                               \
            if (PyObject_GetBuffer((obj), &qviews[nq], PyBUF_SIMPLE) < 0) {\
                Py_DECREF(slot_obj);                                       \
                for (int i = 0; i < nq; i++)                               \
                    PyBuffer_Release(&qviews[i]);                          \
                goto out_h;                                                \
            }                                                              \
            (ptr) = (long long *)qviews[nq].buf;                           \
            nq += 1;                                                       \
        } while (0)
        QGRAB(PyList_GET_ITEM(st->agekey_list, cluster), agekey);
        QGRAB(PyList_GET_ITEM(st->remaining_list, cluster), remaining);
        QGRAB(PyList_GET_ITEM(st->mem_list, cluster), mem);
        QGRAB(PyList_GET_ITEM(st->uids_list, cluster), uids);
        QGRAB(PyList_GET_ITEM(st->qctrl_list, cluster), qctrl);
#undef QGRAB
        long long order = qctrl[0];
        qctrl[0] = order + 1;
        agekey[qslot] = (seq << ORDER_BITS) | order;
        remaining[qslot] = outstanding;
        mem[qslot] = is_memory ? 1 : 0;
        uids[qslot] = dyn_id;
        for (int i = 0; i < nq; i++)
            PyBuffer_Release(&qviews[i]);
        PyObject *qpayloads = PyList_GET_ITEM(st->payloads_list, cluster);
        Py_INCREF(dyn);
        if (PyList_SetItem(qpayloads, qslot, dyn) < 0) {
            Py_DECREF(slot_obj);
            goto out_h;
        }
        if (PyDict_SetItem(entries, dyn_key, slot_obj) < 0) {
            Py_DECREF(slot_obj);
            goto out_h;
        }
        if (outstanding == 0) {
            PyObject *ready = PyList_GET_ITEM(st->ready_list, cluster);
            if (PyDict_SetItem(ready, dyn_key, slot_obj) < 0) {
                Py_DECREF(slot_obj);
                goto out_h;
            }
        }
        Py_DECREF(slot_obj);
    }

    /* Dispatch accounting (fallback: stats + _account_dispatch). */
    {
        long long base = cluster * 6;
        hstats[base] += 1;          /* scheduler op           */
        hstats[base + 1] += 3;      /* regfile accesses       */
        if (unit_kind >= 0 && unit_kind <= 2)
            hstats[base + 2 + unit_kind] += 1;
        hstats[base + 5] += 1;      /* dispatched             */
    }
    rc = 1;

out_h:
    PyBuffer_Release(&hview);
out:
    Py_DECREF(dyn_key);
    for (int i = 0; i < n_rob_views; i++)
        PyBuffer_Release(&rob_views[i]);
    return rc;
}

/* dispatch_uop(state, dyn, dyn_id, uop_uid, seq, cluster, is_memory,
 *              unit_kind, producers, t, allocate_rob, force) -> 1 | 0 */
static PyObject *
k_dispatch_uop(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 12) {
        PyErr_SetString(PyExc_TypeError,
                        "dispatch_uop(state, dyn, dyn_id, uop_uid, seq, "
                        "cluster, is_memory, unit_kind, producers, t, "
                        "allocate_rob, force)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    if (!st->uops_bound) {
        PyErr_SetString(PyExc_RuntimeError, "bind_uops() not called");
        return NULL;
    }
    long long dyn_id = PyLong_AsLongLong(args[2]);
    long long uop_uid = PyLong_AsLongLong(args[3]);
    long long seq = PyLong_AsLongLong(args[4]);
    long long cluster = PyLong_AsLongLong(args[5]);
    int is_memory = PyObject_IsTrue(args[6]);
    long long unit_kind = PyLong_AsLongLong(args[7]);
    long long t = PyLong_AsLongLong(args[9]);
    int allocate_rob = PyObject_IsTrue(args[10]);
    int force = PyObject_IsTrue(args[11]);
    if (PyErr_Occurred() || is_memory < 0 || allocate_rob < 0 || force < 0)
        return NULL;

    ChainBufs bufs;
    if (chain_acquire(st, &bufs) < 0)
        return NULL;
    int rc = dispatch_one(st, &bufs, args[1], dyn_id, uop_uid, seq, cluster,
                          is_memory, unit_kind, args[8], t, allocate_rob,
                          force);
    chain_release(&bufs);
    if (rc < 0)
        return NULL;
    return PyLong_FromLong(rc);
}

/* dispatch_batch(state, items, t) -> number of items fully dispatched.
 *
 * ``items`` is a recovery re-dispatch burst: a list of
 * (dyn, dyn_id, uop_uid, seq, cluster, is_memory, unit_kind, producers)
 * tuples, already steered and forced (allocate_rob is false for the
 * whole burst — the squashed uops keep their original ROB entries).
 * Stops at the first punt; the caller finishes that uop (and anything
 * after it) through the python fallback. */
static PyObject *
k_dispatch_batch(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "dispatch_batch(state, items, t)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    if (!st->uops_bound) {
        PyErr_SetString(PyExc_RuntimeError, "bind_uops() not called");
        return NULL;
    }
    if (!PyList_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError, "items must be a list of tuples");
        return NULL;
    }
    long long t = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;

    Py_ssize_t n = PyList_GET_SIZE(args[1]);
    Py_ssize_t done = 0;
    for (; done < n; done++) {
        PyObject *item = PyList_GET_ITEM(args[1], done);
        if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 8) {
            PyErr_SetString(PyExc_TypeError,
                            "item must be (dyn, dyn_id, uop_uid, seq, "
                            "cluster, is_memory, unit_kind, producers)");
            return NULL;
        }
        long long dyn_id = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 1));
        long long uop_uid = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 2));
        long long seq = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 3));
        long long cluster = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 4));
        int is_memory = PyObject_IsTrue(PyTuple_GET_ITEM(item, 5));
        long long unit_kind = PyLong_AsLongLong(PyTuple_GET_ITEM(item, 6));
        if (PyErr_Occurred() || is_memory < 0)
            return NULL;
        /* Buffers are (re)acquired per uop: a punt boundary hands
         * control back to python, which may grow the columns. */
        ChainBufs bufs;
        if (chain_acquire(st, &bufs) < 0)
            return NULL;
        int rc = dispatch_one(st, &bufs, PyTuple_GET_ITEM(item, 0), dyn_id,
                              uop_uid, seq, cluster, is_memory, unit_kind,
                              PyTuple_GET_ITEM(item, 7), t,
                              /*allocate_rob=*/0, /*force=*/1);
        chain_release(&bufs);
        if (rc < 0)
            return NULL;
        if (rc == 0)
            break;
    }
    return PyLong_FromSsize_t(done);
}

/* ---------------------------------------------------------------- module */

static PyMethodDef corekernel_methods[] = {
    {"bind", k_bind, METH_VARARGS,
     "bind(completions, heap, ready_dicts, agekeys, mem_flags, periods, "
     "ratio, rob_state, rob_size, commit_width) -> state capsule"},
    {"next_event", (PyCFunction)k_next_event, METH_FASTCALL,
     "next_event(state, t, flags) -> (target << 1) | idle"},
    {"select_slots", (PyCFunction)k_select_slots, METH_FASTCALL,
     "select_slots(state, cluster, budget, mem_budget) -> [slot, ...]"},
    {"rob_commit_scan", (PyCFunction)k_rob_commit_scan, METH_FASTCALL,
     "rob_commit_scan(state, head, count) -> retirable entry count"},
    {"bind_uops", k_bind_uops, METH_VARARGS,
     "bind_uops(state, ...dispatch-chain columns...) -> None"},
    {"resolve_deps", (PyCFunction)k_resolve_deps, METH_FASTCALL,
     "resolve_deps(state, dyn_id, producers, t) -> outstanding | None"},
    {"wakeup_waiters", (PyCFunction)k_wakeup_waiters, METH_FASTCALL,
     "wakeup_waiters(state, value_uid, domain) -> None"},
    {"dispatch_uop", (PyCFunction)k_dispatch_uop, METH_FASTCALL,
     "dispatch_uop(state, dyn, dyn_id, uop_uid, seq, cluster, is_memory, "
     "unit_kind, producers, t, allocate_rob, force) -> 1 | 0"},
    {"dispatch_batch", (PyCFunction)k_dispatch_batch, METH_FASTCALL,
     "dispatch_batch(state, items, t) -> items dispatched before punt"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef corekernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._corekernel",
    "Compiled inner kernels of the event-wheel simulator (optional).",
    -1,
    corekernel_methods,
};

PyMODINIT_FUNC
PyInit__corekernel(void)
{
    return PyModule_Create(&corekernel_module);
}
