/* repro._corekernel — compiled inner kernels of the event-wheel simulator.
 *
 * Optional CPython extension implementing the innermost *pure decision*
 * kernels of repro.sim.simulator over the struct-of-arrays hot state
 * (see DESIGN.md, "Hot state & compiled core"):
 *
 *   - next_event:      the event wheel's next-eventful-cycle selection
 *                      (helper clock edges / completion calendar head /
 *                      wide dispatch-commit boundary);
 *   - select_slots:    oldest-first ready-scan issue selection under the
 *                      issue-width and DL0 memory-port budgets;
 *   - rob_commit_scan: contiguous-completed head scan of the ROB ring.
 *
 * The kernels mutate nothing except the completion heap's lazy pruning
 * (exactly what the python path does) — all state write-back stays in
 * python, which is how both backends remain bit-identical.  The bound
 * state (a capsule) holds references to long-lived python objects: the
 * calendar dict, the heap list, each cluster's ready dict and array('q')
 * columns.  Buffers of growable arrays are acquired per call, so queue
 * growth on recovery-forced inserts cannot leave dangling pointers.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdlib.h>

static const char CAPSULE_NAME[] = "repro._corekernel.state";

typedef struct {
    PyObject *completions;   /* dict: fast cycle -> bucket list            */
    PyObject *heap;          /* list of int, min-heap of calendar cycles   */
    PyObject *ready_list;    /* list of per-cluster ready dicts (uid->slot)*/
    PyObject *agekey_list;   /* list of per-cluster array('q') age keys    */
    PyObject *mem_list;      /* list of per-cluster array('q') mem flags   */
    PyObject *rob_state;     /* array('q'): ROB ring completion states     */
    long long *periods;      /* per-cluster period in fast cycles          */
    Py_ssize_t n_clusters;
    long long ratio;
    long long rob_size;
    long long commit_width;
} CoreState;

static void
state_destructor(PyObject *capsule)
{
    CoreState *st = (CoreState *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
    if (st == NULL)
        return;
    Py_XDECREF(st->completions);
    Py_XDECREF(st->heap);
    Py_XDECREF(st->ready_list);
    Py_XDECREF(st->agekey_list);
    Py_XDECREF(st->mem_list);
    Py_XDECREF(st->rob_state);
    free(st->periods);
    free(st);
}

static CoreState *
get_state(PyObject *capsule)
{
    return (CoreState *)PyCapsule_GetPointer(capsule, CAPSULE_NAME);
}

/* ------------------------------------------------------------------ bind */

static PyObject *
k_bind(PyObject *self, PyObject *args)
{
    PyObject *completions, *heap, *ready_list, *agekey_list, *mem_list;
    PyObject *periods_obj, *rob_state;
    long long ratio, rob_size, commit_width;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!OLOLL",
                          &PyDict_Type, &completions,
                          &PyList_Type, &heap,
                          &PyList_Type, &ready_list,
                          &PyList_Type, &agekey_list,
                          &PyList_Type, &mem_list,
                          &periods_obj, &ratio,
                          &rob_state, &rob_size, &commit_width))
        return NULL;

    Py_ssize_t n_clusters = PyList_GET_SIZE(ready_list);
    if (PyList_GET_SIZE(agekey_list) != n_clusters
        || PyList_GET_SIZE(mem_list) != n_clusters) {
        PyErr_SetString(PyExc_ValueError,
                        "per-cluster column lists disagree on length");
        return NULL;
    }

    Py_buffer pview;
    if (PyObject_GetBuffer(periods_obj, &pview, PyBUF_SIMPLE) < 0)
        return NULL;
    if ((Py_ssize_t)(pview.len / sizeof(long long)) < n_clusters) {
        PyBuffer_Release(&pview);
        PyErr_SetString(PyExc_ValueError, "periods shorter than cluster list");
        return NULL;
    }

    CoreState *st = (CoreState *)calloc(1, sizeof(CoreState));
    if (st == NULL) {
        PyBuffer_Release(&pview);
        return PyErr_NoMemory();
    }
    st->periods = (long long *)malloc(sizeof(long long) * (size_t)n_clusters);
    if (st->periods == NULL) {
        PyBuffer_Release(&pview);
        free(st);
        return PyErr_NoMemory();
    }
    memcpy(st->periods, pview.buf, sizeof(long long) * (size_t)n_clusters);
    PyBuffer_Release(&pview);

    Py_INCREF(completions); st->completions = completions;
    Py_INCREF(heap);        st->heap = heap;
    Py_INCREF(ready_list);  st->ready_list = ready_list;
    Py_INCREF(agekey_list); st->agekey_list = agekey_list;
    Py_INCREF(mem_list);    st->mem_list = mem_list;
    Py_INCREF(rob_state);   st->rob_state = rob_state;
    st->n_clusters = n_clusters;
    st->ratio = ratio;
    st->rob_size = rob_size;
    st->commit_width = commit_width;

    PyObject *capsule = PyCapsule_New(st, CAPSULE_NAME, state_destructor);
    if (capsule == NULL) {
        Py_DECREF(completions); Py_DECREF(heap); Py_DECREF(ready_list);
        Py_DECREF(agekey_list); Py_DECREF(mem_list); Py_DECREF(rob_state);
        free(st->periods);
        free(st);
        return NULL;
    }
    return capsule;
}

/* ------------------------------------------------- completion heap (lazy) */

/* Discard the heap's root, restoring the min-heap property.  Elements are
 * unique python ints; any valid min-heap over the same values is
 * indistinguishable from heapq's arrangement through the only operations
 * ever applied (min-peek here, heappush/heappop in python). */
static int
heap_pop_discard(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return -1;
    }
    n -= 1;
    if (n == 0) {
        Py_DECREF(last);
        return 0;
    }
    long long lastv = PyLong_AsLongLong(last);
    if (lastv == -1 && PyErr_Occurred()) {
        Py_DECREF(last);
        return -1;
    }
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        long long childv = PyLong_AsLongLong(PyList_GET_ITEM(heap, child));
        if (child + 1 < n) {
            long long rightv =
                PyLong_AsLongLong(PyList_GET_ITEM(heap, child + 1));
            if (rightv < childv) {
                childv = rightv;
                child += 1;
            }
        }
        if (lastv <= childv)
            break;
        PyObject *childobj = PyList_GET_ITEM(heap, child);
        Py_INCREF(childobj);
        PyList_SetItem(heap, pos, childobj);   /* steals, decrefs old */
        pos = child;
    }
    PyList_SetItem(heap, pos, last);           /* steals last */
    return 0;
}

/* Earliest calendar cycle still holding a bucket; prunes stale heads.
 * Returns 0 with *has = 0 when the calendar is empty, -1 on error. */
static int
next_completion(CoreState *st, long long *value, int *has)
{
    PyObject *heap = st->heap;
    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *head = PyList_GET_ITEM(heap, 0);
        int contains = PyDict_Contains(st->completions, head);
        if (contains < 0)
            return -1;
        if (contains) {
            long long v = PyLong_AsLongLong(head);
            if (v == -1 && PyErr_Occurred())
                return -1;
            *value = v;
            *has = 1;
            return 0;
        }
        if (heap_pop_discard(heap) < 0)
            return -1;
    }
    *has = 0;
    *value = 0;
    return 0;
}

/* ------------------------------------------------------------ next_event */

/* flags: bit 0 = dispatch possible (frontend has work or redispatch /
 *                pending fetch queues are non-empty),
 *        bit 1 = ROB full,
 *        bit 2 = machine drained except for the calendar (redispatch and
 *                fetch queues empty, frontend exhausted, ROB empty).
 * Returns (target << 1) | idle_sampled. */
static PyObject *
k_next_event(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "next_event(state, t, flags)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    long long t = PyLong_AsLongLong(args[1]);
    long long flags = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;

    long long next_t = t + 1;
    long long helper_bound = -1;
    for (Py_ssize_t i = 1; i < st->n_clusters; i++) {
        PyObject *ready = PyList_GET_ITEM(st->ready_list, i);
        if (PyDict_GET_SIZE(ready) == 0)
            continue;
        long long period = st->periods[i];
        if (period == 1)
            return PyLong_FromLongLong(next_t << 1);
        long long remainder = next_t % period;
        if (remainder == 0)
            return PyLong_FromLongLong(next_t << 1);
        long long nxt = next_t + (period - remainder);
        if (helper_bound < 0 || nxt < helper_bound)
            helper_bound = nxt;
    }

    Py_ssize_t calendar_n = PyDict_GET_SIZE(st->completions);
    PyObject *wide_ready = PyList_GET_ITEM(st->ready_list, 0);
    long long ratio = st->ratio;

    if (calendar_n > 0 && PyDict_GET_SIZE(wide_ready) == 0) {
        long long next_event;
        int has;
        if (next_completion(st, &next_event, &has) < 0)
            return NULL;
        /* has is guaranteed: a non-empty calendar keeps its keys heaped */
        if ((flags & 1) && !(flags & 2)) {
            long long remainder = next_t % ratio;
            long long next_wide = remainder == 0
                ? next_t : next_t + (ratio - remainder);
            if (next_wide < next_event)
                next_event = next_wide;
        }
        if (helper_bound >= 0 && helper_bound < next_event)
            next_event = helper_bound;
        if (next_event > next_t)
            return PyLong_FromLongLong(next_event << 1);
        return PyLong_FromLongLong(next_t << 1);
    }

    long long remainder = next_t % ratio;
    long long target = remainder == 0 ? next_t : next_t + (ratio - remainder);
    long long nc;
    int has;
    if (next_completion(st, &nc, &has) < 0)
        return NULL;
    if (has && nc < target)
        target = nc;
    if (helper_bound >= 0 && helper_bound < target)
        target = helper_bound;
    if (target > next_t && calendar_n == 0 && (flags & 4))
        return PyLong_FromLongLong(next_t << 1);
    return PyLong_FromLongLong((target << 1) | 1);
}

/* ----------------------------------------------------------- select_slots */

typedef struct {
    long long key;
    long long slot;
} ReadySlot;

static int
cmp_ready(const void *a, const void *b)
{
    long long ka = ((const ReadySlot *)a)->key;
    long long kb = ((const ReadySlot *)b)->key;
    return (ka > kb) - (ka < kb);
}

/* select_slots(state, cluster, budget, mem_budget) -> list of slot ints,
 * oldest first, identical to IssueQueue.select's choice (removal is the
 * caller's IssueQueue.take_slots). */
static PyObject *
k_select_slots(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "select_slots(state, cluster, budget, mem_budget)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    Py_ssize_t cluster = PyLong_AsSsize_t(args[1]);
    long long budget = PyLong_AsLongLong(args[2]);
    long long mem_budget = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;
    if (cluster < 0 || cluster >= st->n_clusters) {
        PyErr_SetString(PyExc_IndexError, "cluster index out of range");
        return NULL;
    }

    PyObject *ready = PyList_GET_ITEM(st->ready_list, cluster);
    Py_ssize_t n = PyDict_GET_SIZE(ready);
    if (n == 0 || budget <= 0)
        return PyList_New(0);

    Py_buffer age_view, mem_view;
    if (PyObject_GetBuffer(PyList_GET_ITEM(st->agekey_list, cluster),
                           &age_view, PyBUF_SIMPLE) < 0)
        return NULL;
    if (PyObject_GetBuffer(PyList_GET_ITEM(st->mem_list, cluster),
                           &mem_view, PyBUF_SIMPLE) < 0) {
        PyBuffer_Release(&age_view);
        return NULL;
    }
    const long long *agekey = (const long long *)age_view.buf;
    const long long *mem = (const long long *)mem_view.buf;

    PyObject *result = NULL;
    ReadySlot stack_slots[64];
    ReadySlot *slots = stack_slots;
    if (n > 64) {
        slots = (ReadySlot *)malloc(sizeof(ReadySlot) * (size_t)n);
        if (slots == NULL) {
            PyErr_NoMemory();
            goto done;
        }
    }

    Py_ssize_t pos = 0, count = 0;
    PyObject *key, *value;
    while (PyDict_Next(ready, &pos, &key, &value)) {
        long long slot = PyLong_AsLongLong(value);
        if (slot == -1 && PyErr_Occurred())
            goto done_free;
        slots[count].slot = slot;
        slots[count].key = agekey[slot];
        count += 1;
    }

    if (count == 1) {
        if (mem[slots[0].slot] && mem_budget <= 0) {
            result = PyList_New(0);
            goto done_free;
        }
    } else {
        qsort(slots, (size_t)count, sizeof(ReadySlot), cmp_ready);
    }

    result = PyList_New(0);
    if (result == NULL)
        goto done_free;
    long long taken = 0;
    for (Py_ssize_t i = 0; i < count; i++) {
        if (taken >= budget)
            break;
        long long slot = slots[i].slot;
        if (mem[slot]) {
            if (mem_budget <= 0)
                continue;
            mem_budget -= 1;
        }
        PyObject *slot_obj = PyLong_FromLongLong(slot);
        if (slot_obj == NULL || PyList_Append(result, slot_obj) < 0) {
            Py_XDECREF(slot_obj);
            Py_CLEAR(result);
            goto done_free;
        }
        Py_DECREF(slot_obj);
        taken += 1;
    }

done_free:
    if (slots != stack_slots)
        free(slots);
done:
    PyBuffer_Release(&age_view);
    PyBuffer_Release(&mem_view);
    return result;
}

/* -------------------------------------------------------- rob_commit_scan */

/* rob_commit_scan(state, head, count) -> number of contiguous completed
 * entries at the ROB ring's head, capped at the commit width. */
static PyObject *
k_rob_commit_scan(PyObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "rob_commit_scan(state, head, count)");
        return NULL;
    }
    CoreState *st = get_state(args[0]);
    if (st == NULL)
        return NULL;
    long long head = PyLong_AsLongLong(args[1]);
    long long count = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred())
        return NULL;

    long long limit = count < st->commit_width ? count : st->commit_width;
    if (limit <= 0)
        return PyLong_FromLong(0);

    Py_buffer view;
    if (PyObject_GetBuffer(st->rob_state, &view, PyBUF_SIMPLE) < 0)
        return NULL;
    const long long *state = (const long long *)view.buf;
    long long size = st->rob_size;
    long long retirable = 0;
    while (retirable < limit && (state[(head + retirable) % size] & 1))
        retirable += 1;
    PyBuffer_Release(&view);
    return PyLong_FromLongLong(retirable);
}

/* ---------------------------------------------------------------- module */

static PyMethodDef corekernel_methods[] = {
    {"bind", k_bind, METH_VARARGS,
     "bind(completions, heap, ready_dicts, agekeys, mem_flags, periods, "
     "ratio, rob_state, rob_size, commit_width) -> state capsule"},
    {"next_event", (PyCFunction)k_next_event, METH_FASTCALL,
     "next_event(state, t, flags) -> (target << 1) | idle"},
    {"select_slots", (PyCFunction)k_select_slots, METH_FASTCALL,
     "select_slots(state, cluster, budget, mem_budget) -> [slot, ...]"},
    {"rob_commit_scan", (PyCFunction)k_rob_commit_scan, METH_FASTCALL,
     "rob_commit_scan(state, head, count) -> retirable entry count"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef corekernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._corekernel",
    "Compiled inner kernels of the event-wheel simulator (optional).",
    -1,
    corekernel_methods,
};

PyMODINIT_FUNC
PyInit__corekernel(void)
{
    return PyModule_Create(&corekernel_module);
}
