"""The micro-operation record and a builder for constructing uop streams.

A :class:`MicroOp` is the unit the simulator fetches, renames, steers,
executes and commits.  Traces (:mod:`repro.trace`) are sequences of MicroOps
with *concrete* source and result values attached — the trace generator
functionally emulates the stream so that every uop's dataflow is consistent.
Width predictors in the core library are only allowed to observe values at
the architecturally correct time (writeback); the concrete values attached to
a uop are the oracle against which predictions are scored.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.isa.opcodes import OpClass, Opcode, OpcodeInfo, opcode_info
from repro.isa.registers import ArchReg
from repro.isa.values import NARROW_WIDTH, is_narrow, truncate


@dataclass
class MicroOp:
    """One micro-operation of the trace.

    Attributes
    ----------
    uid:
        Unique, monotonically increasing identifier within a trace.  Used to
        express producer/consumer relations and program order.
    pc:
        Program counter of the parent IA-32 instruction (width predictors are
        PC-indexed, §3.2).
    opcode:
        The uop opcode.
    srcs:
        Architectural source register names (0–3 of them).
    dest:
        Architectural destination register, or ``None``.
    imm:
        Immediate operand value, or ``None``.
    src_values / result_value / flags_value:
        Concrete values observed by the functional emulation; ``None`` until
        the trace generator fills them in.
    mem_addr / mem_size:
        Effective address and access size in bytes for memory uops.
    is_taken:
        For branches, whether the branch is taken.
    producer_uids:
        uid of the most recent producer of each source register (or ``None``
        for live-ins), parallel to ``srcs``.
    flags_producer_uid:
        uid of the most recent writer of FLAGS before this uop (relevant for
        conditional branches).
    synthetic:
        True for uops injected by the microarchitecture itself (copies, split
        chunks); these never appear in input traces.
    """

    uid: int
    pc: int
    opcode: Opcode
    srcs: Tuple[ArchReg, ...] = ()
    dest: Optional[ArchReg] = None
    imm: Optional[int] = None
    src_values: Tuple[int, ...] = ()
    result_value: Optional[int] = None
    flags_value: Optional[int] = None
    mem_addr: Optional[int] = None
    mem_size: int = 4
    is_taken: bool = False
    producer_uids: Tuple[Optional[int], ...] = ()
    flags_producer_uid: Optional[int] = None
    synthetic: bool = False

    # ------------------------------------------------------------------ info
    @property
    def info(self) -> OpcodeInfo:
        """Static opcode properties."""
        return opcode_info(self.opcode)

    @property
    def op_class(self) -> OpClass:
        return self.info.op_class

    @property
    def has_dest(self) -> bool:
        return self.dest is not None and self.info.has_dest

    @property
    def writes_flags(self) -> bool:
        return self.info.writes_flags

    @property
    def reads_flags(self) -> bool:
        return self.info.reads_flags

    @property
    def is_memory(self) -> bool:
        return self.info.is_memory

    @property
    def is_load(self) -> bool:
        return self.op_class == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op_class in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def is_cond_branch(self) -> bool:
        return self.op_class == OpClass.BRANCH

    @property
    def is_fp(self) -> bool:
        return self.op_class == OpClass.FP

    @property
    def is_copy(self) -> bool:
        return self.op_class == OpClass.COPY

    @property
    def latency(self) -> int:
        """Execution latency in wide-cluster cycles."""
        return self.info.latency

    # --------------------------------------------------------------- widths
    def src_is_narrow(self, index: int, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if the ``index``-th source value is narrow (oracle view)."""
        if index >= len(self.src_values):
            return True
        return is_narrow(self.src_values[index], narrow_width)

    def all_sources_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if every source value (and the immediate) is narrow."""
        for value in self.src_values:
            if not is_narrow(value, narrow_width):
                return False
        if self.imm is not None and not is_narrow(truncate(self.imm), narrow_width):
            return False
        return True

    def result_is_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if the result value is narrow (uops with no result count as narrow)."""
        if self.result_value is None:
            return True
        return is_narrow(self.result_value, narrow_width)

    def is_fully_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """The 8-8-8 oracle condition of §3.2: all sources and the result narrow."""
        return self.all_sources_narrow(narrow_width) and self.result_is_narrow(narrow_width)

    # --------------------------------------------------------------- helpers
    def with_values(
        self,
        src_values: Sequence[int],
        result_value: Optional[int],
        flags_value: Optional[int] = None,
    ) -> "MicroOp":
        """Return a copy with concrete values filled in."""
        return replace(
            self,
            src_values=tuple(truncate(v) for v in src_values),
            result_value=None if result_value is None else truncate(result_value),
            flags_value=flags_value,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srcs = ",".join(r.name for r in self.srcs)
        dest = self.dest.name if self.dest is not None else "-"
        return (
            f"MicroOp(uid={self.uid}, pc={self.pc:#x}, {self.opcode.name} "
            f"{dest} <- [{srcs}] imm={self.imm})"
        )


class UopBuilder:
    """Convenience factory producing MicroOps with sequential uids.

    The builder only fills in the *static* fields; concrete values and
    producer links are attached by the functional emulator in
    :mod:`repro.trace.synthetic` (or by hand in tests).
    """

    def __init__(self, start_uid: int = 0) -> None:
        self._counter = itertools.count(start_uid)

    def next_uid(self) -> int:
        return next(self._counter)

    def make(
        self,
        opcode: Opcode,
        *,
        pc: int = 0,
        srcs: Sequence[ArchReg] = (),
        dest: Optional[ArchReg] = None,
        imm: Optional[int] = None,
        mem_addr: Optional[int] = None,
        mem_size: int = 4,
        is_taken: bool = False,
        synthetic: bool = False,
    ) -> MicroOp:
        """Create a new MicroOp with the next uid."""
        info = opcode_info(opcode)
        if dest is None and info.has_dest and info.op_class not in (OpClass.NOP,):
            # Many call sites know the opcode produces a result; tolerate the
            # omission for opcodes that architecturally have no destination.
            pass
        return MicroOp(
            uid=self.next_uid(),
            pc=pc,
            opcode=Opcode(opcode),
            srcs=tuple(ArchReg(s) for s in srcs),
            dest=None if dest is None else ArchReg(dest),
            imm=None if imm is None else truncate(imm),
            mem_addr=None if mem_addr is None else truncate(mem_addr),
            mem_size=mem_size,
            is_taken=is_taken,
            synthetic=synthetic,
        )

    def alu(self, opcode: Opcode, dest: ArchReg, srcs: Sequence[ArchReg], *, pc: int = 0,
            imm: Optional[int] = None) -> MicroOp:
        """Shorthand for an ALU-class uop."""
        return self.make(opcode, pc=pc, srcs=srcs, dest=dest, imm=imm)

    def load(self, dest: ArchReg, base: ArchReg, offset: ArchReg, *, pc: int = 0,
             byte: bool = False, addr: Optional[int] = None) -> MicroOp:
        """Shorthand for a load uop (LOADB when ``byte`` is set)."""
        opcode = Opcode.LOADB if byte else Opcode.LOAD
        return self.make(opcode, pc=pc, srcs=(base, offset), dest=dest,
                         mem_addr=addr, mem_size=1 if byte else 4)

    def store(self, data: ArchReg, base: ArchReg, offset: ArchReg, *, pc: int = 0,
              byte: bool = False, addr: Optional[int] = None) -> MicroOp:
        """Shorthand for a store uop (STOREB when ``byte`` is set)."""
        opcode = Opcode.STOREB if byte else Opcode.STORE
        return self.make(opcode, pc=pc, srcs=(base, offset, data),
                         mem_addr=addr, mem_size=1 if byte else 4)

    def branch(self, *, pc: int = 0, conditional: bool = True, taken: bool = False) -> MicroOp:
        """Shorthand for a branch uop."""
        opcode = Opcode.BR_COND if conditional else Opcode.BR_UNCOND
        srcs: Tuple[ArchReg, ...] = (ArchReg.FLAGS,) if conditional else ()
        return self.make(opcode, pc=pc, srcs=srcs, is_taken=taken)
