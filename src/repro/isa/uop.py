"""The micro-operation record and a builder for constructing uop streams.

A :class:`MicroOp` is the unit the simulator fetches, renames, steers,
executes and commits.  Traces (:mod:`repro.trace`) are sequences of MicroOps
with *concrete* source and result values attached — the trace generator
functionally emulates the stream so that every uop's dataflow is consistent.
Width predictors in the core library are only allowed to observe values at
the architecturally correct time (writeback); the concrete values attached to
a uop are the oracle against which predictions are scored.
"""

from __future__ import annotations

import itertools
from functools import cached_property
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.isa.opcodes import OpClass, Opcode, OpcodeInfo, opcode_info
from repro.isa.registers import ArchReg
from repro.isa.values import NARROW_WIDTH, is_narrow, truncate, value_width


@dataclass
class MicroOp:
    """One micro-operation of the trace.

    Attributes
    ----------
    uid:
        Unique, monotonically increasing identifier within a trace.  Used to
        express producer/consumer relations and program order.
    pc:
        Program counter of the parent IA-32 instruction (width predictors are
        PC-indexed, §3.2).
    opcode:
        The uop opcode.
    srcs:
        Architectural source register names (0–3 of them).
    dest:
        Architectural destination register, or ``None``.
    imm:
        Immediate operand value, or ``None``.
    src_values / result_value / flags_value:
        Concrete values observed by the functional emulation; ``None`` until
        the trace generator fills them in.
    mem_addr / mem_size:
        Effective address and access size in bytes for memory uops.
    is_taken:
        For branches, whether the branch is taken.
    producer_uids:
        uid of the most recent producer of each source register (or ``None``
        for live-ins), parallel to ``srcs``.
    flags_producer_uid:
        uid of the most recent writer of FLAGS before this uop (relevant for
        conditional branches).
    synthetic:
        True for uops injected by the microarchitecture itself (copies, split
        chunks); these never appear in input traces.
    """

    uid: int
    pc: int
    opcode: Opcode
    srcs: Tuple[ArchReg, ...] = ()
    dest: Optional[ArchReg] = None
    imm: Optional[int] = None
    src_values: Tuple[int, ...] = ()
    result_value: Optional[int] = None
    flags_value: Optional[int] = None
    mem_addr: Optional[int] = None
    mem_size: int = 4
    is_taken: bool = False
    producer_uids: Tuple[Optional[int], ...] = ()
    flags_producer_uid: Optional[int] = None
    synthetic: bool = False

    # ------------------------------------------------------------------ info
    @cached_property
    def info(self) -> OpcodeInfo:
        """Static opcode properties."""
        return opcode_info(self.opcode)

    @cached_property
    def op_class(self) -> OpClass:
        return self.info.op_class

    @cached_property
    def has_dest(self) -> bool:
        return self.dest is not None and self.info.has_dest

    @cached_property
    def writes_flags(self) -> bool:
        return self.info.writes_flags

    @cached_property
    def reads_flags(self) -> bool:
        return self.info.reads_flags

    @cached_property
    def is_memory(self) -> bool:
        return self.info.is_memory

    @cached_property
    def is_load(self) -> bool:
        return self.op_class == OpClass.LOAD

    @cached_property
    def is_store(self) -> bool:
        return self.op_class == OpClass.STORE

    @cached_property
    def is_branch(self) -> bool:
        return self.op_class in (OpClass.BRANCH, OpClass.JUMP)

    @cached_property
    def is_cond_branch(self) -> bool:
        return self.op_class == OpClass.BRANCH

    @cached_property
    def is_fp(self) -> bool:
        return self.op_class == OpClass.FP

    @cached_property
    def is_copy(self) -> bool:
        return self.op_class == OpClass.COPY

    @cached_property
    def latency(self) -> int:
        """Execution latency in wide-cluster cycles."""
        return self.info.latency

    # --------------------------------------------------------------- widths
    def src_is_narrow(self, index: int, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if the ``index``-th source value is narrow (oracle view)."""
        if index >= len(self.src_values):
            return True
        return is_narrow(self.src_values[index], narrow_width)

    def all_sources_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if every source value (and the immediate) is narrow.

        Memoised per uop: traces are shared across the simulator runs of a
        policy sweep, so the oracle is computed once, not once per run.
        """
        memo = self.__dict__.get("_asn_memo")
        if memo is not None and memo[0] == narrow_width:
            return memo[1]
        result = True
        for value in self.src_values:
            if not is_narrow(value, narrow_width):
                result = False
                break
        if result and self.imm is not None and not is_narrow(
                truncate(self.imm), narrow_width):
            result = False
        self._asn_memo = (narrow_width, result)
        return result

    def result_is_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """True if the result value is narrow (uops with no result count as narrow)."""
        memo = self.__dict__.get("_rin_memo")
        if memo is not None and memo[0] == narrow_width:
            return memo[1]
        if self.result_value is None:
            result = True
        else:
            result = is_narrow(self.result_value, narrow_width)
        self._rin_memo = (narrow_width, result)
        return result

    def result_width_bits(self) -> int:
        """Two's-complement width of the result value in bits, memoised.

        Uops with no result count as 1 bit (they fit any datapath), matching
        :meth:`result_is_narrow`'s no-result convention.
        """
        bits = self.__dict__.get("_rwb_memo")
        if bits is None:
            bits = 1 if self.result_value is None else value_width(self.result_value)
            self._rwb_memo = bits
        return bits

    # ------------------------------------------------------- CR oracles (§3.5)
    def _cr_values(self) -> List[int]:
        values = list(self.src_values)
        if self.imm is not None:
            values.append(self.imm)
        return values

    def cr_carry_crosses(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """Carry out of the low byte when summing the two primary operands."""
        memo = self.__dict__.get("_crc_memo")
        if memo is not None and memo[0] == narrow_width:
            return memo[1]
        values = self._cr_values()
        mask = (1 << narrow_width) - 1
        result = (len(values) >= 2
                  and (values[0] & mask) + (values[1] & mask) > mask)
        self._crc_memo = (narrow_width, result)
        return result

    def cr_operated_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """Did this (potential CR) uop actually operate on the low byte only?

        Set when the instruction had the one-narrow/one-wide operand pattern
        and the carry did not propagate past the low byte.
        """
        memo = self.__dict__.get("_cron_memo")
        if memo is not None and memo[0] == narrow_width:
            return memo[1]
        values = self._cr_values()
        result = False
        if len(values) >= 2:
            wide_vals = [v for v in values if not is_narrow(v, narrow_width)]
            if len(wide_vals) == 1 and len(wide_vals) != len(values):
                result = not self.cr_carry_crosses(narrow_width)
        self._cron_memo = (narrow_width, result)
        return result

    def is_fully_narrow(self, narrow_width: int = NARROW_WIDTH) -> bool:
        """The 8-8-8 oracle condition of §3.2: all sources and the result narrow."""
        return self.all_sources_narrow(narrow_width) and self.result_is_narrow(narrow_width)

    # --------------------------------------------------------------- deps
    @cached_property
    def effective_producers(self) -> Tuple[int, ...]:
        """Producer uids this uop waits on, FLAGS producer included.

        The FLAGS producer joins the list only when the register sources do
        not already cover every source slot (matching dispatch's historical
        dependence-resolution rule).  ``None`` live-in entries are dropped.
        """
        producers = [uid for uid in self.producer_uids if uid is not None]
        if (self.reads_flags and self.flags_producer_uid is not None
                and len(self.producer_uids) < len(self.srcs)):
            producers.append(self.flags_producer_uid)
        return tuple(producers)

    # --------------------------------------------------------------- helpers
    def with_values(
        self,
        src_values: Sequence[int],
        result_value: Optional[int],
        flags_value: Optional[int] = None,
    ) -> "MicroOp":
        """Return a copy with concrete values filled in."""
        return replace(
            self,
            src_values=tuple(truncate(v) for v in src_values),
            result_value=None if result_value is None else truncate(result_value),
            flags_value=flags_value,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        srcs = ",".join(r.name for r in self.srcs)
        dest = self.dest.name if self.dest is not None else "-"
        return (
            f"MicroOp(uid={self.uid}, pc={self.pc:#x}, {self.opcode.name} "
            f"{dest} <- [{srcs}] imm={self.imm})"
        )


class UopBuilder:
    """Convenience factory producing MicroOps with sequential uids.

    The builder only fills in the *static* fields; concrete values and
    producer links are attached by the functional emulator in
    :mod:`repro.trace.synthetic` (or by hand in tests).
    """

    def __init__(self, start_uid: int = 0) -> None:
        self._counter = itertools.count(start_uid)

    def next_uid(self) -> int:
        return next(self._counter)

    def make(
        self,
        opcode: Opcode,
        *,
        pc: int = 0,
        srcs: Sequence[ArchReg] = (),
        dest: Optional[ArchReg] = None,
        imm: Optional[int] = None,
        mem_addr: Optional[int] = None,
        mem_size: int = 4,
        is_taken: bool = False,
        synthetic: bool = False,
    ) -> MicroOp:
        """Create a new MicroOp with the next uid."""
        info = opcode_info(opcode)
        if dest is None and info.has_dest and info.op_class not in (OpClass.NOP,):
            # Many call sites know the opcode produces a result; tolerate the
            # omission for opcodes that architecturally have no destination.
            pass
        return MicroOp(
            uid=self.next_uid(),
            pc=pc,
            opcode=Opcode(opcode),
            srcs=tuple(ArchReg(s) for s in srcs),
            dest=None if dest is None else ArchReg(dest),
            imm=None if imm is None else truncate(imm),
            mem_addr=None if mem_addr is None else truncate(mem_addr),
            mem_size=mem_size,
            is_taken=is_taken,
            synthetic=synthetic,
        )

    def alu(self, opcode: Opcode, dest: ArchReg, srcs: Sequence[ArchReg], *, pc: int = 0,
            imm: Optional[int] = None) -> MicroOp:
        """Shorthand for an ALU-class uop."""
        return self.make(opcode, pc=pc, srcs=srcs, dest=dest, imm=imm)

    def load(self, dest: ArchReg, base: ArchReg, offset: ArchReg, *, pc: int = 0,
             byte: bool = False, addr: Optional[int] = None) -> MicroOp:
        """Shorthand for a load uop (LOADB when ``byte`` is set)."""
        opcode = Opcode.LOADB if byte else Opcode.LOAD
        return self.make(opcode, pc=pc, srcs=(base, offset), dest=dest,
                         mem_addr=addr, mem_size=1 if byte else 4)

    def store(self, data: ArchReg, base: ArchReg, offset: ArchReg, *, pc: int = 0,
              byte: bool = False, addr: Optional[int] = None) -> MicroOp:
        """Shorthand for a store uop (STOREB when ``byte`` is set)."""
        opcode = Opcode.STOREB if byte else Opcode.STORE
        return self.make(opcode, pc=pc, srcs=(base, offset, data),
                         mem_addr=addr, mem_size=1 if byte else 4)

    def branch(self, *, pc: int = 0, conditional: bool = True, taken: bool = False) -> MicroOp:
        """Shorthand for a branch uop."""
        opcode = Opcode.BR_COND if conditional else Opcode.BR_UNCOND
        srcs: Tuple[ArchReg, ...] = (ArchReg.FLAGS,) if conditional else ()
        return self.make(opcode, pc=pc, srcs=srcs, is_taken=taken)
