"""IA-32-like micro-operation ISA substrate.

This subpackage models the internal instruction set that the helper-cluster
simulator operates on: 32-bit integer values and their data-width properties
(:mod:`repro.isa.values`), the architectural register set
(:mod:`repro.isa.registers`), the micro-op opcode vocabulary
(:mod:`repro.isa.opcodes`) and the :class:`~repro.isa.uop.MicroOp` record
itself.

The paper's steering policies are all *data-width aware*: they reason about
whether operands and results fit in 8 bits, whether a carry propagates past
bit 7 of an address computation, and whether a conditional branch depends on
a flag produced by a narrow instruction.  The primitives for all of those
decisions live here.
"""

from repro.isa.values import (
    MACHINE_WIDTH,
    NARROW_WIDTH,
    NARROW_MASK,
    WIDE_MASK,
    value_width,
    is_narrow,
    leading_zero_count,
    leading_one_count,
    detect_narrow,
    sign_extend,
    zero_extend,
    truncate,
    carry_propagates,
    split_bytes,
    join_bytes,
)
from repro.isa.registers import (
    ArchReg,
    FLAGS_REG,
    EIP_REG,
    GPR_REGS,
    NUM_ARCH_REGS,
    RegisterFile,
)
from repro.isa.opcodes import (
    Opcode,
    OpClass,
    FunctionalUnit,
    OPCODE_INFO,
    OpcodeInfo,
)
from repro.isa.uop import MicroOp, UopBuilder

__all__ = [
    "MACHINE_WIDTH",
    "NARROW_WIDTH",
    "NARROW_MASK",
    "WIDE_MASK",
    "value_width",
    "is_narrow",
    "leading_zero_count",
    "leading_one_count",
    "detect_narrow",
    "sign_extend",
    "zero_extend",
    "truncate",
    "carry_propagates",
    "split_bytes",
    "join_bytes",
    "ArchReg",
    "FLAGS_REG",
    "EIP_REG",
    "GPR_REGS",
    "NUM_ARCH_REGS",
    "RegisterFile",
    "Opcode",
    "OpClass",
    "FunctionalUnit",
    "OPCODE_INFO",
    "OpcodeInfo",
    "MicroOp",
    "UopBuilder",
]
