"""Micro-operation opcode vocabulary, functional-unit classes and semantics.

The vocabulary is the subset of the IA-32 internal uop set that the paper's
steering policies care about:

* integer ALU / logic / shift operations (candidates for the helper cluster),
* multiply / divide (excluded from the CR scheme, §3.5),
* address generation + load / store (the CR motivating example, Figure 10,
  and the LR load-replication scheme, §3.4),
* conditional / unconditional branches (the BR scheme, §3.3),
* floating point placeholder operations (only the wide backend has FPUs,
  §2.1),
* the inter-cluster ``COPY`` uop of the Canal/Parcerisa/González scheme, and
* the ``SPLIT`` chunk operations produced by the IR scheme (§3.7).

Each opcode carries its execution latency in *wide-cluster* cycles; the
clocking model (:mod:`repro.pipeline.clocking`) converts these to fast cycles
per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum, auto
from typing import Callable, Dict, Optional, Tuple

from repro.isa.registers import Flags
from repro.isa.values import MACHINE_WIDTH, to_signed, truncate


class OpClass(IntEnum):
    """Coarse instruction classes used by steering policies and statistics."""

    ALU = auto()          # simple integer arithmetic / logic / shifts / moves
    MUL = auto()          # integer multiply
    DIV = auto()          # integer divide
    AGU = auto()          # address generation
    LOAD = auto()         # memory load (includes its AGU add)
    STORE = auto()        # memory store (address + data)
    BRANCH = auto()       # conditional branch (reads FLAGS)
    JUMP = auto()         # unconditional branch / call / return
    FP = auto()           # floating point (wide cluster only)
    COPY = auto()         # inter-cluster copy uop
    NOP = auto()          # no operation / fence


class FunctionalUnit(IntEnum):
    """Functional unit kinds present in a backend."""

    IALU = auto()
    IMUL = auto()
    IDIV = auto()
    AGU = auto()
    BRU = auto()
    FPU = auto()
    COPY = auto()


class Opcode(IntEnum):
    """Concrete uop opcodes."""

    # ALU
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SHL = 5
    SHR = 6
    SAR = 7
    MOV = 8
    MOVI = 9          # move immediate
    CMP = 10          # compare: subtract, write FLAGS only
    TEST = 11         # and, write FLAGS only
    INC = 12
    DEC = 13
    NEG = 14
    NOT = 15
    # multiply / divide
    MUL = 16
    IMUL = 17
    DIV = 18
    IDIV = 19
    # memory
    LEA = 20          # address generation without memory access
    LOAD = 21         # load 32-bit
    LOADB = 22        # load byte (zero-extended)
    STORE = 23
    STOREB = 24
    # control
    BR_COND = 25      # conditional branch on FLAGS
    BR_UNCOND = 26
    CALL = 27
    RET = 28
    # floating point placeholders
    FADD = 29
    FMUL = 30
    FDIV = 31
    FLOAD = 32
    FSTORE = 33
    # cluster-internal
    COPY = 34         # inter-cluster register copy
    SPLIT_ADD = 35    # 8-bit chunk of a split wide add (IR scheme)
    SPLIT_LOGIC = 36  # 8-bit chunk of a split wide logic op (IR scheme)
    NOP = 37


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode.

    Attributes
    ----------
    op_class:
        Coarse class used by steering and statistics.
    unit:
        Functional unit the uop issues to.
    latency:
        Execution latency in wide-cluster cycles (issue to result ready).
    writes_flags:
        Whether the uop writes the FLAGS register.
    reads_flags:
        Whether the uop reads the FLAGS register (conditional branches).
    has_dest:
        Whether the uop produces an integer register result.
    is_memory:
        Whether the uop accesses the data memory hierarchy.
    splittable:
        Whether the IR scheme may split this uop into narrow chunks (§3.7):
        only simple adds/subs and bitwise logic are chunk-decomposable.
    cr_eligible:
        Whether the CR scheme may consider this uop (multiply/divide are
        excluded because the carry signal cannot flag their mispredictions).
    """

    op_class: OpClass
    unit: FunctionalUnit
    latency: int
    writes_flags: bool = False
    reads_flags: bool = False
    has_dest: bool = True
    is_memory: bool = False
    splittable: bool = False
    cr_eligible: bool = False


OPCODE_INFO: Dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.SUB: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.AND: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.OR: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.XOR: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.SHL: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True),
    Opcode.SHR: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True),
    Opcode.SAR: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True),
    Opcode.MOV: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1),
    Opcode.MOVI: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1),
    Opcode.CMP: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, has_dest=False, splittable=True, cr_eligible=True),
    Opcode.TEST: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, has_dest=False, splittable=True),
    Opcode.INC: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.DEC: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True, splittable=True, cr_eligible=True),
    Opcode.NEG: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True),
    Opcode.NOT: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, splittable=True),
    Opcode.MUL: OpcodeInfo(OpClass.MUL, FunctionalUnit.IMUL, 4, writes_flags=True),
    Opcode.IMUL: OpcodeInfo(OpClass.MUL, FunctionalUnit.IMUL, 4, writes_flags=True),
    Opcode.DIV: OpcodeInfo(OpClass.DIV, FunctionalUnit.IDIV, 20, writes_flags=True),
    Opcode.IDIV: OpcodeInfo(OpClass.DIV, FunctionalUnit.IDIV, 20, writes_flags=True),
    Opcode.LEA: OpcodeInfo(OpClass.AGU, FunctionalUnit.AGU, 1, cr_eligible=True),
    Opcode.LOAD: OpcodeInfo(OpClass.LOAD, FunctionalUnit.AGU, 1, is_memory=True, cr_eligible=True),
    Opcode.LOADB: OpcodeInfo(OpClass.LOAD, FunctionalUnit.AGU, 1, is_memory=True, cr_eligible=True),
    Opcode.STORE: OpcodeInfo(OpClass.STORE, FunctionalUnit.AGU, 1, has_dest=False, is_memory=True, splittable=True, cr_eligible=True),
    Opcode.STOREB: OpcodeInfo(OpClass.STORE, FunctionalUnit.AGU, 1, has_dest=False, is_memory=True, splittable=True, cr_eligible=True),
    Opcode.BR_COND: OpcodeInfo(OpClass.BRANCH, FunctionalUnit.BRU, 1, reads_flags=True, has_dest=False),
    Opcode.BR_UNCOND: OpcodeInfo(OpClass.JUMP, FunctionalUnit.BRU, 1, has_dest=False),
    Opcode.CALL: OpcodeInfo(OpClass.JUMP, FunctionalUnit.BRU, 1, has_dest=False),
    Opcode.RET: OpcodeInfo(OpClass.JUMP, FunctionalUnit.BRU, 1, has_dest=False),
    Opcode.FADD: OpcodeInfo(OpClass.FP, FunctionalUnit.FPU, 4),
    Opcode.FMUL: OpcodeInfo(OpClass.FP, FunctionalUnit.FPU, 6),
    Opcode.FDIV: OpcodeInfo(OpClass.FP, FunctionalUnit.FPU, 20),
    Opcode.FLOAD: OpcodeInfo(OpClass.FP, FunctionalUnit.FPU, 1, is_memory=True),
    Opcode.FSTORE: OpcodeInfo(OpClass.FP, FunctionalUnit.FPU, 1, has_dest=False, is_memory=True),
    Opcode.COPY: OpcodeInfo(OpClass.COPY, FunctionalUnit.COPY, 1),
    Opcode.SPLIT_ADD: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1, writes_flags=True),
    Opcode.SPLIT_LOGIC: OpcodeInfo(OpClass.ALU, FunctionalUnit.IALU, 1),
    Opcode.NOP: OpcodeInfo(OpClass.NOP, FunctionalUnit.IALU, 1, has_dest=False),
}


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Look up the static :class:`OpcodeInfo` for an opcode.

    This is on the simulator's per-uop hot path, so the common case (an
    actual :class:`Opcode` member) is a single dict probe; raw values are
    coerced through the enum only on a miss.
    """
    info = OPCODE_INFO.get(opcode)
    if info is None:
        info = OPCODE_INFO[Opcode(opcode)]
    return info


# ---------------------------------------------------------------------------
# Functional semantics
# ---------------------------------------------------------------------------

def _flags_for_result(result: int, carry: bool = False, overflow: bool = False) -> int:
    result = truncate(result)
    zf = result == 0
    sf = bool(result & (1 << (MACHINE_WIDTH - 1)))
    return Flags.pack(carry, zf, sf, overflow)


def _exec_add(a: int, b: int) -> Tuple[int, int]:
    total = truncate(a) + truncate(b)
    result = truncate(total)
    carry = total > truncate(total)
    overflow = ((a ^ result) & (b ^ result)) >> (MACHINE_WIDTH - 1) & 1 == 1
    return result, _flags_for_result(result, carry, overflow)


def _exec_sub(a: int, b: int) -> Tuple[int, int]:
    result = truncate(truncate(a) - truncate(b))
    carry = truncate(a) < truncate(b)  # borrow
    overflow = ((a ^ b) & (a ^ result)) >> (MACHINE_WIDTH - 1) & 1 == 1
    return result, _flags_for_result(result, carry, overflow)


def _exec_logic(fn: Callable[[int, int], int]) -> Callable[[int, int], Tuple[int, int]]:
    def run(a: int, b: int) -> Tuple[int, int]:
        result = truncate(fn(truncate(a), truncate(b)))
        return result, _flags_for_result(result)

    return run


def _exec_shift(fn: Callable[[int, int], int]) -> Callable[[int, int], Tuple[int, int]]:
    def run(a: int, b: int) -> Tuple[int, int]:
        shamt = truncate(b) & 0x1F
        result = truncate(fn(truncate(a), shamt))
        return result, _flags_for_result(result)

    return run


def _exec_sar(a: int, b: int) -> Tuple[int, int]:
    shamt = truncate(b) & 0x1F
    result = truncate(to_signed(a) >> shamt)
    return result, _flags_for_result(result)


def _exec_mul(a: int, b: int) -> Tuple[int, int]:
    result = truncate(truncate(a) * truncate(b))
    return result, _flags_for_result(result)


def _exec_div(a: int, b: int) -> Tuple[int, int]:
    divisor = truncate(b)
    if divisor == 0:
        # Architectural divide-by-zero would fault; the trace generator never
        # emits it, but be total for robustness.
        return 0, _flags_for_result(0)
    result = truncate(truncate(a) // divisor)
    return result, _flags_for_result(result)


#: Semantics table: opcode -> callable(src_a, src_b) -> (result, flags_value).
#: Opcodes with no integer computation (branches, stores, FP, NOP) are absent.
SEMANTICS: Dict[Opcode, Callable[[int, int], Tuple[int, int]]] = {
    Opcode.ADD: _exec_add,
    Opcode.SUB: _exec_sub,
    Opcode.AND: _exec_logic(lambda a, b: a & b),
    Opcode.OR: _exec_logic(lambda a, b: a | b),
    Opcode.XOR: _exec_logic(lambda a, b: a ^ b),
    Opcode.SHL: _exec_shift(lambda a, s: a << s),
    Opcode.SHR: _exec_shift(lambda a, s: a >> s),
    Opcode.SAR: _exec_sar,
    Opcode.MOV: _exec_logic(lambda a, b: a),
    Opcode.MOVI: _exec_logic(lambda a, b: b),
    Opcode.CMP: _exec_sub,
    Opcode.TEST: _exec_logic(lambda a, b: a & b),
    Opcode.INC: lambda a, b: _exec_add(a, 1),
    Opcode.DEC: lambda a, b: _exec_sub(a, 1),
    Opcode.NEG: lambda a, b: _exec_sub(0, a),
    Opcode.NOT: _exec_logic(lambda a, b: ~a),
    Opcode.MUL: _exec_mul,
    Opcode.IMUL: _exec_mul,
    Opcode.DIV: _exec_div,
    Opcode.IDIV: _exec_div,
    Opcode.LEA: _exec_add,
    Opcode.SPLIT_ADD: _exec_add,
    Opcode.SPLIT_LOGIC: _exec_logic(lambda a, b: a & b),
    Opcode.COPY: _exec_logic(lambda a, b: a),
}


def execute(opcode: Opcode, src_a: int, src_b: int = 0) -> Tuple[int, int]:
    """Execute an opcode's integer semantics.

    Returns ``(result, flags_value)``.  Opcodes with no integer semantics
    return ``(0, 0)``.
    """
    fn = SEMANTICS.get(Opcode(opcode))
    if fn is None:
        return 0, 0
    return fn(src_a, src_b)
