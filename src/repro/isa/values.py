"""32-bit value and data-width utilities.

The helper cluster operates on *narrow* values: values representable in the
narrow datapath width (8 bits in the paper's design point, §2.1).  Narrowness
is detected in hardware with consecutive-zero / consecutive-one detectors over
the upper bits (Figure 3 of the paper); a value is narrow if its upper 24 bits
are either all zero (small unsigned / positive value) or all one (small
negative value in two's complement).

All values in the simulator are canonical unsigned 32-bit integers
(``0 <= v < 2**32``).  Signedness is a matter of interpretation at the point
of use, exactly as in hardware.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

#: Full machine width in bits (the wide cluster's datapath).
MACHINE_WIDTH: int = 32

#: Narrow (helper cluster) datapath width in bits.
NARROW_WIDTH: int = 8

#: Mask selecting the low ``NARROW_WIDTH`` bits.
NARROW_MASK: int = (1 << NARROW_WIDTH) - 1

#: Mask selecting the full machine word.
WIDE_MASK: int = (1 << MACHINE_WIDTH) - 1

_UPPER_MASK: int = WIDE_MASK ^ NARROW_MASK


def truncate(value: int, width: int = MACHINE_WIDTH) -> int:
    """Truncate ``value`` to an unsigned integer of ``width`` bits."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return value & ((1 << width) - 1)


def zero_extend(value: int, from_width: int) -> int:
    """Zero-extend a ``from_width``-bit value to the full machine width."""
    return truncate(value, from_width)


def sign_extend(value: int, from_width: int, to_width: int = MACHINE_WIDTH) -> int:
    """Sign-extend a ``from_width``-bit value to ``to_width`` bits (unsigned repr)."""
    if from_width <= 0 or to_width < from_width:
        raise ValueError(f"invalid widths from={from_width} to={to_width}")
    value = truncate(value, from_width)
    sign_bit = 1 << (from_width - 1)
    if value & sign_bit:
        value |= ((1 << to_width) - 1) ^ ((1 << from_width) - 1)
    return truncate(value, to_width)


def to_signed(value: int, width: int = MACHINE_WIDTH) -> int:
    """Interpret an unsigned ``width``-bit value as a signed integer."""
    value = truncate(value, width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def leading_zero_count(value: int, width: int = MACHINE_WIDTH) -> int:
    """Number of consecutive zero bits starting from the most significant bit.

    This models the consecutive-zero detector of Figure 3(a).
    """
    value = truncate(value, width)
    if value == 0:
        return width
    return width - value.bit_length()


def leading_one_count(value: int, width: int = MACHINE_WIDTH) -> int:
    """Number of consecutive one bits starting from the most significant bit.

    This models the consecutive-one detector of Figure 3(b), used to detect
    small negative two's complement values.
    """
    value = truncate(value, width)
    return leading_zero_count(value ^ ((1 << width) - 1), width)


def value_width(value: int, width: int = MACHINE_WIDTH) -> int:
    """Minimum number of bits needed to represent ``value`` in two's complement.

    A value whose upper bits are a sign-extension of bit ``k-1`` has width
    ``k``.  ``value_width(0) == 1`` and ``value_width(0xFFFFFFFF) == 1``
    (it is -1, representable in a single bit of two's complement plus sign
    replication), matching the hardware leading-zero/one detector view.
    """
    value = truncate(value, width)
    lz = leading_zero_count(value, width)
    lo = leading_one_count(value, width)
    redundant = max(lz, lo)
    return max(1, width - redundant)


def is_narrow(value: int, narrow_width: int = NARROW_WIDTH, width: int = MACHINE_WIDTH) -> bool:
    """True if ``value`` is representable in the narrow datapath.

    A value is narrow when its upper ``width - narrow_width`` bits are all
    zero or all one, i.e. it is a zero- or sign-extension of its low
    ``narrow_width`` bits.  This is exactly what the consecutive zero/one
    detectors of §2.1 report.
    """
    upper_bits = width - narrow_width
    if upper_bits <= 0:
        return True
    # Upper bits all zero (zero-extension) or all one (sign-extension):
    # equivalent to the leading zero/one detector counts reaching
    # ``upper_bits``, computed branch-free on the hot path.
    upper = (value & ((1 << width) - 1)) >> narrow_width
    return upper == 0 or upper == (1 << upper_bits) - 1


def detect_narrow(values: Iterable[int], narrow_width: int = NARROW_WIDTH) -> List[bool]:
    """Vector form of :func:`is_narrow` for a sequence of values."""
    return [is_narrow(v, narrow_width) for v in values]


def carry_propagates(a: int, b: int, narrow_width: int = NARROW_WIDTH) -> bool:
    """True if adding ``a + b`` produces a carry out of the low ``narrow_width`` bits.

    The CR scheme (§3.5) steers an (8-bit, 32-bit) -> 32-bit addition to the
    helper cluster when the carry does *not* propagate beyond the low 8 bits,
    because then the upper 24 bits of the result are identical to the upper 24
    bits of the wide source and need not be recomputed.
    """
    mask = (1 << narrow_width) - 1
    return ((a & mask) + (b & mask)) > mask


def upper_bits_unchanged(wide_src: int, result: int, narrow_width: int = NARROW_WIDTH) -> bool:
    """True if ``result`` and ``wide_src`` agree on all bits above ``narrow_width``.

    This is the §3.2(2)/§3.5 condition under which an operation with one wide
    source is "effectively narrow": executing only the low byte in the helper
    cluster reconstructs the full result by reusing the wide source's upper
    bits.
    """
    upper_mask = ((1 << MACHINE_WIDTH) - 1) ^ ((1 << narrow_width) - 1)
    return (truncate(wide_src) & upper_mask) == (truncate(result) & upper_mask)


def split_bytes(value: int, num_chunks: int = 4, chunk_width: int = NARROW_WIDTH) -> List[int]:
    """Split a wide value into ``num_chunks`` chunks of ``chunk_width`` bits, LSB first.

    Used by the IR instruction-splitting scheme (§3.7): a 32-bit operation is
    decomposed into four chained 8-bit operations from least to most
    significant byte.
    """
    value = truncate(value, num_chunks * chunk_width)
    mask = (1 << chunk_width) - 1
    return [(value >> (i * chunk_width)) & mask for i in range(num_chunks)]


def join_bytes(chunks: Sequence[int], chunk_width: int = NARROW_WIDTH) -> int:
    """Inverse of :func:`split_bytes`: reassemble chunks (LSB first) into one value."""
    value = 0
    for i, chunk in enumerate(chunks):
        value |= (chunk & ((1 << chunk_width) - 1)) << (i * chunk_width)
    return truncate(value, len(chunks) * chunk_width)


def add_with_carry(a: int, b: int, carry_in: int = 0, width: int = MACHINE_WIDTH) -> tuple[int, int]:
    """Width-limited addition returning ``(result, carry_out)``."""
    total = truncate(a, width) + truncate(b, width) + (carry_in & 1)
    return truncate(total, width), int(total >> width)


def chunked_add(a: int, b: int, num_chunks: int = 4, chunk_width: int = NARROW_WIDTH) -> int:
    """Add two wide values chunk-by-chunk, propagating the carry through the chain.

    This mirrors how the IR scheme's four chained 8-bit split uops compute a
    32-bit addition on the narrow datapath; it must agree with a plain 32-bit
    add (verified by property tests).
    """
    a_chunks = split_bytes(a, num_chunks, chunk_width)
    b_chunks = split_bytes(b, num_chunks, chunk_width)
    carry = 0
    out_chunks: List[int] = []
    for ca, cb in zip(a_chunks, b_chunks):
        s, carry = add_with_carry(ca, cb, carry, chunk_width)
        out_chunks.append(s)
    return join_bytes(out_chunks, chunk_width)
