"""Architectural register set of the IA-32-like uop machine.

The internal machine state exposed to uops consists of the eight general
purpose registers, a handful of internal temporaries used by the uop
translator (IA-32 instructions can expand to several uops that communicate
through temporaries), the flags register (EFLAGS) and the instruction pointer
(EIP).  The paper's BR scheme (§3.3) relies on the fact that conditional
branches read the flags register and that the producer of the flags register
can be tracked; the CR scheme (§3.5) relies on the rename table, which maps
these architectural names to physical registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List

from repro.isa.values import MACHINE_WIDTH, truncate


class ArchReg(IntEnum):
    """Architectural register names.

    ``EAX``..``EDI`` are the IA-32 general purpose registers; ``TMP0``..``TMP3``
    are uop-level temporaries; ``FLAGS`` is EFLAGS (only the arithmetic flags
    matter to the simulator) and ``EIP`` the instruction pointer.
    """

    EAX = 0
    EBX = 1
    ECX = 2
    EDX = 3
    ESI = 4
    EDI = 5
    EBP = 6
    ESP = 7
    TMP0 = 8
    TMP1 = 9
    TMP2 = 10
    TMP3 = 11
    FLAGS = 12
    EIP = 13

    @property
    def is_gpr(self) -> bool:
        return self <= ArchReg.ESP

    @property
    def is_temp(self) -> bool:
        return ArchReg.TMP0 <= self <= ArchReg.TMP3

    @property
    def is_flags(self) -> bool:
        return self == ArchReg.FLAGS


#: The flags (EFLAGS) register name.
FLAGS_REG: ArchReg = ArchReg.FLAGS

#: The instruction pointer register name.
EIP_REG: ArchReg = ArchReg.EIP

#: All general-purpose registers.
GPR_REGS: List[ArchReg] = [r for r in ArchReg if r.is_gpr]

#: Registers a uop may legitimately name as integer sources/destinations.
DATA_REGS: List[ArchReg] = [r for r in ArchReg if r.is_gpr or r.is_temp]

#: Total number of architectural register names.
NUM_ARCH_REGS: int = len(ArchReg)


@dataclass
class RegisterFile:
    """A simple architectural register file holding 32-bit values.

    Used by the functional emulator inside the synthetic trace generator and
    by the simulator's architectural-state checker.  Values are stored as
    canonical unsigned 32-bit integers.
    """

    width: int = MACHINE_WIDTH
    _values: Dict[ArchReg, int] = field(default_factory=dict)

    def read(self, reg: ArchReg) -> int:
        """Read a register; unwritten registers read as zero."""
        return self._values.get(ArchReg(reg), 0)

    def write(self, reg: ArchReg, value: int) -> None:
        """Write a register, truncating to the register file's width."""
        self._values[ArchReg(reg)] = truncate(value, self.width)

    def snapshot(self) -> Dict[ArchReg, int]:
        """Return a copy of the current architectural state."""
        return dict(self._values)

    def restore(self, snapshot: Dict[ArchReg, int]) -> None:
        """Restore a previously captured snapshot."""
        self._values = dict(snapshot)

    def reset(self) -> None:
        """Clear all registers back to zero."""
        self._values.clear()

    def __iter__(self) -> Iterator[ArchReg]:
        return iter(ArchReg)

    def __len__(self) -> int:
        return NUM_ARCH_REGS


class Flags:
    """Bit positions of the arithmetic flags within the FLAGS register value."""

    CF = 1 << 0  # carry
    ZF = 1 << 1  # zero
    SF = 1 << 2  # sign
    OF = 1 << 3  # overflow

    @staticmethod
    def pack(cf: bool, zf: bool, sf: bool, of: bool) -> int:
        """Pack individual flag booleans into a FLAGS register value."""
        value = 0
        if cf:
            value |= Flags.CF
        if zf:
            value |= Flags.ZF
        if sf:
            value |= Flags.SF
        if of:
            value |= Flags.OF
        return value

    @staticmethod
    def unpack(value: int) -> Dict[str, bool]:
        """Unpack a FLAGS register value into named booleans."""
        return {
            "cf": bool(value & Flags.CF),
            "zf": bool(value & Flags.ZF),
            "sf": bool(value & Flags.SF),
            "of": bool(value & Flags.OF),
        }
