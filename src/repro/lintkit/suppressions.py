"""Inline suppression parsing: ``# lint: disable=RULE(reason)``.

A suppression lives on the same line as the finding it silences and
must carry a non-empty reason in parentheses — the engine keeps
reason-less disables visible (the finding survives, annotated) so every
suppression in the tree documents *why* the contract is waived. Multiple
rules may be disabled on one line, comma-separated:

    x = foo()  # lint: disable=REP001(seeded upstream),REP003(owner api)
"""

from __future__ import annotations

import re
from typing import Dict, List

#: the whole directive after "lint:" — e.g. "disable=REP001(reason), REP004"
_DIRECTIVE = re.compile(r"#\s*lint:\s*disable=(?P<body>.+)$")
#: one rule entry inside the directive body
_ENTRY = re.compile(r"(?P<code>[A-Z]+\d+)\s*(?:\((?P<reason>[^()]*)\))?")


def parse_line(line: str) -> Dict[str, str]:
    """Suppressions on one source line: ``{code: reason}``.

    A rule listed without a ``(reason)`` (or with an empty one) maps to
    ``""`` — the engine treats that as *not* suppressing, but reports it
    so authors learn the required form.
    """
    match = _DIRECTIVE.search(line)
    if not match:
        return {}
    out: Dict[str, str] = {}
    for entry in _ENTRY.finditer(match.group("body")):
        reason = entry.group("reason")
        out[entry.group("code")] = (reason or "").strip()
    return out


def suppression_map(lines: List[str]) -> Dict[int, Dict[str, str]]:
    """Per-line (1-indexed) suppression tables for a whole file."""
    out: Dict[int, Dict[str, str]] = {}
    for idx, line in enumerate(lines, start=1):
        if "lint:" not in line:
            continue
        entries = parse_line(line)
        if entries:
            out[idx] = entries
    return out
