"""The lintkit rule engine: findings, rule protocol, contexts, runner.

The engine is deliberately small: it walks the configured source roots,
parses each python file exactly once, hands the per-file AST to every
*file* rule and the whole-project view to every *project* rule, then folds
inline suppressions (see :mod:`repro.lintkit.suppressions`) into the
resulting findings.  Rules are plain objects satisfying :class:`LintRule`
— a ``code``/``name``/``description`` triple plus ``check_file`` /
``check_project`` hooks — so adding a repo contract is one module under
:mod:`repro.lintkit.rules` and one registry entry.

Nothing here imports the packages under analysis: all five shipped rules
work from source text and ASTs alone, so the linter can run on a tree that
does not import (and CI can lint before it builds anything).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.lintkit.config import LintConfig
from repro.lintkit.suppressions import suppression_map


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed would-be violation).

    ``path`` is always project-root-relative POSIX form, so reports are
    stable across machines and the JSON artifact diffs cleanly in CI.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    #: the reason string of the inline suppression that silenced this
    #: finding (``# lint: disable=RULE(reason)``), when suppressed
    suppression_reason: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }


class LintRule:
    """Base rule: subclasses override ``check_file`` and/or ``check_project``.

    ``code`` is the stable identifier used in reports and suppressions
    (``REP001``...); ``name`` is a short slug and ``description`` one line
    for ``lint --list-rules`` style output and the JSON report.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        """Per-file pass: called once per parsed python file in scope."""
        return ()

    def check_project(self, ctx: "ProjectContext") -> Iterable[Finding]:
        """Whole-project pass: called once after all files are collected."""
        return ()

    # ------------------------------------------------------------- helpers
    def finding(self, ctx_path: str, node_or_line, message: str,
                col: Optional[int] = None) -> Finding:
        """Build a finding anchored at an AST node or an explicit line."""
        if hasattr(node_or_line, "lineno"):
            line = node_or_line.lineno
            col_offset = getattr(node_or_line, "col_offset", 0)
        else:
            line = int(node_or_line)
            col_offset = 0
        return Finding(rule=self.code, path=ctx_path, line=line,
                       col=col if col is not None else col_offset,
                       message=message)


class FileContext:
    """One parsed python source file, root-relative."""

    def __init__(self, root: Path, relpath: str, source: str,
                 config: LintConfig) -> None:
        self.root = root
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.config = config
        self._tree: Optional[ast.Module] = None
        self.parse_error: Optional[SyntaxError] = None

    @property
    def tree(self) -> Optional[ast.Module]:
        if self._tree is None and self.parse_error is None:
            try:
                self._tree = ast.parse(self.source, filename=self.relpath)
            except SyntaxError as exc:
                self.parse_error = exc
        return self._tree

    def line_text(self, lineno: int) -> str:
        """1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class ProjectContext:
    """The whole-project view handed to project rules."""

    def __init__(self, root: Path, files: Dict[str, FileContext],
                 config: LintConfig) -> None:
        self.root = root
        self.files = files
        self.config = config

    def context_for(self, relpath: str) -> Optional[FileContext]:
        """The context of ``relpath``, loading it on demand if out of scope."""
        ctx = self.files.get(relpath)
        if ctx is not None:
            return ctx
        path = self.root / relpath
        try:
            source = path.read_text(encoding="utf-8")
        except OSError:
            return None
        ctx = FileContext(self.root, relpath, source, self.config)
        self.files[relpath] = ctx
        return ctx


@dataclass
class LintReport:
    """The outcome of one runner pass."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: List[LintRule] = field(default_factory=list)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.unsuppressed


def iter_python_files(root: Path, roots: Sequence[str]) -> Iterator[str]:
    """Root-relative POSIX paths of every ``.py`` file under ``roots``.

    Sorted for deterministic report order; ``__pycache__`` and hidden
    directories are skipped.
    """
    seen = []
    for rel_root in roots:
        base = root / rel_root
        if base.is_file() and base.suffix == ".py":
            seen.append(base.relative_to(root).as_posix())
            continue
        if not base.is_dir():
            continue
        for path in base.rglob("*.py"):
            parts = path.relative_to(root).parts
            if any(part == "__pycache__" or part.startswith(".")
                   for part in parts):
                continue
            seen.append(path.relative_to(root).as_posix())
    return iter(sorted(set(seen)))


class LintRunner:
    """Walk the tree, run every rule, apply suppressions."""

    def __init__(self, config: LintConfig,
                 rules: Sequence[LintRule]) -> None:
        self.config = config
        self.rules = list(rules)

    def run(self) -> LintReport:
        root = self.config.project_root
        files: Dict[str, FileContext] = {}
        report = LintReport(rules=self.rules)
        for relpath in iter_python_files(root, self.config.src_roots):
            try:
                source = (root / relpath).read_text(encoding="utf-8")
            except OSError:
                continue
            files[relpath] = FileContext(root, relpath, source, self.config)
        report.files_scanned = len(files)

        raw: List[Finding] = []
        for ctx in files.values():
            if ctx.tree is None:
                raw.append(Finding(
                    rule="REP000", path=ctx.relpath,
                    line=ctx.parse_error.lineno or 1, col=0,
                    message=f"syntax error: {ctx.parse_error.msg}"))
                continue
            for rule in self.rules:
                raw.extend(rule.check_file(ctx))
        project = ProjectContext(root, files, self.config)
        for rule in self.rules:
            raw.extend(rule.check_project(project))

        report.findings = self._apply_suppressions(raw, project)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report

    def _apply_suppressions(self, findings: List[Finding],
                            project: ProjectContext) -> List[Finding]:
        out: List[Finding] = []
        maps: Dict[str, dict] = {}
        for finding in findings:
            ctx = project.files.get(finding.path)
            if ctx is None:
                out.append(finding)
                continue
            per_line = maps.get(finding.path)
            if per_line is None:
                per_line = suppression_map(ctx.lines)
                maps[finding.path] = per_line
            entry = per_line.get(finding.line, {}).get(finding.rule)
            if entry is None:
                out.append(finding)
            elif not entry:
                # A reason string is mandatory: a bare disable does not
                # suppress (the contract stays reviewable), and the finding
                # says why it survived.
                out.append(replace(
                    finding,
                    message=finding.message + "  [suppression ignored: "
                    "missing reason — use # lint: disable="
                    f"{finding.rule}(reason)]"))
            else:
                out.append(replace(finding, suppressed=True,
                                   suppression_reason=entry))
        return out
