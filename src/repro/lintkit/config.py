"""Lint configuration: scopes, contract tables, and the default profile.

All rule parameters live here so tests can build narrow configs pointing
at fixture trees, while ``default_config()`` encodes the shipped repo
contracts:

* which packages form the simulator *semantic surface* (REP001),
* which dataclasses must have complete ``to_key_dict`` coverage and the
  documented exemption table (REP002 — kept in sync with the dynamic
  conformance suite in ``tests/test_key_contract.py``),
* the documented live-view aliases hot-path modules may read (REP003),
* which files carry ``# hot-path`` tags (REP004),
* the fingerprinted semantic-module set and where the blessed
  fingerprints live (REP005).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple


def project_root_default() -> Path:
    """The repo checkout root, derived from this package's location.

    ``src/repro/lintkit/config.py`` → parents[3] is the checkout root.
    """
    return Path(__file__).resolve().parents[3]


@dataclass
class LintConfig:
    """Everything the runner and rules need, fixture-overridable."""

    project_root: Path
    #: root-relative directories (or single files) to scan
    src_roots: List[str] = field(default_factory=lambda: ["src"])

    # REP001 — determinism scope: root-relative path prefixes forming the
    # simulator semantic surface.
    determinism_scopes: List[str] = field(default_factory=list)

    # REP002 — cache-key completeness: (relpath, classname) pairs that
    # must define to_key_dict, plus the documented exemption table
    # {classname: {field: reason}}.
    key_dict_classes: List[Tuple[str, str]] = field(default_factory=list)
    key_dict_exemptions: Dict[str, Dict[str, str]] = field(
        default_factory=dict)

    # REP003 — live-view contract: hot modules restricted to documented
    # aliases, and the alias table {classname: (relpath, [alias, ...])}
    # whose existence the project pass re-verifies.
    live_view_modules: List[str] = field(default_factory=list)
    live_view_aliases: Dict[str, Tuple[str, List[str]]] = field(
        default_factory=dict)

    # REP004 — hot-loop hygiene: files expected to carry `# hot-path`
    # function tags.
    hot_loop_files: List[str] = field(default_factory=list)

    # REP005 — version discipline: glob patterns (root-relative) naming
    # the fingerprinted semantic modules, the checked-in fingerprint
    # file, and where SIMULATOR_VERSION is assigned.
    semantic_module_globs: List[str] = field(default_factory=list)
    fingerprint_path: Optional[Path] = None
    version_source: Optional[Tuple[str, str]] = None  # (relpath, symbol)


def default_config(root: Optional[Path] = None) -> LintConfig:
    """The shipped contract tables for this repository."""
    root = Path(root) if root is not None else project_root_default()
    return LintConfig(
        project_root=root,
        src_roots=["src"],
        determinism_scopes=[
            "src/repro/sim",
            "src/repro/pipeline",
            "src/repro/core",
        ],
        key_dict_classes=[
            ("src/repro/core/config.py", "MachineConfig"),
            ("src/repro/core/config.py", "ClusterSpec"),
            ("src/repro/core/config.py", "Topology"),
            ("src/repro/core/steering.py", "PolicySpec"),
            ("src/repro/power/wattch.py", "PowerConfig"),
            ("src/repro/trace/profiles.py", "BenchmarkProfile"),
            ("src/repro/trace/profiles.py", "InstructionMix"),
        ],
        # Mirrors KEY_EXEMPT in tests/test_key_contract.py — a field may
        # be exempt only with a documented reason, and the dynamic
        # conformance suite must agree.
        key_dict_exemptions={
            "PolicySpec": {
                "in_ladder": "presentation flag: selects which registry "
                "policies the ladder CLI prints; never read by the "
                "simulator, deliberately outside the cache key",
            },
        },
        live_view_modules=[
            "src/repro/sim/simulator.py",
            "src/repro/sim/hotstate.py",
        ],
        live_view_aliases={
            "IssueQueue": ("src/repro/pipeline/scheduler.py",
                           ["entries", "ready_entries", "free_stack"]),
            # SoA value lanes (uid*num_domains+domain indexed) read directly
            # by the dependence-resolution fast path and the compiled
            # resolve_deps kernel.
            "CopyEngine": ("src/repro/core/copy_engine.py",
                           ["avail_lanes", "avail_order_lanes",
                            "avail_count_lanes", "pending_lanes",
                            "prefetched_lanes", "copied_lanes",
                            "stat_lanes"]),
            # Per-uop SoA columns of the dispatch chain; the compiled
            # kernels re-derive lane bounds from these buffers' lengths.
            "DynTable": ("src/repro/sim/hotstate.py",
                         ["seq", "domain", "flags", "value_uid", "pnarrow",
                          "kindcol", "opcode", "unit"]),
            "WaiterPool": ("src/repro/sim/hotstate.py",
                           ["node_dyn", "node_next", "value_heads",
                            "value_tails", "chunk_heads", "chunk_tails",
                            "ctrl"]),
            "ReorderBuffer": ("src/repro/pipeline/rob.py", ["by_uid"]),
            "RenameTable": ("src/repro/pipeline/rename.py", ["table"]),
            "ImbalanceMonitor": ("src/repro/core/imbalance.py",
                                 ["last_wide_occupancy",
                                  "last_narrow_occupancy"]),
        },
        hot_loop_files=[
            "src/repro/sim/simulator.py",
            "src/repro/sim/hotstate.py",
            "src/repro/pipeline/scheduler.py",
        ],
        semantic_module_globs=[
            "src/repro/sim/simulator.py",
            "src/repro/sim/hotstate.py",
            "src/repro/pipeline/*.py",
            "src/repro/core/*.py",
            "src/repro/isa/*.py",
            "src/repro/memory/*.py",
            "src/repro/power/energy.py",
            "src/repro/power/wattch.py",
            "src/repro/trace/synthetic.py",
            "src/repro/trace/slicing.py",
            "src/repro/trace/trace.py",
            "src/repro/trace/profiles.py",
            "src/repro/_corekernel.c",
        ],
        fingerprint_path=root / "src/repro/lintkit/fingerprints.json",
        version_source=("src/repro/sim/cache.py", "SIMULATOR_VERSION"),
    )
