"""repro.lintkit — AST-based static analysis for this repo's contracts.

The dynamic nets (golden pins, the fuzz harness, the key-contract
conformance suite) catch contract breaks after they run; lintkit catches
them at review time.  Five rules ship: REP001 determinism, REP002
cache-key completeness, REP003 live-view contract, REP004 hot-loop
hygiene, REP005 version discipline.  See DESIGN.md § "Static guarantees"
and ``repro.cli lint``.
"""

from repro.lintkit.config import LintConfig, default_config
from repro.lintkit.engine import (FileContext, Finding, LintReport,
                                  LintRule, LintRunner, ProjectContext)
from repro.lintkit.reporting import render_json, render_text, report_to_dict
from repro.lintkit.rules import ALL_RULES, build_rules
from repro.lintkit.rules.versioning import update_fingerprints

__all__ = [
    "LintConfig", "default_config",
    "Finding", "LintRule", "LintRunner", "LintReport",
    "FileContext", "ProjectContext",
    "render_text", "render_json", "report_to_dict",
    "ALL_RULES", "build_rules", "update_fingerprints",
]


def run_lint(config=None, codes=None):
    """Convenience entry: run the shipped rules, return the report."""
    if config is None:
        config = default_config()
    runner = LintRunner(config, build_rules(codes))
    return runner.run()
