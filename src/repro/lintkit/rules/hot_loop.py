"""REP004 — hot-loop hygiene: no per-uop allocation in tagged functions.

Functions on the per-uop path are tagged with a ``# hot-path`` comment on
(or immediately above) their ``def`` line in ``simulator.py`` /
``hotstate.py`` / ``scheduler.py``.  Inside a tagged body, the rule bans
the allocation patterns that dominated the PR 5/PR 7 profiles:

* comprehensions and generator expressions (each builds a fresh object
  per call, plus a frame for genexps),
* f-strings / ``str.format`` (string building per uop),
* ``+`` / ``+=`` where either operand is a list literal (list
  concatenation allocates the combined list).

Cold functions in the same files — recovery, error paths, reporting —
simply stay untagged.  To keep the tags honest, each configured file must
contain at least one ``# hot-path`` tag: deleting the tags to silence the
rule is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lintkit.engine import FileContext, Finding, LintRule

HOT_TAG = "# hot-path"


def _is_tagged(ctx: FileContext, func: ast.FunctionDef) -> bool:
    """Tag on the def line, a decorator line, or the line above them."""
    first = min([func.lineno]
                + [deco.lineno for deco in func.decorator_list])
    for lineno in range(max(1, first - 1), func.lineno + 1):
        if HOT_TAG in ctx.line_text(lineno):
            return True
    return False


class HotLoopHygieneRule(LintRule):
    code = "REP004"
    name = "hot-loop-hygiene"
    description = ("no per-uop allocation patterns (comprehensions, "
                   "f-strings, list +) inside functions tagged "
                   "# hot-path in the hot-loop files")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.relpath not in ctx.config.hot_loop_files:
            return ()
        tree = ctx.tree
        if tree is None:
            return ()
        findings: List[Finding] = []
        tagged = 0
        for node in ast.walk(tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if not _is_tagged(ctx, node):
                continue
            tagged += 1
            findings.extend(self._check_body(ctx, node))
        if tagged == 0:
            findings.append(self.finding(
                ctx.relpath, 1,
                "file is configured as hot-loop-tagged but contains no "
                "# hot-path function tags — tags must not be deleted to "
                "silence REP004"))
        return findings

    def _check_body(self, ctx: FileContext,
                    func: ast.FunctionDef) -> List[Finding]:
        findings: List[Finding] = []
        where = f"in # hot-path function {func.name}()"
        for node in ast.walk(func):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                findings.append(self.finding(
                    ctx.relpath, node,
                    f"comprehension allocates per call {where} — hoist "
                    "or rewrite as an explicit loop over preallocated "
                    "state"))
            elif isinstance(node, ast.GeneratorExp):
                findings.append(self.finding(
                    ctx.relpath, node,
                    f"generator expression allocates a frame per call "
                    f"{where}"))
            elif isinstance(node, ast.JoinedStr):
                findings.append(self.finding(
                    ctx.relpath, node,
                    f"f-string builds a string per call {where} — defer "
                    "formatting to cold reporting code"))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                if isinstance(node.left, ast.List) or isinstance(
                        node.right, ast.List):
                    findings.append(self.finding(
                        ctx.relpath, node,
                        f"list concatenation allocates {where} — append "
                        "into an existing list instead"))
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, ast.Add):
                if isinstance(node.value, ast.List):
                    findings.append(self.finding(
                        ctx.relpath, node,
                        f"+= list literal allocates {where} — use "
                        ".append()"))
            elif isinstance(node, ast.Call):
                func_node = node.func
                if (isinstance(func_node, ast.Attribute)
                        and func_node.attr == "format"
                        and isinstance(func_node.value, ast.Constant)
                        and isinstance(func_node.value.value, str)):
                    findings.append(self.finding(
                        ctx.relpath, node,
                        f"str.format() builds a string per call {where}"))
        return findings
