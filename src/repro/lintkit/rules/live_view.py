"""REP003 — live-view contract: hot paths read only documented aliases.

DESIGN.md's hot-path contract: the simulator reads cross-module state
through *public live-view aliases* (``IssueQueue.entries``,
``CopyEngine.availability_map``, ``ReorderBuffer.by_uid``, ...) that each
owning class publishes deliberately.  Reaching into another object's
underscore-private attributes from a hot module bypasses that contract —
it couples the simulator to representation details the owner is free to
change (and that the compiled backend does change).

Two passes:

* per-file (hot modules only): flag ``<expr>._name`` where the base is
  not ``self``/``cls`` and the attribute is single-underscore private
  (dunders are skipped — they are python protocol, not representation);
* per-project: re-verify every documented alias still exists on its
  owning class (assigned in the class body or in ``__init__``), so the
  alias table cannot silently rot.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lintkit.engine import (FileContext, Finding, LintRule,
                                  ProjectContext)


def _is_private(attr: str) -> bool:
    return (attr.startswith("_") and not attr.startswith("__")
            and not attr.endswith("__"))


class LiveViewContractRule(LintRule):
    code = "REP003"
    name = "live-view-contract"
    description = ("hot-path modules may read cross-module state only "
                   "via the documented public live-view aliases; the "
                   "aliases themselves must keep existing")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.relpath not in ctx.config.live_view_modules:
            return ()
        tree = ctx.tree
        if tree is None:
            return ()
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not _is_private(node.attr):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in {"self", "cls"}:
                continue
            findings.append(self.finding(
                ctx.relpath, node,
                f"access to private attribute ._{node.attr.lstrip('_')} "
                "of another object from a hot-path module — use a "
                "documented live-view alias (see DESIGN.md § Static "
                "guarantees)"))
        return findings

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for classname, (relpath, aliases) in sorted(
                ctx.config.live_view_aliases.items()):
            file_ctx = ctx.context_for(relpath)
            if file_ctx is None or file_ctx.tree is None:
                findings.append(self.finding(
                    relpath, 1,
                    f"live-view owner {classname} — file missing or "
                    "unparseable"))
                continue
            class_node = None
            for node in file_ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == classname:
                    class_node = node
                    break
            if class_node is None:
                findings.append(self.finding(
                    relpath, 1,
                    f"live-view owner class {classname} not found"))
                continue
            published = self._published_names(class_node)
            for alias in aliases:
                if alias not in published:
                    findings.append(self.finding(
                        relpath, class_node,
                        f"documented live-view alias {classname}.{alias} "
                        "is no longer published by the class"))
        return findings

    @staticmethod
    def _published_names(class_node: ast.ClassDef) -> Set[str]:
        """Names bound in the class body or on self in any method."""
        names: Set[str] = set()
        for stmt in class_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.FunctionDef):
                names.add(stmt.name)
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        targets = sub.targets if isinstance(
                            sub, ast.Assign) else [sub.target]
                        for target in targets:
                            if (isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"):
                                names.add(target.attr)
        return names
