"""Rule registry: the shipped battery of repo-contract rules."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.lintkit.engine import LintRule
from repro.lintkit.rules.determinism import DeterminismRule
from repro.lintkit.rules.cache_key import CacheKeyCompletenessRule
from repro.lintkit.rules.live_view import LiveViewContractRule
from repro.lintkit.rules.hot_loop import HotLoopHygieneRule
from repro.lintkit.rules.versioning import VersionDisciplineRule

ALL_RULES = (
    DeterminismRule,
    CacheKeyCompletenessRule,
    LiveViewContractRule,
    HotLoopHygieneRule,
    VersionDisciplineRule,
)


def build_rules(codes: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Instantiate the registered rules, optionally filtered by code."""
    rules: List[LintRule] = [cls() for cls in ALL_RULES]
    if codes is None:
        return rules
    wanted = {code.strip().upper() for code in codes if code.strip()}
    by_code: Dict[str, LintRule] = {rule.code: rule for rule in rules}
    unknown = wanted - set(by_code)
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(by_code))})")
    return [rule for rule in rules if rule.code in wanted]
