"""REP005 — version discipline: semantic edits require a version bump.

``SIMULATOR_VERSION`` (``src/repro/sim/cache.py``) is part of every
result-cache key: bumping it retires all cached results.  The discipline
is two-sided — *semantic* changes (anything that can move simulated
numbers) must bump it, while bit-identical refactors must NOT (the golden
pins prove identity and warm caches survive).

This rule makes the first side mechanical: a checked-in fingerprint file
records the SHA-256 of every module in the semantic set together with
the SIMULATOR_VERSION they were blessed under.  When fingerprints drift
while the version is unchanged, the author must either bump the version
(numbers moved) or re-bless with ``repro.cli lint --update-fingerprints``
after demonstrating bit-identity (golden-ladder + energy pins + fuzz
corpus green).  DESIGN.md § "Static guarantees" documents the workflow.

The version itself is read *statically* (AST of cache.py), so the rule
works without importing the tree under lint.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.lintkit.config import LintConfig
from repro.lintkit.engine import Finding, LintRule, ProjectContext

FINGERPRINT_FORMAT = 1


def semantic_files(config: LintConfig) -> List[str]:
    """Sorted root-relative paths matching the semantic-module globs."""
    root = config.project_root
    out = set()
    for pattern in config.semantic_module_globs:
        for path in root.glob(pattern):
            if path.is_file():
                out.add(path.relative_to(root).as_posix())
    return sorted(out)


def file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def read_simulator_version(config: LintConfig) -> Optional[str]:
    """Statically read SIMULATOR_VERSION from its source module."""
    if config.version_source is None:
        return None
    relpath, symbol = config.version_source
    path = config.project_root / relpath
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == symbol:
                    if isinstance(node.value, ast.Constant):
                        return str(node.value.value)
    return None


def current_state(config: LintConfig) -> Dict:
    return {
        "format": FINGERPRINT_FORMAT,
        "simulator_version": read_simulator_version(config),
        "files": {relpath: file_digest(config.project_root / relpath)
                  for relpath in semantic_files(config)},
    }


def load_fingerprints(config: LintConfig) -> Optional[Dict]:
    if config.fingerprint_path is None:
        return None
    try:
        return json.loads(config.fingerprint_path.read_text(
            encoding="utf-8"))
    except (OSError, ValueError):
        return None


def update_fingerprints(config: LintConfig) -> Path:
    """Bless the current tree: record digests under the current version."""
    if config.fingerprint_path is None:
        raise ValueError("no fingerprint path configured")
    state = current_state(config)
    config.fingerprint_path.write_text(
        json.dumps(state, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return config.fingerprint_path


class VersionDisciplineRule(LintRule):
    code = "REP005"
    name = "version-discipline"
    description = ("changes to the fingerprinted semantic modules "
                   "require a SIMULATOR_VERSION bump or an explicit "
                   "re-bless via lint --update-fingerprints")

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        config = ctx.config
        if config.fingerprint_path is None or config.version_source is None:
            return ()
        findings: List[Finding] = []
        version = read_simulator_version(config)
        version_rel, _symbol = config.version_source
        if version is None:
            findings.append(self.finding(
                version_rel, 1,
                "SIMULATOR_VERSION not found as a literal assignment — "
                "the cache-key version contract is unreadable"))
            return findings
        blessed = load_fingerprints(config)
        fingerprint_rel = config.fingerprint_path
        try:
            fingerprint_rel = fingerprint_rel.relative_to(
                config.project_root).as_posix()
        except ValueError:
            fingerprint_rel = str(fingerprint_rel)
        if blessed is None:
            findings.append(self.finding(
                fingerprint_rel, 1,
                "semantic-module fingerprint file missing or unreadable "
                "— run `repro.cli lint --update-fingerprints` to bless "
                "the current tree"))
            return findings
        blessed_version = blessed.get("simulator_version")
        blessed_files = blessed.get("files", {})
        current = current_state(config)
        changed = sorted(
            relpath for relpath in
            set(blessed_files) | set(current["files"])
            if blessed_files.get(relpath) != current["files"].get(relpath))
        if blessed_version != version:
            # The version moved: the fingerprints must be re-blessed in
            # the same change so the next drift is detected against the
            # new baseline.
            findings.append(self.finding(
                fingerprint_rel, 1,
                f"SIMULATOR_VERSION is {version!r} but fingerprints "
                f"were blessed under {blessed_version!r} — run "
                "`repro.cli lint --update-fingerprints`"))
            return findings
        for relpath in changed:
            state = ("added" if relpath not in blessed_files else
                     "removed" if relpath not in current["files"] else
                     "modified")
            findings.append(self.finding(
                relpath, 1,
                f"semantic module {state} without a SIMULATOR_VERSION "
                "bump — if simulated numbers can move, bump the version "
                "(src/repro/sim/cache.py); if the change is "
                "bit-identical (golden pins + fuzz corpus green), "
                "re-bless with `repro.cli lint --update-fingerprints`"))
        return findings
