"""REP001 — determinism: the simulator semantic surface must be replayable.

Two families of hazard inside ``repro.sim`` / ``repro.pipeline`` /
``repro.core``:

1. *Ambient entropy*: calls that read the wall clock, the OS entropy
   pool, or the process-global (unseeded) ``random`` state.  All
   randomness in the simulator flows from explicit ``random.Random(seed)``
   instances, so ``random.Random(...)`` construction is allowed while
   ``random.random()`` / ``random.shuffle()`` etc. are not.

2. *Unordered iteration*: ``for``-loops (and comprehension generators)
   whose iterable is of ``set``/``frozenset`` origin.  Set iteration
   order depends on insertion history and hash seeding of the values, so
   any simulator decision derived from it is replay-hostile.  Membership
   tests, ``len()``, and order-insensitive folds (``sorted``/``min``/
   ``max``/``sum``/``any``/``all``) over sets stay legal — only raw
   iteration order escaping into semantics is flagged.

Origin tracking is per-file and deliberately shallow: a name (or
``self.x`` attribute) is *set-origin* if it is assigned from a ``set``/
``frozenset`` literal, call, or comprehension anywhere in the same file.
That catches the realistic hazard (a module growing a set member and
iterating it) without whole-program inference.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lintkit.engine import FileContext, Finding, LintRule

#: module-level callables that read ambient entropy / wall-clock
_BANNED_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"), ("time", "process_time_ns"),
    ("os", "urandom"), ("os", "getrandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: the process-global random API is banned; explicit random.Random(seed)
#: instances are the sanctioned source of randomness
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: order-insensitive consumers: iterating a set *inside* these is fine
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "any", "all",
                      "set", "frozenset", "len", "tuple"}


def _call_name(node: ast.Call):
    """(base, attr) for ``base.attr(...)`` or (None, name) for ``name(...)``."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, None


def _is_set_expr(node: ast.expr) -> bool:
    """Literal / call / comprehension that evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        _base, name = _call_name(node)
        if name in {"set", "frozenset"}:
            return True
    return False


def _target_key(node: ast.expr):
    """A trackable binding target: plain name or ``self.attr``."""
    if isinstance(node, ast.Name):
        return node.id
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


class _SetOrigins(ast.NodeVisitor):
    """First pass: collect names/attrs bound to set-valued expressions."""

    def __init__(self) -> None:
        self.origins: Set[str] = set()

    def _record(self, target: ast.expr, value: ast.expr) -> None:
        key = _target_key(target)
        if key is not None and _is_set_expr(value):
            self.origins.add(key)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target, node.value)
        # Annotations alone mark set-typed fields too: `seen: set[int]`.
        key = _target_key(node.target)
        if key is not None and self._set_annotation(node.annotation):
            self.origins.add(key)
        self.generic_visit(node)

    @staticmethod
    def _set_annotation(annotation: ast.expr) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in {"set", "frozenset", "Set", "FrozenSet"}
        if isinstance(annotation, ast.Subscript):
            return _SetOrigins._set_annotation(annotation.value)
        return False

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node.value)
        self.generic_visit(node)


class DeterminismRule(LintRule):
    code = "REP001"
    name = "determinism"
    description = ("no ambient entropy (unseeded random, wall clock, "
                   "os.urandom) and no order-sensitive set/frozenset "
                   "iteration inside repro.sim / repro.pipeline / "
                   "repro.core")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(ctx.relpath == scope or ctx.relpath.startswith(scope + "/")
                   for scope in ctx.config.determinism_scopes):
            return ()
        tree = ctx.tree
        if tree is None:
            return ()
        findings: List[Finding] = []
        origins = _SetOrigins()
        origins.visit(tree)
        self._scan(tree, ctx, origins.origins, findings)
        return findings

    # ------------------------------------------------------------ entropy
    def _check_call(self, node: ast.Call, ctx: FileContext,
                    findings: List[Finding]) -> None:
        base, name = _call_name(node)
        if base == "random" and name not in _RANDOM_ALLOWED:
            findings.append(self.finding(
                ctx.relpath, node,
                f"call to process-global random.{name}() — use an "
                "explicit random.Random(seed) instance"))
        elif (base, name) in _BANNED_CALLS:
            findings.append(self.finding(
                ctx.relpath, node,
                f"ambient entropy / wall-clock read {base}.{name}() in "
                "simulator semantic surface"))

    # ---------------------------------------------------------- iteration
    def _is_set_valued(self, node: ast.expr, origins: Set[str]) -> bool:
        if _is_set_expr(node):
            return True
        key = _target_key(node)
        return key is not None and key in origins

    def _flag_iter(self, iter_node: ast.expr, ctx: FileContext,
                   origins: Set[str], findings: List[Finding],
                   anchor: ast.AST) -> None:
        if self._is_set_valued(iter_node, origins):
            findings.append(self.finding(
                ctx.relpath, anchor,
                "iteration over a set/frozenset — order depends on "
                "insertion history and value hashing; sort it or use an "
                "insertion-ordered structure"))

    def _scan(self, tree: ast.Module, ctx: FileContext, origins: Set[str],
              findings: List[Finding]) -> None:
        comprehensions = (ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)
        insensitive_iters = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                self._check_call(node, ctx, findings)
                _base, name = _call_name(node)
                if name in _ORDER_INSENSITIVE:
                    for arg in node.args:
                        insensitive_iters.add(id(arg))
                        # `sorted(x for x in s)` and friends: the
                        # comprehension consumes the set order-
                        # insensitively too.
                        if isinstance(arg, comprehensions):
                            for gen in arg.generators:
                                insensitive_iters.add(id(gen.iter))
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if id(node.iter) not in insensitive_iters:
                    self._flag_iter(node.iter, ctx, origins, findings, node)
            elif isinstance(node, comprehensions):
                for gen in node.generators:
                    if id(gen.iter) not in insensitive_iters:
                        self._flag_iter(gen.iter, ctx, origins, findings,
                                        node)
