"""REP002 — cache-key completeness: every field reaches ``to_key_dict``.

The result cache is content-addressed: two runs collide on a key exactly
when their configs serialize identically through ``to_key_dict()``.  A
dataclass field that never reaches the key dict is a *stale-hit hazard* —
changing it silently re-serves old results.  The dynamic conformance
suite (``tests/test_key_contract.py``) mutates constructible fields and
checks the key moves; this static rule complements it by covering fields
the round-trip test cannot construct, and by firing at lint time instead
of at the first unlucky sweep.

Coverage is judged statically from the class body:

* the class must be a ``@dataclass`` and define ``to_key_dict``;
* a body of ``asdict(self)`` (or ``dataclasses.asdict(self)``) covers
  every field by construction;
* otherwise a field is covered iff ``self.<field>`` is read anywhere in
  the method, or it appears in the configured exemption table with a
  documented reason.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lintkit.engine import Finding, LintRule, ProjectContext


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> Dict[str, int]:
    """{field_name: lineno} from class-level annotated assignments."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        annotation = stmt.annotation
        base = annotation.value if isinstance(annotation, ast.Subscript) \
            else annotation
        if isinstance(base, ast.Name) and base.id == "ClassVar":
            continue
        if isinstance(base, ast.Attribute) and base.attr == "ClassVar":
            continue
        fields[stmt.target.id] = stmt.lineno
    return fields


def _find_method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _uses_asdict(method: ast.FunctionDef) -> bool:
    for sub in ast.walk(method):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name == "asdict":
            return True
    return False


def _self_reads(method: ast.FunctionDef) -> Set[str]:
    reads: Set[str] = set()
    for sub in ast.walk(method):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"):
            reads.add(sub.attr)
    return reads


class CacheKeyCompletenessRule(LintRule):
    code = "REP002"
    name = "cache-key-completeness"
    description = ("every dataclass field on the key-carrying config "
                   "types must appear in to_key_dict() or in the "
                   "documented exemption table")

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for relpath, classname in ctx.config.key_dict_classes:
            file_ctx = ctx.context_for(relpath)
            if file_ctx is None or file_ctx.tree is None:
                findings.append(self.finding(
                    relpath, 1,
                    f"configured key-dict class {classname} — file "
                    "missing or unparseable"))
                continue
            class_node = None
            for node in file_ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == classname:
                    class_node = node
                    break
            if class_node is None:
                findings.append(self.finding(
                    relpath, 1,
                    f"configured key-dict class {classname} not found"))
                continue
            findings.extend(self._check_class(relpath, class_node,
                                              ctx.config.key_dict_exemptions))
        return findings

    def _check_class(self, relpath: str, node: ast.ClassDef,
                     exemptions) -> List[Finding]:
        findings: List[Finding] = []
        if not _is_dataclass_decorated(node):
            findings.append(self.finding(
                relpath, node,
                f"{node.name} is configured as a key-carrying type but "
                "is not a @dataclass — field enumeration is undefined"))
            return findings
        fields = _dataclass_fields(node)
        method = _find_method(node, "to_key_dict")
        if method is None:
            findings.append(self.finding(
                relpath, node,
                f"{node.name} has no to_key_dict() — every config type "
                "feeding the result cache must define its key contract"))
            return findings
        if _uses_asdict(method):
            return findings  # asdict(self) covers all fields structurally
        reads = _self_reads(method)
        exempt = exemptions.get(node.name, {})
        for field_name, lineno in sorted(fields.items(),
                                         key=lambda kv: kv[1]):
            if field_name in reads:
                continue
            if field_name in exempt:
                continue
            findings.append(self.finding(
                relpath, lineno,
                f"{node.name}.{field_name} never reaches to_key_dict() "
                "and is not in the exemption table — stale cache-hit "
                "hazard"))
        for field_name in sorted(exempt):
            if field_name not in fields:
                findings.append(self.finding(
                    relpath, node,
                    f"exemption table lists {node.name}.{field_name} "
                    "but the dataclass has no such field — stale "
                    "exemption"))
        return findings
