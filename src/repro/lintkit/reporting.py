"""Report renderers for lint runs: human text and machine JSON.

The JSON form is what the CI lint job publishes as a build artifact, so
its shape is part of the repo's tooling contract: a ``summary`` block,
the active ``rules`` table, and every finding (suppressed ones included,
flagged) in deterministic path/line order.
"""

from __future__ import annotations

import json
from typing import List

from repro.lintkit.engine import Finding, LintReport

REPORT_FORMAT = 1


def render_text(report: LintReport, show_suppressed: bool = False) -> str:
    lines: List[str] = []
    for finding in report.findings:
        if finding.suppressed and not show_suppressed:
            continue
        mark = " (suppressed: %s)" % finding.suppression_reason \
            if finding.suppressed else ""
        lines.append(f"{finding.location()}: {finding.rule}: "
                     f"{finding.message}{mark}")
    bad = len(report.unsuppressed)
    lines.append(
        f"lint: {report.files_scanned} files, "
        f"{len(report.rules)} rules, {bad} finding(s)"
        + (f", {len(report.suppressed)} suppressed"
           if report.suppressed else "")
        + (" — OK" if report.ok else ""))
    return "\n".join(lines)


def report_to_dict(report: LintReport) -> dict:
    return {
        "format": REPORT_FORMAT,
        "summary": {
            "files_scanned": report.files_scanned,
            "rules_active": len(report.rules),
            "findings": len(report.unsuppressed),
            "suppressed": len(report.suppressed),
            "ok": report.ok,
        },
        "rules": [
            {"code": rule.code, "name": rule.name,
             "description": rule.description}
            for rule in report.rules
        ],
        "findings": [f.to_dict() for f in report.findings],
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_to_dict(report), indent=2, sort_keys=False)


def finding_lines(findings: List[Finding]) -> List[str]:
    """Bare ``path:line:col: RULE: message`` lines (test helper)."""
    return [f"{f.location()}: {f.rule}: {f.message}" for f in findings]
