"""Command-line interface: ``repro-helper-cluster`` / ``python -m repro``.

Subcommands
-----------
``run``        Simulate one benchmark under one policy and print the metrics.
``ladder``     Run the cumulative policy ladder over a set of benchmarks.
``sweep``      Run a benchmarks x policies sweep (``--suite table2`` runs the
               412-app workload suite and regenerates the Figure 14 tables).
``explore``    Design-space exploration: sweep a topology grid (narrow width
               x clock ratio x helper count, plus ``--mixed`` asymmetric
               helper mixes such as ``8@2+16@1``) and print a sensitivity
               table with per-cluster energy and ED²-vs-baseline columns.
``energy``     Reproduce the paper's energy-delay² comparison (the +5.1%
               ED² claim for IR) through the parallel engine: per-benchmark
               energy / delay ratios against the monolithic baseline plus
               the per-cluster energy split.

``--policy`` / ``--policies`` choices come from the policy registry
(:data:`repro.core.steering.policy_registry`), so registered policies —
including the width-aware ``ir_wa`` / ``n888_wa`` variants — are runnable
from every subcommand without touching this module.
``analyze``    Run the Figure 1 / 11 / 13 trace characterisation analyses.
``table1``     Print the baseline machine parameters (Table 1).
``workloads``  List the Table 2 workload suite categories.

``ladder``, ``sweep``, ``explore`` and ``energy`` accept the parallel-engine
flags: ``--jobs N`` fans the jobs over N worker processes (0 = one per CPU),
``--cache-dir DIR`` enables the content-addressed on-disk result cache, and
``--no-cache`` bypasses cache reads while still refreshing stored entries.
Results are bit-identical across serial, parallel and cached runs, and every
result carries its per-cluster energy figures (sourced from the cache on
re-runs).
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import List, Optional, Sequence

from repro.analysis.carry import analyze_carry
from repro.analysis.distance import producer_consumer_distance
from repro.analysis.narrowness import analyze_narrowness
from repro.core.config import TABLE_1_PARAMETERS, helper_cluster_config
from repro.core.steering import policy_registry
from repro.sim.baseline import baseline_pair
from repro.sim.experiment import (
    ExperimentRunner,
    build_topology_grid,
    mixed_topology_point,
    run_spec_suite,
)
from repro.sim.hotstate import BACKEND_ENV, detected_backend
from repro.sim.reporting import (
    cache_stats_line,
    format_energy_table,
    format_ladder_summary,
    format_policy_table,
    format_table,
    format_topology_table,
    format_workload_summary,
    sweep_to_csv,
    to_csv,
    topology_sweep_to_csv,
)
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.synthetic import generate_trace
from repro.trace.workloads import WORKLOAD_CATEGORIES


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None,
                        choices=["auto", "python", "compiled"],
                        help="simulator backend (mirrors REPRO_BACKEND; "
                             "results are bit-identical, only speed differs)")


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Parallel-engine knobs shared by the sweep-shaped subcommands."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, 0 = one per CPU; "
                             "requests past the CPU count are clamped)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the on-disk result cache (also "
                             "enables checkpoint/resume: an interrupted "
                             "campaign picks up from its completed results)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass cache reads (entries are still refreshed)")
    parser.add_argument("--attempts", type=int, default=None, metavar="N",
                        help="supervised attempts per job before it is "
                             "quarantined (default 3)")
    parser.add_argument("--job-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock deadline base (scaled by "
                             "trace length; an expired job is retried)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="deterministic fault-injection plan for chaos "
                             "testing (repro.faultkit spec, e.g. "
                             "'seed=7,crash=0.2,hang=0.1'; mirrors "
                             "REPRO_FAULTS)")
    _add_backend_flag(parser)


def _runner_kwargs(args: argparse.Namespace) -> dict:
    """ExperimentRunner kwargs shared by the sweep-shaped subcommands."""
    kwargs = dict(trace_uops=args.uops, seed=args.seed, jobs=args.jobs,
                  cache_dir=args.cache_dir, use_cache=not args.no_cache)
    if getattr(args, "faults", None):
        from repro.faultkit import FaultPlan

        kwargs["faults"] = FaultPlan.parse(args.faults)
    overrides = {}
    if getattr(args, "attempts", None) is not None:
        overrides["max_attempts"] = args.attempts
    if getattr(args, "job_timeout", None) is not None:
        overrides["timeout_base"] = args.job_timeout
    if overrides:
        from dataclasses import replace

        from repro.sim.supervise import SupervisorPolicy

        kwargs["supervisor"] = replace(SupervisorPolicy(), **overrides)
    return kwargs


def _print_engine_footer(runner) -> None:
    """Sweep-table footer: resolved backend, cache stats, worker clamp,
    and — when anything supervision-worthy happened — the supervision line
    (retries, timeouts, degraded backends, quarantined jobs, resume)."""
    line = f"backend: {detected_backend()}"
    if runner.cache is not None:
        line += " · " + cache_stats_line(runner.cache, runner.engine.trace_store,
                                         engine=runner.engine)
    elif runner.engine.jobs_clamped_from:
        line += (f" · jobs={runner.engine.jobs} (clamped from "
                 f"{runner.engine.jobs_clamped_from}: the host has "
                 f"{runner.engine.jobs} usable CPU(s))")
    print(line)
    supervision = runner.report.summary_line()
    if supervision:
        print(supervision)
    if runner.report.quarantined:
        print(f"quarantined jobs written to {runner.engine.quarantine_path}",
              file=sys.stderr)


def _engine_exit(runner) -> int:
    """Exit code of a supervised campaign: 3 when any job was quarantined
    (results above are the surviving cells), 0 otherwise."""
    return 3 if runner.report.quarantined else 0


def _parse_mixed_shapes(text: str) -> List[tuple]:
    """Parse an asymmetric helper mix spec like ``8@2+16@1``.

    Each ``+``-separated part is one helper as ``width@ratio`` (``@ratio``
    optional, defaulting to 1).
    """
    shapes: List[tuple] = []
    for part in text.split("+"):
        width_text, _, ratio_text = part.strip().partition("@")
        try:
            shapes.append((int(width_text), int(ratio_text) if ratio_text else 1))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad helper mix {text!r}: each part must be width@ratio, "
                f"e.g. 8@2+16@1")
    return shapes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-helper-cluster",
        description="Helper-cluster (data-width aware steering) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    # --policy choices come from the policy registry, so registering a
    # PolicySpec makes it runnable from every subcommand without touching
    # this module.
    all_policies = policy_registry.names()
    helper_policies = policy_registry.helper_names()

    run = sub.add_parser("run", help="simulate one benchmark under one policy")
    run.add_argument("--benchmark", default="gcc", choices=SPEC_INT_NAMES)
    run.add_argument("--policy", default="ir", choices=all_policies)
    run.add_argument("--uops", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=2006)
    run.add_argument("--profile", default=None, choices=["cprofile", "timers"],
                     help="profile the pair of runs: 'cprofile' dumps the "
                          "top functions by cumulative time, 'timers' stamps "
                          "per-phase (dispatch/issue/writeback/commit) "
                          "wall-clock counters into the footer")
    _add_backend_flag(run)

    ladder = sub.add_parser("ladder", help="run the cumulative policy ladder")
    ladder.add_argument("--benchmarks", nargs="*", default=None, choices=SPEC_INT_NAMES)
    ladder.add_argument("--uops", type=int, default=15_000)
    ladder.add_argument("--seed", type=int, default=2006)
    ladder.add_argument("--policies", nargs="*", default=None,
                        choices=helper_policies)
    _add_engine_flags(ladder)

    sweep = sub.add_parser("sweep", help="run a benchmarks x policies sweep")
    sweep.add_argument("--suite", default="spec", choices=["spec", "table2"],
                       help="spec: SPEC Int 2000; table2: the 412-app "
                            "workload suite of §3.8 / Figure 14")
    sweep.add_argument("--benchmarks", nargs="*", default=None, choices=SPEC_INT_NAMES)
    sweep.add_argument("--policies", nargs="*", default=None,
                       choices=helper_policies)
    sweep.add_argument("--categories", nargs="*", default=None,
                       choices=list(WORKLOAD_CATEGORIES),
                       help="table2 only: restrict to these categories")
    sweep.add_argument("--apps-per-category", type=int, default=None,
                       metavar="N",
                       help="table2 only: cap apps per category "
                            "(default: the full Table 2 counts)")
    sweep.add_argument("--uops", type=int, default=15_000)
    sweep.add_argument("--seed", type=int, default=2006)
    sweep.add_argument("--csv", default=None, metavar="PATH",
                       help="also write the per-benchmark rows as CSV")
    _add_engine_flags(sweep)

    explore = sub.add_parser(
        "explore", help="design-space exploration over a topology grid")
    explore.add_argument("--widths", nargs="*", type=int, default=[4, 8, 16],
                         help="narrow datapath widths in bits")
    explore.add_argument("--ratios", nargs="*", type=int, default=[1, 2],
                         help="helper clock ratios")
    explore.add_argument("--helpers", nargs="*", type=int, default=[1, 2],
                         help="helper cluster counts")
    explore.add_argument("--mixed", action="append", default=None,
                         type=_parse_mixed_shapes, metavar="W@R+W@R",
                         help="add an asymmetric helper-mix point, e.g. "
                              "8@2+16@1 (repeatable)")
    explore.add_argument("--data-width", type=int, default=None, metavar="BITS",
                         help="override the benchmarks' narrow-data band "
                              "width (e.g. 16 for halfword-heavy workloads)")
    explore.add_argument("--benchmarks", nargs="*", default=None,
                         choices=SPEC_INT_NAMES)
    explore.add_argument("--policy", default="ir",
                         choices=helper_policies)
    explore.add_argument("--uops", type=int, default=15_000)
    explore.add_argument("--seed", type=int, default=2006)
    explore.add_argument("--csv", default=None, metavar="PATH",
                         help="also write the per-point rows as CSV")
    _add_engine_flags(explore)

    energy = sub.add_parser(
        "energy", help="energy-delay² comparison vs the monolithic baseline")
    energy.add_argument("--benchmarks", nargs="*", default=None,
                        choices=SPEC_INT_NAMES)
    energy.add_argument("--policy", default="ir", choices=helper_policies,
                        help="helper configuration to compare (the paper's "
                             "+5.1%% ED2 claim is for ir)")
    energy.add_argument("--uops", type=int, default=15_000)
    energy.add_argument("--seed", type=int, default=2006)
    energy.add_argument("--csv", default=None, metavar="PATH",
                        help="also write the per-benchmark rows as CSV")
    _add_engine_flags(energy)

    analyze = sub.add_parser("analyze", help="run the trace characterisation analyses")
    analyze.add_argument("--benchmark", default="gcc", choices=SPEC_INT_NAMES)
    analyze.add_argument("--uops", type=int, default=20_000)
    analyze.add_argument("--seed", type=int, default=2006)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing: event wheel vs reference loop")
    fuzz.add_argument("--cases", type=int, default=50,
                      help="number of cases to generate and co-simulate")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed (case i uses a pure function of "
                           "seed and i, so any case replays from the log)")
    fuzz.add_argument("--shrink", dest="shrink", action="store_true",
                      default=True, help="shrink failures to minimal "
                      "reproducers (default)")
    fuzz.add_argument("--no-shrink", dest="shrink", action="store_false",
                      help="report failures as generated, without shrinking")
    fuzz.add_argument("--out", default="fuzz-failures", metavar="DIR",
                      help="directory for failure artifacts: repro scripts "
                           "plus original and shrunk case JSON")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="also write shrunk failures as corpus entries "
                           "here (e.g. tests/fuzz_corpus)")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop starting new cases after this many seconds")
    fuzz.add_argument("--max-failures", type=int, default=5,
                      help="stop after this many failing cases")
    fuzz.add_argument("--skip-store-checks", action="store_true",
                      help="skip the ResultCache/TraceStore round-trip "
                           "checks (faster campaigns)")
    fuzz.add_argument("--engine-faults", type=int, default=0, metavar="N",
                      help="instead of differential cases, run N seeded "
                           "chaos scenarios through the supervised engine "
                           "(repro.fuzz.enginefaults): surviving results "
                           "must match a fault-free serial run; divergences "
                           "land in the corpus as engine-fault entries")

    replay = sub.add_parser(
        "fuzz-replay", help="replay a fuzz corpus directory (tier-1 gate)")
    replay.add_argument("--corpus", default="tests/fuzz_corpus", metavar="DIR",
                        help="corpus directory of *.json case entries")

    lint = sub.add_parser(
        "lint", help="run the repo-contract static analysis (repro.lintkit)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="report format (json is the CI artifact form)")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="also write the report to this file")
    lint.add_argument("--rules", default=None, metavar="CODES",
                      help="comma-separated rule codes to run "
                           "(e.g. REP001,REP004); default: all")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="project root to lint (default: this checkout)")
    lint.add_argument("--update-fingerprints", action="store_true",
                      help="bless the current semantic-module fingerprints "
                           "for REP005 (only after golden pins + fuzz "
                           "corpus prove bit-identity, or with a "
                           "SIMULATOR_VERSION bump)")
    lint.add_argument("--show-suppressed", action="store_true",
                      help="include suppressed findings in text output")

    sub.add_parser("table1", help="print the Table 1 baseline parameters")
    sub.add_parser("workloads", help="list the Table 2 workload categories")
    return parser


_PROFILE_PHASES = ("dispatch", "issue", "writeback", "commit")


@contextmanager
def _phase_timers():
    """Accumulate wall-clock per pipeline phase for ``run --profile timers``.

    Wraps the simulator's phase methods at class level for the duration of
    the context, so the counters cover every simulator constructed inside it
    (the monolithic baseline included) and the hot loop carries zero
    instrumentation cost when not profiling.
    """
    from time import perf_counter

    from repro.sim.simulator import HelperClusterSimulator

    counters = {name: [0.0, 0] for name in _PROFILE_PHASES}
    saved = {}

    def wrap(name, fn):
        cell = counters[name]

        def timed(*call_args):
            t0 = perf_counter()
            try:
                return fn(*call_args)
            finally:
                cell[0] += perf_counter() - t0
                cell[1] += 1

        return timed

    try:
        for name in _PROFILE_PHASES:
            # The event wheel drives issue per backend, not through the
            # reference loop's _issue wrapper, so time the per-backend hook.
            attr = "_issue_backend" if name == "issue" else f"_{name}"
            saved[attr] = getattr(HelperClusterSimulator, attr)
            setattr(HelperClusterSimulator, attr, wrap(name, saved[attr]))
        yield counters
    finally:
        for attr, fn in saved.items():
            setattr(HelperClusterSimulator, attr, fn)


def _print_phase_footer(counters) -> None:
    total = sum(cell[0] for cell in counters.values())
    rows = [[name, cell[0] * 1e3, cell[1],
             (cell[0] / total * 100.0) if total else 0.0]
            for name, cell in counters.items()]
    print()
    print(format_table(["phase", "wall (ms)", "calls", "% of timed"], rows,
                       title="Per-phase wall clock (baseline + helper runs)",
                       float_format="{:.2f}"))
    print(f"backend: {detected_backend()}")


def _cmd_run(args: argparse.Namespace) -> int:
    profile = get_profile(args.benchmark)
    trace = generate_trace(profile, args.uops, seed=args.seed)
    phase_counters = profiler = None
    if args.profile == "timers":
        with _phase_timers() as phase_counters:
            base, helper, gain = baseline_pair(
                trace, args.policy, helper_config=helper_cluster_config())
    elif args.profile == "cprofile":
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        base, helper, gain = baseline_pair(trace, args.policy,
                                           helper_config=helper_cluster_config())
        profiler.disable()
    else:
        base, helper, gain = baseline_pair(trace, args.policy,
                                           helper_config=helper_cluster_config())
    rows = [
        ["baseline IPC", base.ipc],
        ["helper IPC", helper.ipc],
        ["speedup (%)", gain * 100.0],
        ["helper-cluster instructions (%)", helper.helper_fraction * 100.0],
        ["copy instructions (%)", helper.copy_fraction * 100.0],
        ["width prediction accuracy (%)", helper.prediction.accuracy * 100.0],
        ["fatal misprediction rate (%)", helper.prediction.fatal_rate * 100.0],
        ["recoveries", helper.recoveries],
        ["wide-to-narrow imbalance (%)", helper.wide_to_narrow_imbalance * 100.0],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.benchmark} / {args.policy} ({args.uops} uops)",
                       float_format="{:.2f}"))
    if phase_counters is not None:
        _print_phase_footer(phase_counters)
    if profiler is not None:
        import io
        import pstats

        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        print()
        print(stream.getvalue().rstrip())
        print(f"backend: {detected_backend()}")
    return 0


def _run_engine_sweep(args: argparse.Namespace, policies: List[str]):
    """Run the sweep through an ExperimentRunner, returning (sweep, runner)."""
    runner = ExperimentRunner(**_runner_kwargs(args))
    names = args.benchmarks or list(SPEC_INT_NAMES)
    profiles = [get_profile(name) for name in names]
    return runner.run_suite(profiles, policies), runner


def _cmd_ladder(args: argparse.Namespace) -> int:
    policies = args.policies or policy_registry.ladder_names(include_baseline=False)
    sweep, runner = _run_engine_sweep(args, policies)
    print(format_ladder_summary(sweep, title="Cumulative steering-policy ladder"))
    print()
    for policy in policies:
        print(format_policy_table(sweep, policy))
        print()
    _print_engine_footer(runner)
    return _engine_exit(runner)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.suite == "table2":
        if args.benchmarks:
            print("--benchmarks selects SPEC benchmarks; with --suite table2 "
                  "use --categories / --apps-per-category", file=sys.stderr)
            return 2
        return _cmd_sweep_table2(args)
    if args.categories or args.apps_per_category is not None:
        print("--categories / --apps-per-category require --suite table2",
              file=sys.stderr)
        return 2
    policies = args.policies or policy_registry.ladder_names(include_baseline=False)
    sweep, runner = _run_engine_sweep(args, policies)
    print(format_ladder_summary(sweep, title="Sweep summary"))
    csv_text = sweep_to_csv(sweep)
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(csv_text + "\n")
        print(f"\nwrote {args.csv}")
    print()
    _print_engine_footer(runner)
    return _engine_exit(runner)


def _cmd_sweep_table2(args: argparse.Namespace) -> int:
    """§3.8 / Figure 14: the workload suite through the parallel engine."""
    policies = args.policies or ["ir_nodest"]
    if len(policies) != 1:
        print("--suite table2 takes exactly one policy", file=sys.stderr)
        return 2
    runner = ExperimentRunner(**_runner_kwargs(args))
    sweep = runner.run_workload_suite(
        policy=policies[0], categories=args.categories,
        apps_per_category=args.apps_per_category)
    descriptions = {key: category.description
                    for key, category in WORKLOAD_CATEGORIES.items()}
    print(format_workload_summary(sweep, descriptions=descriptions))
    if args.csv:
        from repro.sim.reporting import to_csv
        rows = [[app.name, app.category, sweep.speedup(app.name),
                 sweep.by_app[app.name].ipc]
                for app in sweep.apps]
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(to_csv(["app", "category", "speedup", "ipc"], rows) + "\n")
        print(f"\nwrote {args.csv}")
    print()
    _print_engine_footer(runner)
    return _engine_exit(runner)


def _cmd_explore(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(**_runner_kwargs(args))
    points = build_topology_grid(args.widths, args.ratios, args.helpers)
    for shapes in args.mixed or []:
        points.append(mixed_topology_point(shapes))
    names = args.benchmarks or list(SPEC_INT_NAMES)
    profiles = [get_profile(name) for name in names]
    if args.data_width is not None:
        profiles = [profile.scaled(data_width=args.data_width)
                    for profile in profiles]
    sweep = runner.run_topology_grid(points, profiles, policy=args.policy)
    print(format_topology_table(sweep))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(topology_sweep_to_csv(sweep) + "\n")
        print(f"\nwrote {args.csv}")
    print()
    _print_engine_footer(runner)
    return _engine_exit(runner)


def _cmd_energy(args: argparse.Namespace) -> int:
    """Reproduce the paper's ED² comparison through the parallel engine."""
    sweep, runner = _run_engine_sweep(args, [args.policy])
    print(format_energy_table(sweep, args.policy))
    gain = sweep.mean_ed2_improvement(args.policy) * 100.0
    print(f"\nmean ED2 improvement over baseline: {gain:+.2f}% "
          f"(the paper reports +5.1% for its IR design point)")
    if args.csv:
        rows = [[b, sweep.results[b].by_policy[args.policy].energy,
                 sweep.results[b].baseline.energy,
                 sweep.results[b].ed2_improvement(args.policy)]
                for b in sweep.benchmarks
                if b in sweep.results
                and args.policy in sweep.results[b].by_policy]
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(to_csv(["benchmark", "energy", "baseline_energy",
                                 "ed2_gain"], rows) + "\n")
        print(f"\nwrote {args.csv}")
    print()
    _print_engine_footer(runner)
    return _engine_exit(runner)


def _cmd_analyze(args: argparse.Namespace) -> int:
    profile = get_profile(args.benchmark)
    trace = generate_trace(profile, args.uops, seed=args.seed)
    narrowness = analyze_narrowness(trace)
    carry = analyze_carry(trace)
    distance = producer_consumer_distance(trace)
    rows = [
        ["narrow-width dependent operands (%) [Fig 1]",
         narrowness.narrow_dependence_fraction * 100.0],
        ["ALU: one narrow operand (%) [§1]", narrowness.one_narrow_fraction * 100.0],
        ["ALU: two narrow, narrow result (%) [§1]",
         narrowness.two_narrow_narrow_fraction * 100.0],
        ["carry not propagated, arith (%) [Fig 11]", carry.arith_fraction * 100.0],
        ["carry not propagated, load (%) [Fig 11]", carry.load_fraction * 100.0],
        ["mean producer-consumer distance (uops) [Fig 13]", distance.mean_distance],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"Trace characterisation: {args.benchmark}",
                       float_format="{:.2f}"))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing campaign (see DESIGN.md § Differential fuzzing)."""
    from repro.fuzz import run_campaign

    if args.engine_faults:
        from repro.fuzz import run_engine_fault_campaign

        campaign = run_engine_fault_campaign(
            args.engine_faults, seed=args.seed, corpus_dir=args.corpus,
            time_budget=args.time_budget, max_failures=args.max_failures,
            log=print)
        print(f"\n{campaign.cases_run} chaos cases in "
              f"{campaign.elapsed:.1f}s ({campaign.stop_reason}); "
              f"{len(campaign.reports)} failure(s)")
        if campaign.artifacts:
            print("divergence corpus entries:")
            for path in campaign.artifacts:
                print(f"  {path}")
        return 0 if campaign.ok else 1

    campaign = run_campaign(
        args.cases, seed=args.seed, shrink=args.shrink, out_dir=args.out,
        corpus_dir=args.corpus, time_budget=args.time_budget,
        max_failures=args.max_failures,
        check_stores=not args.skip_store_checks, log=print)
    print(f"\n{campaign.cases_run} cases in {campaign.elapsed:.1f}s "
          f"({campaign.stop_reason}); {len(campaign.reports)} failure(s)")
    if campaign.artifacts:
        print("failure artifacts:")
        for path in campaign.artifacts:
            print(f"  {path}")
    return 0 if campaign.ok else 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    """Replay every committed corpus entry; any failure is a regression."""
    from repro.fuzz import (load_corpus_dir, load_engine_corpus_dir,
                            run_case, run_engine_fault_case)

    entries = load_corpus_dir(args.corpus)
    engine_entries = load_engine_corpus_dir(args.corpus)
    if not entries and not engine_entries:
        print(f"no corpus entries under {args.corpus}", file=sys.stderr)
        return 2
    failed = 0
    for name, case in entries:
        report = run_case(case)
        status = "ok  " if report.ok else "FAIL"
        print(f"{status} {name}: {case.label()} ({report.elapsed:.2f}s)")
        for failure in report.failures:
            failed += 1
            print(f"     {failure}")
    for name, engine_case in engine_entries:
        report = run_engine_fault_case(engine_case)
        status = "ok  " if report.ok else "FAIL"
        print(f"{status} {name}: {engine_case.label()} "
              f"({report.elapsed:.2f}s)")
        for failure in report.failures:
            failed += 1
            print(f"     {failure}")
    print(f"\n{len(entries) + len(engine_entries)} corpus entries, "
          f"{failed if failed else 'no'} failure(s)")
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over the repo contracts (DESIGN.md § Static
    guarantees); exit 0 iff no unsuppressed findings."""
    from repro.lintkit import (build_rules, default_config, render_json,
                               render_text, update_fingerprints)
    from repro.lintkit.engine import LintRunner

    config = default_config(args.root)
    if args.update_fingerprints:
        path = update_fingerprints(config)
        print(f"blessed semantic-module fingerprints -> {path}")
    codes = args.rules.split(",") if args.rules else None
    try:
        rules = build_rules(codes)
    except ValueError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    report = LintRunner(config, rules).run()
    if args.format == "json":
        text = render_json(report)
    else:
        text = render_text(report, show_suppressed=args.show_suppressed)
    print(text)
    if args.output:
        # The artifact is always the JSON form: it is the machine contract
        # the CI job publishes regardless of what was printed.
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_json(report) + "\n")
    return 0 if report.ok else 1


def _cmd_table1(_: argparse.Namespace) -> int:
    rows = [[name, value] for name, value in TABLE_1_PARAMETERS.items()]
    print(format_table(["parameter", "value"], rows,
                       title="Table 1 - monolithic baseline parameters"))
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    rows = [[c.key, c.description, c.num_traces] for c in WORKLOAD_CATEGORIES.values()]
    print(format_table(["category", "description", "#traces"], rows,
                       title="Table 2 - workload categories"))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "ladder": _cmd_ladder,
    "sweep": _cmd_sweep,
    "explore": _cmd_explore,
    "energy": _cmd_energy,
    "analyze": _cmd_analyze,
    "fuzz": _cmd_fuzz,
    "fuzz-replay": _cmd_fuzz_replay,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "workloads": _cmd_workloads,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None):
        # The flag literally mirrors the environment variable so the choice
        # reaches every simulator construction, worker processes included.
        os.environ[BACKEND_ENV] = args.backend
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
