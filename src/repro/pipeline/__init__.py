"""Out-of-order pipeline substrate.

These modules model the backend structures of the Pentium-4-like clustered
processor of §2: the two clock domains (§2.2), the rename stage with its
width table (§3.2) and CR reference counters (§3.5), per-cluster issue queues
and functional units, the reorder buffer, the shared memory order buffer, the
frontend fetch/decode machinery, and the flushing recovery mechanism used on
fatal width mispredictions.
"""

from repro.pipeline.clocking import ClockDomain, ClockingModel
from repro.pipeline.rename import RenameTable, RenameEntry
from repro.pipeline.rob import ReorderBuffer, ROBEntry
from repro.pipeline.scheduler import IssueQueue, IssueQueueEntry
from repro.pipeline.execute import ExecutionUnitPool, FU_LATENCY
from repro.pipeline.mob import MemoryOrderBuffer
from repro.pipeline.frontend import Frontend, FetchedUop
from repro.pipeline.recovery import RecoveryManager, RecoveryEvent

__all__ = [
    "ClockDomain",
    "ClockingModel",
    "RenameTable",
    "RenameEntry",
    "ReorderBuffer",
    "ROBEntry",
    "IssueQueue",
    "IssueQueueEntry",
    "ExecutionUnitPool",
    "FU_LATENCY",
    "MemoryOrderBuffer",
    "Frontend",
    "FetchedUop",
    "RecoveryManager",
    "RecoveryEvent",
]
