"""Functional-unit pool and execution latencies.

Each backend owns integer ALUs and AGUs; only the wide backend has floating
point units (§2.1).  Latencies are defined per opcode in
:mod:`repro.isa.opcodes` in slow cycles; the pool converts them to fast
cycles using the cluster's clock domain and tracks structural availability of
the units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import FunctionalUnit, Opcode, opcode_info
from repro.pipeline.clocking import ClockDomain, ClockingModel

#: Baseline per-unit issue-to-result latencies in slow cycles, by unit kind.
#: Opcode-specific latencies from ``OPCODE_INFO`` take precedence; this table
#: is used for unit-occupancy (initiation interval) modelling.
FU_LATENCY: Dict[FunctionalUnit, int] = {
    FunctionalUnit.IALU: 1,
    FunctionalUnit.IMUL: 4,
    FunctionalUnit.IDIV: 20,
    FunctionalUnit.AGU: 1,
    FunctionalUnit.BRU: 1,
    FunctionalUnit.FPU: 4,
    FunctionalUnit.COPY: 1,
}

#: Default number of functional units per backend, by kind.  Matches a
#: 3-issue integer backend with a single long-latency unit of each kind.
DEFAULT_UNIT_COUNTS: Dict[FunctionalUnit, int] = {
    FunctionalUnit.IALU: 3,
    FunctionalUnit.IMUL: 1,
    FunctionalUnit.IDIV: 1,
    FunctionalUnit.AGU: 2,
    FunctionalUnit.BRU: 1,
    FunctionalUnit.FPU: 2,
    FunctionalUnit.COPY: 1,
}


@dataclass
class ExecutionUnitPool:
    """Tracks structural availability of one backend's functional units.

    Divide and multiply units are not pipelined (an operation occupies the
    unit for its full latency); everything else accepts a new operation every
    cycle of its own clock domain.

    ``domain`` is the owning cluster's index into the clocking model's
    per-domain periods (a :class:`ClockDomain` member for the paper's pair,
    a plain int for further helper clusters).
    """

    domain: int
    clocking: ClockingModel
    has_fp: bool = True
    unit_counts: Dict[FunctionalUnit, int] = field(
        default_factory=lambda: dict(DEFAULT_UNIT_COUNTS))
    #: fast cycle at which each unit instance becomes free
    _busy_until: Dict[FunctionalUnit, list] = field(default_factory=dict, repr=False)
    issued: int = 0
    structural_stalls: int = 0

    def __post_init__(self) -> None:
        if not self.has_fp:
            self.unit_counts = dict(self.unit_counts)
            self.unit_counts[FunctionalUnit.FPU] = 0
        for unit, count in self.unit_counts.items():
            self._busy_until[unit] = [0] * count
        # Per-opcode lookups are immutable for a given domain/clocking, so
        # they are memoised off the hot path.
        self._latency_cache: Dict[Opcode, int] = {}
        self._unit_cache: Dict[Opcode, FunctionalUnit] = {}

    # ------------------------------------------------------------------ query
    def supports(self, opcode: Opcode) -> bool:
        """Whether this backend has a unit capable of executing ``opcode``."""
        unit = opcode_info(opcode).unit
        return self.unit_counts.get(unit, 0) > 0

    def exec_latency(self, opcode: Opcode) -> int:
        """Issue-to-writeback latency of ``opcode`` in fast cycles."""
        latency = self._latency_cache.get(opcode)
        if latency is None:
            latency = self.clocking.exec_latency(self.domain, opcode_info(opcode).latency)
            self._latency_cache[opcode] = latency
        return latency

    def unit_for(self, opcode: Opcode) -> FunctionalUnit:
        """Functional-unit kind ``opcode`` executes on."""
        unit = self._unit_cache.get(opcode)
        if unit is None:
            unit = opcode_info(opcode).unit
            self._unit_cache[opcode] = unit
        return unit

    # ------------------------------------------------------------------ issue
    def try_issue(self, opcode: Opcode, fast_cycle: int,
                  unit: Optional[FunctionalUnit] = None) -> Optional[int]:
        """Attempt to issue ``opcode`` at ``fast_cycle``.

        Returns the completion (writeback) fast cycle on success, or ``None``
        if no unit of the required kind is free (structural hazard).
        ``unit`` may be passed by callers that precomputed the functional
        unit kind at dispatch time.
        """
        if unit is None:
            unit = self.unit_for(opcode)
        instances = self._busy_until.get(unit)
        if not instances:
            self.structural_stalls += 1
            return None
        latency = self._latency_cache.get(opcode)
        if latency is None:
            latency = self.exec_latency(opcode)
        for index, busy_until in enumerate(instances):
            if busy_until <= fast_cycle:
                pipelined = (unit is not FunctionalUnit.IDIV
                             and unit is not FunctionalUnit.IMUL)
                instances[index] = fast_cycle + (1 if pipelined else latency)
                self.issued += 1
                return fast_cycle + latency
        self.structural_stalls += 1
        return None

    def reset(self) -> None:
        for unit in self._busy_until:
            self._busy_until[unit] = [0] * self.unit_counts.get(unit, 0)
        self.issued = 0
        self.structural_stalls = 0
