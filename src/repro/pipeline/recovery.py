"""Flushing recovery for fatal width mispredictions (§3.2).

Recovery is only needed when an instruction *steered to the narrow backend*
turns out to need wide resources (a *fatal* misprediction).  A misprediction
in the other direction — a narrow value executed in the wide backend — is a
missed opportunity, not an error.

The paper adopts a simple flushing scheme: all instructions starting from the
mispredicted one are squashed in the narrow backend and re-steered into the
wide backend.  Although simple, this has a high per-event cost, which is why
the confidence estimator is added to push the fatal misprediction rate from
2.11% down to 0.83%.

The :class:`RecoveryManager` tracks pending recovery events, tells the
frontend/dispatch when they are blocked by an ongoing recovery, and records
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class RecoveryEvent:
    """One fatal-misprediction flush."""

    trigger_uid: int
    trigger_seq: int
    fast_cycle: int
    squashed_uids: List[int] = field(default_factory=list)
    refetch_ready_cycle: int = 0


class RecoveryManager:
    """Coordinates flushing recovery events.

    Parameters
    ----------
    flush_penalty_slow:
        Number of wide-cluster cycles between detecting the fatal
        misprediction and the squashed instructions being re-dispatched to
        the wide backend (re-steer + re-rename latency).
    clock_ratio:
        Fast cycles per slow cycle, to convert the penalty.
    """

    def __init__(self, flush_penalty_slow: int = 5, clock_ratio: int = 2) -> None:
        if flush_penalty_slow < 0:
            raise ValueError("flush penalty must be non-negative")
        self.flush_penalty_slow = flush_penalty_slow
        self.clock_ratio = clock_ratio
        self.events: List[RecoveryEvent] = []
        self._blocked_until_fast_cycle = 0

    # ------------------------------------------------------------------ flush
    def trigger(self, trigger_uid: int, trigger_seq: int, fast_cycle: int,
                squashed_uids: Optional[List[int]] = None,
                penalty_slow: Optional[int] = None) -> RecoveryEvent:
        """Register a fatal misprediction detected at ``fast_cycle``.

        ``penalty_slow`` overrides the manager's default flush penalty for
        this event — the simulator passes the penalty of the cluster the
        misprediction was detected in (per-cluster ``flush_penalty_slow``).
        """
        if penalty_slow is None:
            penalty_slow = self.flush_penalty_slow
        event = RecoveryEvent(
            trigger_uid=trigger_uid,
            trigger_seq=trigger_seq,
            fast_cycle=fast_cycle,
            squashed_uids=list(squashed_uids or []),
            refetch_ready_cycle=fast_cycle + penalty_slow * self.clock_ratio,
        )
        self.events.append(event)
        self._blocked_until_fast_cycle = max(self._blocked_until_fast_cycle,
                                             event.refetch_ready_cycle)
        return event

    # ------------------------------------------------------------------ state
    def dispatch_blocked(self, fast_cycle: int) -> bool:
        """True while dispatch must wait for an ongoing recovery to finish."""
        return fast_cycle < self._blocked_until_fast_cycle

    def blocked_until(self) -> int:
        return self._blocked_until_fast_cycle

    @property
    def num_recoveries(self) -> int:
        return len(self.events)

    @property
    def total_squashed(self) -> int:
        return sum(len(e.squashed_uids) for e in self.events)

    def reset(self) -> None:
        self.events.clear()
        self._blocked_until_fast_cycle = 0
