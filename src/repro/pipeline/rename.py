"""Rename stage state: the rename table with its width table and CR tags.

The paper extends the conventional rename table in two ways:

* **Width table (§3.2)** — a 1-bit field per architectural register that
  remembers whether the most recent value bound to the register was narrow.
  When a new instruction is renamed, the width of an already-written-back
  source is read from here (the *actual* width); otherwise the width
  predictor's prediction for the producer is used.
* **CR upper-bits tag and reference counter (§3.5)** — when an instruction is
  steered to the helper cluster under the carry-width (CR) scheme, only the
  low 8 bits of its result live in the helper cluster; the upper 24 bits are
  those of its wide source.  The rename entry of the destination therefore
  carries a tag pointing at the wide register that holds those upper bits,
  and that wide register cannot be deallocated until a reference counter
  drops to zero.

The rename table here tracks, per architectural register, which in-flight uop
will produce it (if any), which cluster that producer was steered to, whether
the value (once known) is narrow, and the CR linkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.isa.registers import ArchReg
from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH
from repro.pipeline.clocking import ClockDomain


@dataclass
class RenameEntry:
    """Rename state for one architectural register."""

    #: uid of the in-flight producer, or ``None`` when the architectural
    #: value is already committed / written back.
    producer_uid: Optional[int] = None
    #: Cluster the producer was steered to (meaningful while in flight, and
    #: kept after writeback so consumers know where the value lives).  A
    #: cluster index: ``ClockDomain`` members for the paper's pair, plain
    #: ints for further helper clusters — compare by value, not identity.
    producer_domain: int = ClockDomain.WIDE
    #: Width-table bit: True when the last written-back value was narrow.
    narrow: bool = True
    #: Width of the value in bits (two's complement).  Tracked precisely
    #: (from actual written-back values / width-bits predictions) when the
    #: machine's cluster selector routes by width; otherwise it mirrors the
    #: ``narrow`` bit's class boundary.
    width_bits: int = NARROW_WIDTH
    #: Whether the producer has written back (so ``narrow`` is an actual
    #: width rather than a prediction).
    written_back: bool = True
    #: CR linkage: architectural register whose wide physical register holds
    #: the upper 24 bits of this (narrow-cluster-resident) value.
    upper_bits_reg: Optional[ArchReg] = None

    def reset(self) -> None:
        self.producer_uid = None
        self.producer_domain = ClockDomain.WIDE
        self.narrow = True
        self.width_bits = NARROW_WIDTH
        self.written_back = True
        self.upper_bits_reg = None


class RenameTable:
    """Architectural-register rename state plus CR reference counters."""

    def __init__(self) -> None:
        self._entries: Dict[ArchReg, RenameEntry] = {r: RenameEntry() for r in ArchReg}
        #: Public live view of the per-register entries, part of the
        #: steering fast path's contract: policies bind it once per run and
        #: read width bits straight off the (in-place mutated, never
        #: replaced) RenameEntry records.  Mutate only through the table's
        #: methods.
        self.table = self._entries
        # CR deallocation counters, keyed by the wide register holding upper
        # bits (§3.5): the wide physical register can only be reclaimed when
        # its counter is zero and its renamer has committed.
        self._upper_refcounts: Dict[ArchReg, int] = {}
        self.cr_links_created = 0

    # ----------------------------------------------------------------- access
    def entry(self, reg: ArchReg) -> RenameEntry:
        return self._entries[reg]

    def entries(self) -> Iterable[RenameEntry]:
        return self._entries.values()

    # ------------------------------------------------------------ rename flow
    def allocate(self, reg: ArchReg, producer_uid: int, domain: int,
                 predicted_narrow: bool,
                 width_bits: Optional[int] = None) -> None:
        """Bind ``reg`` to a new in-flight producer at rename time."""
        entry = self._entries[reg]
        # If the previous binding carried a CR link, renaming the destination
        # releases one reference on the wide upper-bits register.
        if entry.upper_bits_reg is not None:
            self.release_upper_bits(entry.upper_bits_reg)
            entry.upper_bits_reg = None
        entry.producer_uid = producer_uid
        entry.producer_domain = domain
        entry.narrow = predicted_narrow
        entry.width_bits = (width_bits if width_bits is not None
                            else (NARROW_WIDTH if predicted_narrow
                                  else MACHINE_WIDTH))
        entry.written_back = False

    def writeback(self, reg: ArchReg, producer_uid: int, narrow: bool,
                  domain: Optional[int] = None,
                  width_bits: Optional[int] = None) -> None:
        """Record that the producer of ``reg`` wrote back with actual width."""
        entry = self._entries[reg]
        if entry.producer_uid != producer_uid:
            # A younger rename already superseded this producer; the width
            # table keeps the younger prediction.
            return
        entry.written_back = True
        entry.narrow = narrow
        entry.width_bits = (width_bits if width_bits is not None
                            else (NARROW_WIDTH if narrow else MACHINE_WIDTH))
        if domain is not None:
            entry.producer_domain = domain

    def source_width_known(self, reg: ArchReg) -> bool:
        """True if the source's width can be read as fact (already written back)."""
        return self._entries[reg].written_back

    def source_is_narrow(self, reg: ArchReg) -> bool:
        """Width-table view of a source: actual width if known, else last prediction."""
        return self._entries[reg].narrow

    def source_widths(self, regs) -> list:
        """Bulk :meth:`source_is_narrow` over a register sequence."""
        entries = self._entries
        return [entries[reg].narrow for reg in regs]

    def source_width_bits(self, reg: ArchReg) -> int:
        """Expected width of a source value in bits (width-aware steering)."""
        return self._entries[reg].width_bits

    def producer_domain(self, reg: ArchReg) -> int:
        return self._entries[reg].producer_domain

    def producer_uid(self, reg: ArchReg) -> Optional[int]:
        return self._entries[reg].producer_uid

    # ----------------------------------------------------------------- CR tags
    def link_upper_bits(self, dest: ArchReg, wide_source: ArchReg) -> None:
        """Attach a CR tag: ``dest``'s upper 24 bits live in ``wide_source``."""
        entry = self._entries[dest]
        entry.upper_bits_reg = ArchReg(wide_source)
        self._upper_refcounts[ArchReg(wide_source)] = (
            self._upper_refcounts.get(ArchReg(wide_source), 0) + 1)
        self.cr_links_created += 1

    def release_upper_bits(self, wide_source: ArchReg) -> None:
        """Drop one CR reference on ``wide_source`` (renamer deallocation)."""
        reg = ArchReg(wide_source)
        count = self._upper_refcounts.get(reg, 0)
        if count <= 1:
            self._upper_refcounts.pop(reg, None)
        else:
            self._upper_refcounts[reg] = count - 1

    def upper_bits_refcount(self, wide_source: ArchReg) -> int:
        """Current CR reference count of a wide register (0 = deallocatable)."""
        return self._upper_refcounts.get(ArchReg(wide_source), 0)

    def can_deallocate(self, wide_source: ArchReg) -> bool:
        """§3.5 rule: the wide register frees only when its counter is zero."""
        return self.upper_bits_refcount(wide_source) == 0

    # ------------------------------------------------------------------ misc
    def reset(self) -> None:
        for entry in self._entries.values():
            entry.reset()
        self._upper_refcounts.clear()
        self.cr_links_created = 0
