"""Frontend: trace-cache fetch and decode bandwidth.

The frontend belongs to the wide clock domain.  Every wide cycle it supplies
up to ``fetch_width`` uops from the trace (through the trace cache), subject
to trace-cache misses which stall fetch for the rebuild penalty.  The §3.3 BR
scheme moves part of conditional-branch target resolution into the frontend;
that is modelled as a per-branch flag computed here (the branch's target can
be formed from CS + EIP + immediate without reading a general register),
which the steering policy then consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.isa.uop import MicroOp
from repro.memory.tracecache import TraceCache, TraceCacheConfig
from repro.trace.trace import Trace


@dataclass(slots=True)
class FetchedUop:
    """A uop leaving the frontend, annotated with frontend-derived facts."""

    uop: MicroOp
    seq: int
    #: §3.3: target address resolvable in the frontend (CS + EIP + immediate)
    target_resolved_in_frontend: bool = False


class Frontend:
    """Fetch/decode stage reading a trace through the trace cache."""

    def __init__(self, trace: Trace, fetch_width: int = 6,
                 trace_cache: Optional[TraceCache] = None,
                 frontend_branch_resolution_fraction: float = 0.9) -> None:
        if fetch_width <= 0:
            raise ValueError("fetch width must be positive")
        if not 0.0 <= frontend_branch_resolution_fraction <= 1.0:
            raise ValueError("frontend branch resolution fraction must be in [0,1]")
        self.trace = trace
        self.fetch_width = fetch_width
        self.trace_cache = trace_cache or TraceCache(TraceCacheConfig())
        self.frontend_branch_resolution_fraction = frontend_branch_resolution_fraction
        self._cursor = 0
        self._seq = 0
        self._stall_until_slow_cycle = 0
        self.fetched = 0
        self.tc_stall_cycles = 0

    # ------------------------------------------------------------------ state
    @property
    def exhausted(self) -> bool:
        """True when every trace uop has been fetched."""
        return self._cursor >= len(self.trace.uops)

    def remaining(self) -> int:
        return len(self.trace.uops) - self._cursor

    # ------------------------------------------------------------------ fetch
    def fetch(self, slow_cycle: int, max_uops: Optional[int] = None) -> List[FetchedUop]:
        """Fetch up to ``fetch_width`` uops for this wide cycle.

        Returns an empty list while the frontend is stalled on a trace-cache
        rebuild or once the trace is exhausted.
        """
        if self.exhausted or slow_cycle < self._stall_until_slow_cycle:
            return []
        budget = self.fetch_width if max_uops is None else min(self.fetch_width, max_uops)
        fetched: List[FetchedUop] = []
        uops = self.trace.uops
        total = len(uops)
        tc_fetch = self.trace_cache.fetch
        fraction = self.frontend_branch_resolution_fraction
        while budget > 0 and self._cursor < total:
            uop = uops[self._cursor]
            penalty = tc_fetch(uop.pc)
            if penalty > 0:
                # Miss: this fetch group stops here and the frontend stalls
                # while the trace segment is rebuilt from UL1.
                self._stall_until_slow_cycle = slow_cycle + penalty
                self.tc_stall_cycles += penalty
                break
            # Frontend resolvability is a pure function of the (shared) uop
            # and the resolution fraction, so it is memoised on the uop: a
            # trace reused across the runs of a policy sweep pays once.
            memo = uop.__dict__.get("_fe_resolve_memo")
            if memo is not None and memo[0] == fraction:
                resolved = memo[1]
            else:
                resolved = self._resolves_in_frontend(uop)
                uop._fe_resolve_memo = (fraction, resolved)
            fetched.append(FetchedUop(
                uop=uop,
                seq=self._seq,
                target_resolved_in_frontend=resolved,
            ))
            self._cursor += 1
            self._seq += 1
            self.fetched += 1
            budget -= 1
        return fetched

    def _resolves_in_frontend(self, uop: MicroOp) -> bool:
        """§3.3: immediate-relative conditional branches resolve in the frontend.

        Such branches add an immediate displacement to CS:EIP, both of which
        are available at decode, and are tagged by their unique operand
        pattern.  The synthetic traces mark those branches by carrying no
        general-register source other than FLAGS, which is the same condition.
        """
        if not uop.is_cond_branch:
            return False
        has_gpr_source = any(not r.is_flags for r in uop.srcs)
        if has_gpr_source:
            return False
        # Deterministic pseudo-random thinning lets experiments model an ISA
        # where a fraction of conditional branches use register-indirect
        # targets and cannot be resolved early.
        if self.frontend_branch_resolution_fraction >= 1.0:
            return True
        bucket = (uop.pc >> 2) % 1000 / 1000.0
        return bucket < self.frontend_branch_resolution_fraction

    def next_seq(self) -> int:
        """Sequence number that will be assigned to the next fetched uop."""
        return self._seq

    def reset(self) -> None:
        self._cursor = 0
        self._seq = 0
        self._stall_until_slow_cycle = 0
        self.fetched = 0
        self.tc_stall_cycles = 0
        self.trace_cache.reset()
