"""Clock domains of the helper-cluster machine (§2.2).

The integer ALU and its bypass loop limit the backend frequency, and that
limit scales with the datapath width (typical ALU latency ~ log N in the
operand width).  The 8-bit helper backend can therefore be clocked 2x faster
than the 32-bit backend while keeping the two clocks synchronised (no
resynchronisation penalty on cluster crossings).

The simulator advances time in *fast* cycles (helper-cluster cycles).  The
wide cluster — and the frontend and commit stages, which belong to the wide
domain — only act on fast cycles that are multiples of the clock ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum


class ClockDomain(IntEnum):
    """The two clock domains of the machine.

    An ``IntEnum`` so the simulator's per-uop dict probes keyed by domain
    hash at C speed.
    """

    WIDE = 0      # 32-bit backend, frontend, commit
    NARROW = 1    # 8-bit helper backend


@dataclass(frozen=True)
class ClockingModel:
    """Conversion between slow (wide) and fast (narrow) cycles.

    Attributes
    ----------
    ratio:
        How many fast cycles fit in one slow cycle.  The paper's design point
        is 2 (§2.2); a ratio of 1 degenerates to a symmetric two-cluster
        machine and is used by the clock-ratio ablation.
    """

    ratio: int = 2

    def __post_init__(self) -> None:
        if self.ratio < 1:
            raise ValueError(f"clock ratio must be >= 1, got {self.ratio}")

    # ------------------------------------------------------------- membership
    def is_wide_cycle(self, fast_cycle: int) -> bool:
        """True when the wide domain (and frontend/commit) is active."""
        return fast_cycle % self.ratio == 0

    def is_narrow_cycle(self, fast_cycle: int) -> bool:
        """The narrow domain acts every fast cycle."""
        return True

    def domain_active(self, domain: ClockDomain, fast_cycle: int) -> bool:
        if domain == ClockDomain.WIDE:
            return self.is_wide_cycle(fast_cycle)
        return self.is_narrow_cycle(fast_cycle)

    # ------------------------------------------------------------ conversions
    def slow_to_fast(self, slow_cycles: int | float) -> int:
        """Convert a latency in slow cycles to fast cycles (rounded up)."""
        fast = slow_cycles * self.ratio
        return int(-(-fast // 1))  # ceil for float inputs

    def fast_to_slow(self, fast_cycles: int | float) -> float:
        """Convert fast cycles to (possibly fractional) slow cycles."""
        return fast_cycles / self.ratio

    def exec_latency(self, domain: ClockDomain, latency_slow: int) -> int:
        """Execution latency of an op, in fast cycles, for the given domain.

        A one-slow-cycle ALU op costs ``ratio`` fast cycles in the wide
        cluster but only one fast cycle in the helper cluster — that is the
        entire performance argument for the helper cluster.
        """
        if latency_slow < 1:
            raise ValueError(f"latency must be >= 1 slow cycle, got {latency_slow}")
        if domain == ClockDomain.WIDE:
            return latency_slow * self.ratio
        return latency_slow

    def next_active_cycle(self, domain: ClockDomain, fast_cycle: int) -> int:
        """First fast cycle >= ``fast_cycle`` on which ``domain`` is active."""
        if domain == ClockDomain.NARROW:
            return fast_cycle
        remainder = fast_cycle % self.ratio
        return fast_cycle if remainder == 0 else fast_cycle + (self.ratio - remainder)
