"""Clock domains of the helper-cluster machine (§2.2), generalised to N clusters.

The integer ALU and its bypass loop limit the backend frequency, and that
limit scales with the datapath width (typical ALU latency ~ log N in the
operand width).  The 8-bit helper backend can therefore be clocked 2x faster
than the 32-bit backend while keeping the two clocks synchronised (no
resynchronisation penalty on cluster crossings).

The simulator advances time in *fast* cycles — the cycles of the fastest
cluster in the topology.  Each cluster c has a *period*: the number of fast
cycles between its active edges.  The wide (host) cluster — and the frontend
and commit stages, which belong to it — only act on fast cycles that are
multiples of its period.  The paper's two-cluster design point is periods
``(2, 1)``: the wide backend every second fast cycle, the helper every cycle.

Domains are small integers (the cluster index in the topology).  The
:class:`ClockDomain` enum names the two domains of the paper's machine and is
kept for the two-cluster API; additional helper clusters simply use their
integer index.  ``IntEnum`` members hash and compare as their integer value,
so enum and plain-int domains interoperate everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from math import lcm
from typing import Sequence, Tuple


class ClockDomain(IntEnum):
    """The two clock domains of the paper's machine.

    An ``IntEnum`` so the simulator's per-uop dict probes keyed by domain
    hash at C speed, and so domains beyond the paper's pair can be plain
    cluster indices (2, 3, ...) without a dedicated member.
    """

    WIDE = 0      # 32-bit backend, frontend, commit
    NARROW = 1    # 8-bit helper backend


@dataclass(frozen=True)
class ClockingModel:
    """Conversion between slow (wide) cycles, fast cycles and cluster clocks.

    Attributes
    ----------
    ratio:
        How many fast cycles fit in one slow (wide/host) cycle.  The paper's
        design point is 2 (§2.2); a ratio of 1 degenerates to a symmetric
        machine and is used by the clock-ratio ablation.
    periods:
        Per-domain activation period in fast cycles, indexed by cluster
        (domain) number.  Defaults to ``(ratio, 1)`` — the paper's wide +
        helper pair.  Build multi-cluster models with :meth:`from_ratios`.
    """

    ratio: int = 2
    periods: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.ratio < 1:
            raise ValueError(f"clock ratio must be >= 1, got {self.ratio}")
        if not self.periods:
            object.__setattr__(self, "periods", (self.ratio, 1))
        for period in self.periods:
            if period < 1:
                raise ValueError(f"domain periods must be >= 1, got {self.periods}")
        if self.periods[0] != self.ratio:
            raise ValueError("the host domain's period must equal the clock ratio")

    @classmethod
    def from_ratios(cls, ratios: Sequence[int]) -> "ClockingModel":
        """Build a model from per-cluster clock multipliers.

        ``ratios[c]`` is how many times faster cluster ``c`` is clocked than
        the host cluster (``ratios[0]`` must be 1).  The fast cycle is the
        least common multiple of the multipliers, so every cluster's clock
        edge lands exactly on a fast cycle (synchronous clocks, no
        resynchronisation penalty — §2.2).
        """
        if not ratios:
            raise ValueError("at least one cluster ratio is required")
        if ratios[0] != 1:
            raise ValueError("the host cluster's clock ratio must be 1")
        for ratio in ratios:
            if ratio < 1:
                raise ValueError(f"cluster clock ratios must be >= 1, got {ratios}")
        base = lcm(*ratios)
        periods = tuple(base // ratio for ratio in ratios)
        return cls(ratio=base, periods=periods)

    @property
    def num_domains(self) -> int:
        return len(self.periods)

    # ------------------------------------------------------------- membership
    def is_wide_cycle(self, fast_cycle: int) -> bool:
        """True when the wide domain (and frontend/commit) is active."""
        return fast_cycle % self.ratio == 0

    def is_narrow_cycle(self, fast_cycle: int) -> bool:
        """Whether the paper's helper domain is active (period-1 helpers always are)."""
        if len(self.periods) < 2:
            return True
        return fast_cycle % self.periods[1] == 0

    def domain_active(self, domain: int, fast_cycle: int) -> bool:
        period = self.periods[domain]
        return period == 1 or fast_cycle % period == 0

    # ------------------------------------------------------------ conversions
    def slow_to_fast(self, slow_cycles: int | float) -> int:
        """Convert a latency in slow cycles to fast cycles (rounded up)."""
        fast = slow_cycles * self.ratio
        return int(-(-fast // 1))  # ceil for float inputs

    def fast_to_slow(self, fast_cycles: int | float) -> float:
        """Convert fast cycles to (possibly fractional) slow cycles."""
        return fast_cycles / self.ratio

    def exec_latency(self, domain: int, latency_slow: int) -> int:
        """Execution latency of an op, in fast cycles, for the given domain.

        Opcode latencies are defined in cycles of the executing cluster's own
        clock, so an op of latency L takes ``L * period`` fast cycles.  A
        one-slow-cycle ALU op therefore costs ``ratio`` fast cycles in the
        wide cluster but only one fast cycle in a full-speed helper cluster —
        that is the entire performance argument for the helper cluster.
        """
        if latency_slow < 1:
            raise ValueError(f"latency must be >= 1 slow cycle, got {latency_slow}")
        return latency_slow * self.periods[domain]

    def next_active_cycle(self, domain: int, fast_cycle: int) -> int:
        """First fast cycle >= ``fast_cycle`` on which ``domain`` is active."""
        period = self.periods[domain]
        if period == 1:
            return fast_cycle
        remainder = fast_cycle % period
        return fast_cycle if remainder == 0 else fast_cycle + (period - remainder)
