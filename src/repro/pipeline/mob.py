"""Memory Order Buffer shared by both clusters (§3.4).

The paper notes that there is a single MOB, which is what makes load
replication (LR) possible: a load's result register can be allocated in both
clusters because the memory access itself is not cluster-private.

The model tracks in-flight loads and stores, enforces a simple capacity
limit, and provides store-to-load forwarding detection so the simulator can
short-circuit the DL0 latency when a load hits a pending store to the same
address (a minor effect, but it keeps the structure honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class MOBEntry:
    """One in-flight memory operation."""

    uid: int
    seq: int
    is_store: bool
    addr: Optional[int]
    size: int = 4


class MemoryOrderBuffer:
    """A single, shared load/store queue."""

    def __init__(self, load_entries: int = 48, store_entries: int = 32) -> None:
        if load_entries <= 0 or store_entries <= 0:
            raise ValueError("MOB capacities must be positive")
        self.load_capacity = load_entries
        self.store_capacity = store_entries
        self._loads: Dict[int, MOBEntry] = {}
        self._stores: Dict[int, MOBEntry] = {}
        self.forwarded = 0
        self.load_allocations = 0
        self.store_allocations = 0

    # --------------------------------------------------------------- capacity
    def can_allocate(self, is_store: bool) -> bool:
        if is_store:
            return len(self._stores) < self.store_capacity
        return len(self._loads) < self.load_capacity

    def allocate(self, uid: int, seq: int, is_store: bool, addr: Optional[int],
                 size: int = 4) -> MOBEntry:
        """Allocate an entry at dispatch.  Raises when the queue is full."""
        if not self.can_allocate(is_store):
            raise RuntimeError("MOB full")
        entry = MOBEntry(uid=uid, seq=seq, is_store=is_store, addr=addr, size=size)
        if is_store:
            self._stores[uid] = entry
            self.store_allocations += 1
        else:
            self._loads[uid] = entry
            self.load_allocations += 1
        return entry

    def release(self, uid: int) -> None:
        """Free the entry at commit (or squash)."""
        self._loads.pop(uid, None)
        self._stores.pop(uid, None)

    # ------------------------------------------------------------- forwarding
    def forwarding_store(self, load_seq: int, addr: Optional[int]) -> Optional[MOBEntry]:
        """Return the youngest older store to the same address, if any."""
        if addr is None:
            return None
        best: Optional[MOBEntry] = None
        for store in self._stores.values():
            if store.addr == addr and store.seq < load_seq:
                if best is None or store.seq > best.seq:
                    best = store
        if best is not None:
            self.forwarded += 1
        return best

    # ----------------------------------------------------------------- status
    def load_occupancy(self) -> int:
        return len(self._loads)

    def store_occupancy(self) -> int:
        return len(self._stores)

    def flush_from(self, seq: int) -> List[int]:
        """Drop all entries with sequence number >= ``seq``; returns their uids."""
        squashed = [uid for uid, e in list(self._loads.items()) if e.seq >= seq]
        squashed += [uid for uid, e in list(self._stores.items()) if e.seq >= seq]
        for uid in squashed:
            self.release(uid)
        return squashed

    def reset(self) -> None:
        self._loads.clear()
        self._stores.clear()
        self.forwarded = 0
        self.load_allocations = 0
        self.store_allocations = 0
