"""Reorder buffer and in-order commit (Table 1: commit width 6).

The ROB bounds the number of in-flight uops and retires them in program order
at up to ``commit_width`` per wide-cluster cycle.  Commit happens in the wide
clock domain regardless of which cluster executed the uop.

Storage is a struct-of-arrays ring (see DESIGN.md, "Hot state & compiled
core"): uid, sequence number and completion state live in preallocated
parallel ``array('q')`` columns indexed by ring slot, with the simulator's
payload objects in a parallel list.  :class:`ROBEntry` objects are only
materialised for the entries a :meth:`ReorderBuffer.commit` call retires —
the in-flight window itself is plain index arithmetic, which is also what
the compiled backend's commit-scan kernel operates on.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Optional

#: ``state`` column values: an entry is retirable when bit 0 is set.
_STATE_COMPLETED = 1
_STATE_SQUASHED = 3          # squashed implies completed (retired as a bubble)


@dataclass(slots=True)
class ROBEntry:
    """One reorder-buffer entry (materialised at retirement)."""

    uid: int
    seq: int
    completed: bool = False
    squashed: bool = False
    payload: object = None


class ReorderBuffer:
    """A bounded, in-order reorder buffer."""

    def __init__(self, size: int = 128, commit_width: int = 6) -> None:
        if size <= 0 or commit_width <= 0:
            raise ValueError("ROB size and commit width must be positive")
        self.size = size
        self.commit_width = commit_width
        # ---- struct-of-arrays ring storage ------------------------------
        #: uid per ring slot
        self.uid_ring = array("q", bytes(8 * size))
        #: program-order sequence number per ring slot
        self.seq_ring = array("q", bytes(8 * size))
        #: completion state per ring slot (see ``_STATE_*``)
        self.state_ring = array("q", bytes(8 * size))
        #: dyn slot (DynTable index) per ring slot, -1 when the payload is
        #: not a simulator dyn record; the compiled ``resolve_deps`` kernel
        #: resolves producer clusters through it
        self.dyn_ring = array("q", b"\xff" * (8 * size))
        #: simulator payload per ring slot (None when the slot is free)
        self.payload_ring: List[object] = [None] * size
        #: ring control block shared with the compiled dispatch kernel:
        #: slot 0 = head index, slot 1 = occupancy count
        self.ctrl = array("q", bytes(16))
        self._by_uid: dict[int, int] = {}
        #: Public live view of the uid index, mapping uid -> ring slot (the
        #: simulator resolves producer clusters per source operand through
        #: it, reading ``payload_ring[slot]`` / ``seq_ring[slot]``).
        #: Aliases the internal dict for the buffer's lifetime — mutate only
        #: through the buffer's methods.
        self.by_uid = self._by_uid
        self.committed = 0
        #: optional compiled commit-scan kernel, bound by
        #: :meth:`repro.sim.hotstate.HotState.bind_kernel`
        self._scan_kernel = None
        self._scan_state = None

    def bind_scan_kernel(self, kernel_fn, cstate) -> None:
        """Route :meth:`commit_scan` through a compiled kernel."""
        self._scan_kernel = kernel_fn
        self._scan_state = cstate

    # --------------------------------------------------------------- capacity
    @property
    def _head(self) -> int:
        return self.ctrl[0]

    @property
    def _count(self) -> int:
        return self.ctrl[1]

    def __len__(self) -> int:
        return self.ctrl[1]

    @property
    def free_slots(self) -> int:
        return self.size - self.ctrl[1]

    def is_full(self) -> bool:
        return self.ctrl[1] >= self.size

    def is_empty(self) -> bool:
        return self.ctrl[1] == 0

    # ---------------------------------------------------------------- allocate
    def allocate(self, uid: int, seq: int, payload: object = None,
                 dyn_slot: int = -1) -> None:
        """Allocate an entry at the tail.  Raises if the ROB is full."""
        ctrl = self.ctrl
        count = ctrl[1]
        if count >= self.size:
            raise RuntimeError("ROB full")
        head = ctrl[0]
        size = self.size
        if count and seq <= self.seq_ring[(head + count - 1) % size]:
            raise ValueError("ROB allocations must be in program order")
        slot = (head + count) % size
        self.uid_ring[slot] = uid
        self.seq_ring[slot] = seq
        self.state_ring[slot] = 0
        self.dyn_ring[slot] = dyn_slot
        self.payload_ring[slot] = payload
        self._by_uid[uid] = slot
        ctrl[1] = count + 1

    # ---------------------------------------------------------------- complete
    def mark_completed(self, uid: int) -> None:
        slot = self._by_uid.get(uid)
        if slot is not None:
            self.state_ring[slot] |= _STATE_COMPLETED

    def mark_squashed(self, uid: int) -> None:
        """Squashed entries still occupy their slot until commit drains them.

        The flushing recovery re-executes the squashed work in the wide
        cluster under a new uid; the original entry is retired as a bubble.
        """
        slot = self._by_uid.get(uid)
        if slot is not None:
            self.state_ring[slot] = _STATE_SQUASHED

    def is_completed(self, uid: int) -> bool:
        slot = self._by_uid.get(uid)
        return slot is not None and bool(self.state_ring[slot] & _STATE_COMPLETED)

    # ------------------------------------------------------------------ commit
    def commit_scan(self) -> int:
        """Number of contiguous completed head entries retirable this cycle."""
        ctrl = self.ctrl
        if self._scan_kernel is not None:
            return self._scan_kernel(self._scan_state, ctrl[0], ctrl[1])
        head = ctrl[0]
        count = ctrl[1]
        size = self.size
        state = self.state_ring
        limit = count if count < self.commit_width else self.commit_width
        retirable = 0
        while retirable < limit and state[(head + retirable) % size] & 1:
            retirable += 1
        return retirable

    def commit(self, retirable: Optional[int] = None) -> List[ROBEntry]:
        """Retire up to ``commit_width`` completed entries from the head.

        ``retirable`` may be passed by callers that already ran
        :meth:`commit_scan` (the compiled backend does); it must equal what
        the scan would return.
        """
        if retirable is None:
            retirable = self.commit_scan()
        if retirable == 0:
            return []
        ctrl = self.ctrl
        head = ctrl[0]
        size = self.size
        uid_ring = self.uid_ring
        seq_ring = self.seq_ring
        state_ring = self.state_ring
        payload_ring = self.payload_ring
        by_uid = self._by_uid
        retired: List[ROBEntry] = []
        committed = 0
        for i in range(retirable):
            slot = (head + i) % size
            uid = uid_ring[slot]
            squashed = state_ring[slot] == _STATE_SQUASHED
            retired.append(ROBEntry(uid=uid, seq=seq_ring[slot],
                                    completed=True, squashed=squashed,
                                    payload=payload_ring[slot]))
            payload_ring[slot] = None
            del by_uid[uid]
            if not squashed:
                committed += 1
        self.committed += committed
        ctrl[0] = (head + retirable) % size
        ctrl[1] -= retirable
        return retired

    def head_seq(self) -> Optional[int]:
        """Sequence number of the oldest in-flight uop (None when empty)."""
        ctrl = self.ctrl
        return self.seq_ring[ctrl[0]] if ctrl[1] else None

    def occupancy(self) -> int:
        return self.ctrl[1]

    def reset(self) -> None:
        self.ctrl[0] = 0
        self.ctrl[1] = 0
        self.payload_ring[:] = [None] * self.size
        self._by_uid.clear()
        self.committed = 0
