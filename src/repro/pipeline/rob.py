"""Reorder buffer and in-order commit (Table 1: commit width 6).

The ROB bounds the number of in-flight uops and retires them in program order
at up to ``commit_width`` per wide-cluster cycle.  Commit happens in the wide
clock domain regardless of which cluster executed the uop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional


@dataclass(slots=True)
class ROBEntry:
    """One reorder-buffer entry."""

    uid: int
    seq: int
    completed: bool = False
    squashed: bool = False
    payload: object = None


class ReorderBuffer:
    """A bounded, in-order reorder buffer."""

    def __init__(self, size: int = 128, commit_width: int = 6) -> None:
        if size <= 0 or commit_width <= 0:
            raise ValueError("ROB size and commit width must be positive")
        self.size = size
        self.commit_width = commit_width
        self._entries: Deque[ROBEntry] = deque()
        self._by_uid: dict[int, ROBEntry] = {}
        #: Public live view of the uid index (the simulator resolves
        #: producer clusters per source operand through it).  Aliases the
        #: internal dict for the buffer's lifetime — mutate only through
        #: the buffer's methods.
        self.by_uid = self._by_uid
        self.committed = 0

    # --------------------------------------------------------------- capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_slots(self) -> int:
        return self.size - len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def is_empty(self) -> bool:
        return not self._entries

    # ---------------------------------------------------------------- allocate
    def allocate(self, uid: int, seq: int, payload: object = None) -> ROBEntry:
        """Allocate an entry at the tail.  Raises if the ROB is full."""
        if self.is_full():
            raise RuntimeError("ROB full")
        if self._entries and seq <= self._entries[-1].seq:
            raise ValueError("ROB allocations must be in program order")
        entry = ROBEntry(uid=uid, seq=seq, payload=payload)
        self._entries.append(entry)
        self._by_uid[uid] = entry
        return entry

    # ---------------------------------------------------------------- complete
    def mark_completed(self, uid: int) -> None:
        entry = self._by_uid.get(uid)
        if entry is not None:
            entry.completed = True

    def mark_squashed(self, uid: int) -> None:
        """Squashed entries still occupy their slot until commit drains them.

        The flushing recovery re-executes the squashed work in the wide
        cluster under a new uid; the original entry is retired as a bubble.
        """
        entry = self._by_uid.get(uid)
        if entry is not None:
            entry.squashed = True
            entry.completed = True

    def is_completed(self, uid: int) -> bool:
        entry = self._by_uid.get(uid)
        return bool(entry and entry.completed)

    # ------------------------------------------------------------------ commit
    def commit(self) -> List[ROBEntry]:
        """Retire up to ``commit_width`` completed entries from the head."""
        retired: List[ROBEntry] = []
        while self._entries and len(retired) < self.commit_width:
            head = self._entries[0]
            if not head.completed:
                break
            self._entries.popleft()
            del self._by_uid[head.uid]
            retired.append(head)
            if not head.squashed:
                self.committed += 1
        return retired

    def head_seq(self) -> Optional[int]:
        """Sequence number of the oldest in-flight uop (None when empty)."""
        return self._entries[0].seq if self._entries else None

    def occupancy(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self._by_uid.clear()
        self.committed = 0
