"""Per-cluster issue queue (scheduler) with wakeup/select.

Table 1 gives each backend a 32-entry scheduler with an issue width of 3.
Entries wait for their source operands to become ready (wakeup) and are then
selected oldest-first up to the issue width (select).  The helper cluster's
queue is identical in structure but is clocked at the fast frequency, so it
gets a select opportunity every fast cycle.

The queue maintains an explicit *ready set* so the simulator's inner loop
never scans the whole scheduler: ``ready_count`` is O(1) and ``select`` only
orders the entries that are actually ready.  Selection order is identical to
a stable oldest-first sort over the whole queue: ties on the sequence number
are broken by dispatch (insertion) order, tracked with a monotonically
increasing counter.

Storage is struct-of-arrays (see DESIGN.md, "Hot state & compiled core"):
entry state lives in preallocated parallel ``array('q')`` columns keyed by a
small integer *slot*, with :class:`IssueQueueEntry` objects kept only as
carriers in the ``payloads`` column.  The arrays are authoritative for the
outstanding-source count and the age key while an entry is queued; every
path that hands an entry back out (``select`` / ``flush_from`` / ``drain``)
writes the current array state back into the object first.  The compiled
backend (:mod:`repro.sim.hotstate`) operates directly on the same columns.

The issue queue also exposes the occupancy and ready-but-not-issued counts
that the NREADY load-imbalance metric (§3.7) and the IR splitting heuristic
consume.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional

#: Bits reserved for the dispatch-order stamp inside the packed age key.
#: ``agekey = (seq << ORDER_BITS) | order`` sorts exactly like the tuple
#: ``(seq, order)`` as long as ``seq < 2**31`` and ``order < 2**32`` —
#: both far beyond any trace the harness generates (the packed key stays
#: below 2**63, so it fits a signed 64-bit array element).
ORDER_BITS = 32


@dataclass(slots=True)
class IssueQueueEntry:
    """One scheduler entry."""

    uid: int
    seq: int                      # program order sequence number (age)
    remaining_sources: int        # outstanding source operands
    fu_latency: int               # execution latency in fast cycles
    is_memory: bool = False
    payload: object = None        # opaque reference back to the simulator's record
    #: dispatch-order stamp assigned by :meth:`IssueQueue.insert`; breaks seq
    #: ties the way a stable sort over the insertion-ordered entry dict used to
    order: int = 0

    @property
    def ready(self) -> bool:
        return self.remaining_sources == 0


class IssueQueue:
    """A bounded issue queue with explicit wakeup and oldest-first select."""

    def __init__(self, size: int = 32, issue_width: int = 3,
                 memory_ports: Optional[int] = None) -> None:
        if size <= 0 or issue_width <= 0:
            raise ValueError("issue queue size and width must be positive")
        self.size = size
        self.issue_width = issue_width
        self.memory_ports = memory_ports
        #: control block shared with the compiled dispatch kernel:
        #: slot 0 is the dispatch-order counter stamped at insert
        self.ctrl = array("q", bytes(8))
        # ---- struct-of-arrays storage, indexed by slot -------------------
        # Capacity starts at ``size`` and doubles on forced (recovery)
        # inserts past the architectural size; ``size`` stays the logical
        # capacity used by ``is_full``.
        capacity = size
        self._capacity = capacity
        #: packed (seq << ORDER_BITS) | order age key per slot
        self.agekey = array("q", bytes(8 * capacity))
        #: outstanding source-operand count per slot (authoritative)
        self.remaining = array("q", bytes(8 * capacity))
        #: 1 if the slot holds a memory operation
        self.mem_flags = array("q", bytes(8 * capacity))
        #: uid stored in each slot (valid only for occupied slots)
        self.uids = array("q", bytes(8 * capacity))
        #: carrier objects per slot (None when the slot is free).  Legacy
        #: ``insert`` stores the :class:`IssueQueueEntry` itself; the
        #: simulator's ``insert_uop`` fast path stores its dyn record
        #: directly and entries are materialised on the removal paths.
        self.payloads: List[object] = [None] * capacity
        self._free = list(range(capacity - 1, -1, -1))
        #: uid -> slot for every queued entry
        self._entries: Dict[int, int] = {}
        #: uid -> slot for entries with no outstanding sources
        self._ready: Dict[int, int] = {}
        #: Public *live views* of the queue state, part of the hot-path
        #: contract: the simulator's event wheel reads these dicts directly
        #: (occupancy = len(entries), readiness = bool(ready_entries))
        #: instead of paying a method call per cycle.  They map uid -> slot
        #: and alias the internal dicts for the queue's whole lifetime —
        #: mutate only through the queue's methods (or the documented
        #: hot-state wake sequence in :mod:`repro.sim.simulator`).
        self.entries = self._entries
        self.ready_entries = self._ready
        #: Live view of the free-slot stack (the compiled dispatch kernel
        #: pops from its tail exactly like :meth:`insert_uop`; it punts
        #: back to python when the stack is empty, so physical growth only
        #: ever happens through :meth:`_grow`).
        self.free_stack = self._free
        # Statistics for imbalance measurement.
        self.total_occupancy_samples = 0
        self.occupancy_accum = 0
        self.ready_not_issued_accum = 0

    # --------------------------------------------------------------- capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_slots(self) -> int:
        return self.size - len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def __contains__(self, uid: int) -> bool:
        return uid in self._entries

    def _grow(self) -> None:
        """Double the physical slot capacity (forced inserts only)."""
        old = self._capacity
        grow_by = old
        self.agekey.extend(array("q", bytes(8 * grow_by)))
        self.remaining.extend(array("q", bytes(8 * grow_by)))
        self.mem_flags.extend(array("q", bytes(8 * grow_by)))
        self.uids.extend(array("q", bytes(8 * grow_by)))
        self.payloads.extend([None] * grow_by)
        self._free.extend(range(old + grow_by - 1, old - 1, -1))
        self._capacity = old + grow_by

    # ----------------------------------------------------------------- insert
    # hot-path
    def insert(self, entry: IssueQueueEntry, force: bool = False) -> None:
        """Dispatch an entry into the queue.

        Raises if the queue is full unless ``force`` is set.  Forced inserts
        are reserved for flushing-recovery re-dispatch, which must make
        forward progress even when the scheduler is congested (the real
        machine reserves entries for re-steered instructions).
        """
        entries = self._entries
        if len(entries) >= self.size and not force:
            raise RuntimeError("issue queue full")
        uid = entry.uid
        if uid in entries:
            raise ValueError(
                f"uid {uid} already in issue queue")  # lint: disable=REP004(raise-only path: the f-string is built only when the duplicate-uid invariant is already broken)
        if not self._free:
            self._grow()
        slot = self._free.pop()
        ctrl = self.ctrl
        order = ctrl[0]
        entry.order = order
        ctrl[0] = order + 1
        self.agekey[slot] = (entry.seq << ORDER_BITS) | order
        remaining = entry.remaining_sources
        self.remaining[slot] = remaining
        self.mem_flags[slot] = 1 if entry.is_memory else 0
        self.uids[slot] = uid
        self.payloads[slot] = entry
        entries[uid] = slot
        if remaining == 0:
            self._ready[uid] = slot

    # hot-path
    def insert_uop(self, uid: int, seq: int, remaining: int, is_memory: bool,
                   payload: object, force: bool = False) -> None:
        """Column-direct dispatch: :meth:`insert` without the entry object.

        The simulator's hot path stores its dyn record as the payload; an
        :class:`IssueQueueEntry` is materialised only if the slot leaves
        through one of the object-returning removal paths.  Identical
        bookkeeping to :meth:`insert` — including the order stamp taken on
        *every* insert (forced re-inserts restamp, preserving the legacy
        tie-break behaviour).
        """
        entries = self._entries
        if len(entries) >= self.size and not force:
            raise RuntimeError("issue queue full")
        if uid in entries:
            raise ValueError(
                f"uid {uid} already in issue queue")  # lint: disable=REP004(raise-only path: the f-string is built only when the duplicate-uid invariant is already broken)
        if not self._free:
            self._grow()
        slot = self._free.pop()
        ctrl = self.ctrl
        order = ctrl[0]
        ctrl[0] = order + 1
        self.agekey[slot] = (seq << ORDER_BITS) | order
        self.remaining[slot] = remaining
        self.mem_flags[slot] = 1 if is_memory else 0
        self.uids[slot] = uid
        self.payloads[slot] = payload
        entries[uid] = slot
        if remaining == 0:
            self._ready[uid] = slot

    def _materialise(self, slot: int, remaining: int) -> IssueQueueEntry:
        """Wrap a raw-payload slot in an entry for the object-returning API."""
        agekey = self.agekey[slot]
        return IssueQueueEntry(
            uid=self.uids[slot], seq=agekey >> ORDER_BITS,
            remaining_sources=remaining, fu_latency=0,
            is_memory=bool(self.mem_flags[slot]),
            payload=self.payloads[slot],
            order=agekey & ((1 << ORDER_BITS) - 1))

    # ----------------------------------------------------------------- wakeup
    # hot-path
    def wakeup(self, uid: int, count: int = 1) -> None:
        """Mark ``count`` source operands of ``uid`` as ready."""
        slot = self._entries.get(uid)
        if slot is None:
            return
        remaining = self.remaining[slot] - count
        if remaining <= 0:
            remaining = 0
            self._ready[uid] = slot
        self.remaining[slot] = remaining
        # Keep the carrier coherent for external observers; the simulator's
        # inlined wake path skips this and relies on the removal-path
        # write-back instead.  Raw payloads (``insert_uop``) have no carrier
        # to sync — the columns are the only truth for them.
        payload = self.payloads[slot]
        if type(payload) is IssueQueueEntry:
            payload.remaining_sources = remaining

    # ----------------------------------------------------------------- select
    # hot-path
    def select(self, max_issue: Optional[int] = None,
               memory_slots: Optional[int] = None) -> List[IssueQueueEntry]:
        """Select up to ``issue_width`` ready entries, oldest first.

        ``memory_slots`` optionally caps how many memory operations may issue
        this cycle (DL0 port limit); non-memory entries are unaffected.
        Selected entries are removed from the queue.
        """
        ready = self._ready
        if not ready:
            return []
        budget = self.issue_width if max_issue is None else min(max_issue, self.issue_width)
        if budget <= 0:
            return []
        mem_budget = memory_slots if memory_slots is not None else (
            self.memory_ports if self.memory_ports is not None else budget)
        payloads = self.payloads
        mem_flags = self.mem_flags
        if len(ready) == 1:
            uid, slot = next(iter(ready.items()))
            if mem_flags[slot] and mem_budget <= 0:
                return []
            entry = payloads[slot]
            if type(entry) is not IssueQueueEntry:
                entry = self._materialise(slot, 0)
            self._remove(uid, slot)
            entry.remaining_sources = 0
            return [entry]
        slots = sorted(ready.values(), key=self.agekey.__getitem__)
        selected: List[IssueQueueEntry] = []
        taken = 0
        for slot in slots:
            if taken >= budget:
                break
            if mem_flags[slot]:
                if mem_budget <= 0:
                    continue
                mem_budget -= 1
            entry = payloads[slot]
            if type(entry) is not IssueQueueEntry:
                entry = self._materialise(slot, 0)
            entry.remaining_sources = 0
            selected.append(entry)
            taken += 1
        for entry in selected:
            self._remove(entry.uid, self._entries[entry.uid])
        return selected

    # hot-path
    def select_raw(self, memory_slots: Optional[int] = None) -> List[object]:
        """:meth:`select` returning the slot payloads directly (no entry
        materialisation) — the simulator's issue loop reads everything it
        needs from its own dyn record.  Selection semantics are identical
        to :meth:`select` with the default budget."""
        ready = self._ready
        if not ready:
            return []
        budget = self.issue_width
        mem_budget = memory_slots if memory_slots is not None else (
            self.memory_ports if self.memory_ports is not None else budget)
        payloads = self.payloads
        mem_flags = self.mem_flags
        if len(ready) == 1:
            uid, slot = next(iter(ready.items()))
            if mem_flags[slot] and mem_budget <= 0:
                return []
            payload = payloads[slot]
            self._remove(uid, slot)
            return [payload]
        slots = sorted(ready.values(), key=self.agekey.__getitem__)
        picked: List[int] = []
        taken = 0
        for slot in slots:
            if taken >= budget:
                break
            if mem_flags[slot]:
                if mem_budget <= 0:
                    continue
                mem_budget -= 1
            picked.append(slot)
            taken += 1
        uids = self.uids
        out: List[object] = []
        for slot in picked:
            out.append(payloads[slot])
            self._remove(uids[slot], slot)
        return out

    def _remove(self, uid: int, slot: int) -> None:
        del self._entries[uid]
        self._ready.pop(uid, None)
        self.payloads[slot] = None
        self._free.append(slot)

    # hot-path
    def take_slots(self, slots: List[int]) -> List[IssueQueueEntry]:
        """Remove pre-selected ``slots`` (compiled select) and return entries.

        The compiled backend performs the oldest-first/memory-budget argselect
        over the arrays and hands back slot indices; this write-back path
        mirrors :meth:`select`'s removal exactly.
        """
        payloads = self.payloads
        uids = self.uids
        out: List[IssueQueueEntry] = []
        for slot in slots:
            entry = payloads[slot]
            if type(entry) is not IssueQueueEntry:
                entry = self._materialise(slot, 0)
            entry.remaining_sources = 0
            self._remove(uids[slot], slot)
            out.append(entry)
        return out

    # hot-path
    def take_slots_raw(self, slots: List[int]) -> List[object]:
        """:meth:`take_slots` returning the payloads directly."""
        payloads = self.payloads
        uids = self.uids
        out: List[object] = []
        for slot in slots:
            out.append(payloads[slot])
            self._remove(uids[slot], slot)
        return out

    # ------------------------------------------------------------------ flush
    def flush_from(self, seq: int) -> List[IssueQueueEntry]:
        """Remove and return all entries with sequence number >= ``seq``.

        This implements the paper's flushing recovery (§3.2): on a fatal width
        misprediction every instruction starting from the mispredicted one is
        squashed in the narrow backend.
        """
        agekey = self.agekey
        threshold = seq << ORDER_BITS
        doomed = [slot for slot in self._entries.values()
                  if agekey[slot] >= threshold]
        doomed.sort(key=agekey.__getitem__)
        remaining = self.remaining
        payloads = self.payloads
        uids = self.uids
        result: List[IssueQueueEntry] = []
        for slot in doomed:
            entry = payloads[slot]
            if type(entry) is not IssueQueueEntry:
                entry = self._materialise(slot, remaining[slot])
            else:
                entry.remaining_sources = remaining[slot]
            self._remove(uids[slot], slot)
            result.append(entry)
        return result

    def drain(self) -> List[IssueQueueEntry]:
        """Remove and return everything (used at simulation teardown)."""
        agekey = self.agekey
        slots = sorted(self._entries.values(), key=agekey.__getitem__)
        remaining = self.remaining
        payloads = self.payloads
        uids = self.uids
        result: List[IssueQueueEntry] = []
        for slot in slots:
            entry = payloads[slot]
            if type(entry) is not IssueQueueEntry:
                entry = self._materialise(slot, remaining[slot])
            else:
                entry.remaining_sources = remaining[slot]
            self._remove(uids[slot], slot)
            result.append(entry)
        return result

    # -------------------------------------------------------------- statistics
    # hot-path
    def sample_occupancy(self, cycles: int = 1) -> None:
        """Record occupancy and ready-but-unissued counts for ``cycles`` cycles.

        ``cycles > 1`` is used by the simulator when it fast-forwards over a
        stretch of cycles during which the queue provably does not change: the
        aggregate statistics are exactly what per-cycle sampling would have
        recorded.
        """
        self.total_occupancy_samples += cycles
        self.occupancy_accum += len(self._entries) * cycles
        self.ready_not_issued_accum += len(self._ready) * cycles

    @property
    def mean_occupancy(self) -> float:
        if self.total_occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.total_occupancy_samples

    def ready_count(self) -> int:
        """Number of currently ready (issuable) entries."""
        return len(self._ready)

    def reset_stats(self) -> None:
        self.total_occupancy_samples = 0
        self.occupancy_accum = 0
        self.ready_not_issued_accum = 0
