"""Per-cluster issue queue (scheduler) with wakeup/select.

Table 1 gives each backend a 32-entry scheduler with an issue width of 3.
Entries wait for their source operands to become ready (wakeup) and are then
selected oldest-first up to the issue width (select).  The helper cluster's
queue is identical in structure but is clocked at the fast frequency, so it
gets a select opportunity every fast cycle.

The queue maintains an explicit *ready set* so the simulator's inner loop
never scans the whole scheduler: ``ready_count`` is O(1) and ``select`` only
orders the entries that are actually ready.  Selection order is identical to
a stable oldest-first sort over the whole queue: ties on the sequence number
are broken by dispatch (insertion) order, tracked with a monotonically
increasing counter.

The issue queue also exposes the occupancy and ready-but-not-issued counts
that the NREADY load-imbalance metric (§3.7) and the IR splitting heuristic
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, List, Optional


@dataclass(slots=True)
class IssueQueueEntry:
    """One scheduler entry."""

    uid: int
    seq: int                      # program order sequence number (age)
    remaining_sources: int        # outstanding source operands
    fu_latency: int               # execution latency in fast cycles
    is_memory: bool = False
    payload: object = None        # opaque reference back to the simulator's record
    #: dispatch-order stamp assigned by :meth:`IssueQueue.insert`; breaks seq
    #: ties the way a stable sort over the insertion-ordered entry dict used to
    order: int = 0

    @property
    def ready(self) -> bool:
        return self.remaining_sources == 0


#: Oldest-first selection key: program order, then dispatch order on ties.
_age_key = attrgetter("seq", "order")


class IssueQueue:
    """A bounded issue queue with explicit wakeup and oldest-first select."""

    def __init__(self, size: int = 32, issue_width: int = 3,
                 memory_ports: Optional[int] = None) -> None:
        if size <= 0 or issue_width <= 0:
            raise ValueError("issue queue size and width must be positive")
        self.size = size
        self.issue_width = issue_width
        self.memory_ports = memory_ports
        self._entries: Dict[int, IssueQueueEntry] = {}
        #: dispatch-order counter; stamped onto entries at insert
        self._order_counter = 0
        #: uid -> entry for entries with no outstanding sources
        self._ready: Dict[int, IssueQueueEntry] = {}
        #: Public *live views* of the queue state, part of the hot-path
        #: contract: the simulator's event wheel reads these dicts directly
        #: (occupancy = len(entries), readiness = bool(ready_entries))
        #: instead of paying a method call per cycle.  They alias the
        #: internal dicts for the queue's whole lifetime — mutate only
        #: through the queue's methods.
        self.entries = self._entries
        self.ready_entries = self._ready
        # Statistics for imbalance measurement.
        self.total_occupancy_samples = 0
        self.occupancy_accum = 0
        self.ready_not_issued_accum = 0

    # --------------------------------------------------------------- capacity
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def free_slots(self) -> int:
        return self.size - len(self._entries)

    def is_full(self) -> bool:
        return len(self._entries) >= self.size

    def __contains__(self, uid: int) -> bool:
        return uid in self._entries

    # ----------------------------------------------------------------- insert
    def insert(self, entry: IssueQueueEntry, force: bool = False) -> None:
        """Dispatch an entry into the queue.

        Raises if the queue is full unless ``force`` is set.  Forced inserts
        are reserved for flushing-recovery re-dispatch, which must make
        forward progress even when the scheduler is congested (the real
        machine reserves entries for re-steered instructions).
        """
        if self.is_full() and not force:
            raise RuntimeError("issue queue full")
        if entry.uid in self._entries:
            raise ValueError(f"uid {entry.uid} already in issue queue")
        self._entries[entry.uid] = entry
        entry.order = self._order_counter
        self._order_counter += 1
        if entry.remaining_sources == 0:
            self._ready[entry.uid] = entry

    # ----------------------------------------------------------------- wakeup
    def wakeup(self, uid: int, count: int = 1) -> None:
        """Mark ``count`` source operands of ``uid`` as ready."""
        entry = self._entries.get(uid)
        if entry is None:
            return
        entry.remaining_sources = max(0, entry.remaining_sources - count)
        if entry.remaining_sources == 0:
            self._ready[uid] = entry

    # ----------------------------------------------------------------- select
    def select(self, max_issue: Optional[int] = None,
               memory_slots: Optional[int] = None) -> List[IssueQueueEntry]:
        """Select up to ``issue_width`` ready entries, oldest first.

        ``memory_slots`` optionally caps how many memory operations may issue
        this cycle (DL0 port limit); non-memory entries are unaffected.
        Selected entries are removed from the queue.
        """
        if not self._ready:
            return []
        budget = self.issue_width if max_issue is None else min(max_issue, self.issue_width)
        if budget <= 0:
            return []
        mem_budget = memory_slots if memory_slots is not None else (
            self.memory_ports if self.memory_ports is not None else budget)
        if len(self._ready) == 1:
            entry = next(iter(self._ready.values()))
            if entry.is_memory and mem_budget <= 0:
                return []
            self._remove(entry.uid)
            return [entry]
        ready = sorted(self._ready.values(), key=_age_key)
        selected: List[IssueQueueEntry] = []
        for entry in ready:
            if len(selected) >= budget:
                break
            if entry.is_memory:
                if mem_budget <= 0:
                    continue
                mem_budget -= 1
            selected.append(entry)
        for entry in selected:
            self._remove(entry.uid)
        return selected

    def _remove(self, uid: int) -> None:
        del self._entries[uid]
        self._ready.pop(uid, None)

    # ------------------------------------------------------------------ flush
    def flush_from(self, seq: int) -> List[IssueQueueEntry]:
        """Remove and return all entries with sequence number >= ``seq``.

        This implements the paper's flushing recovery (§3.2): on a fatal width
        misprediction every instruction starting from the mispredicted one is
        squashed in the narrow backend.
        """
        result = sorted((e for e in self._entries.values() if e.seq >= seq),
                        key=_age_key)
        for entry in result:
            self._remove(entry.uid)
        return result

    def drain(self) -> List[IssueQueueEntry]:
        """Remove and return everything (used at simulation teardown)."""
        entries = sorted(self._entries.values(), key=_age_key)
        self._entries.clear()
        self._ready.clear()
        return entries

    # -------------------------------------------------------------- statistics
    def sample_occupancy(self, cycles: int = 1) -> None:
        """Record occupancy and ready-but-unissued counts for ``cycles`` cycles.

        ``cycles > 1`` is used by the simulator when it fast-forwards over a
        stretch of cycles during which the queue provably does not change: the
        aggregate statistics are exactly what per-cycle sampling would have
        recorded.
        """
        self.total_occupancy_samples += cycles
        self.occupancy_accum += len(self._entries) * cycles
        self.ready_not_issued_accum += len(self._ready) * cycles

    @property
    def mean_occupancy(self) -> float:
        if self.total_occupancy_samples == 0:
            return 0.0
        return self.occupancy_accum / self.total_occupancy_samples

    def ready_count(self) -> int:
        """Number of currently ready (issuable) entries."""
        return len(self._ready)

    def reset_stats(self) -> None:
        self.total_occupancy_samples = 0
        self.occupancy_accum = 0
        self.ready_not_issued_accum = 0
