"""Activity-based per-structure energy model (Wattch-style).

Energies are expressed in arbitrary units (aJ-like); only *relative*
comparisons between configurations are meaningful, which is all the paper
claims (helper cluster is 5.1% better in energy-delay² than the baseline in
its most aggressive configuration).

Width scaling follows the paper's §2.1 argument: the area (and switched
capacitance) of backend structures such as register files and ALUs scales at
least linearly with datapath width, so an 8-bit helper's structures cost
roughly ``8/32`` of their wide counterparts per access, and a cluster's
faster clock shows up as clock-network energy charged per cluster cycle.

The model is *topology-generic*: the simulator accumulates one
:class:`ClusterActivity` per cluster of the machine's
:class:`~repro.core.config.Topology`, and :class:`PowerModel` derives each
cluster's coefficients from its :class:`~repro.core.config.ClusterSpec` —
datapath width, clock ratio, scheduler resources and FU mix — so an
asymmetric ``8@2+16@1`` mix, a 16-bit helper, or any ``explore`` grid point
gets physically-consistent numbers with zero extra configuration.  Machine-
wide structures (frontend, rename, ROB, caches, predictors, inter-cluster
copy wires) are charged from the shared :class:`ActivityCounts`.

Legacy equivalence contract: for the paper's machines (the monolithic
baseline and the wide + 8-bit@2x pair) the per-cluster evaluation produces
*exactly* the same per-structure energies as the original two-cluster
:meth:`PowerModel.evaluate` — the coefficient derivations reduce to the old
constants there — which is what anchors the energy golden pins
(``tests/test_energy_golden.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Tuple

from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (config -> memory)
    from repro.core.config import ClusterSpec, Topology


@dataclass(frozen=True)
class PowerConfig:
    """Per-access and per-cycle energy coefficients (arbitrary units).

    The per-access constants describe the *full-width* (host) structures;
    per-cluster coefficients are derived from them and the cluster's
    :class:`~repro.core.config.ClusterSpec` (see
    :meth:`PowerModel.coefficients_for`).  ``PowerConfig`` feeds the result
    cache key through :meth:`to_key_dict`, so changing any coefficient can
    never alias a stale cached energy figure.
    """

    #: master switch: when False the simulator skips power evaluation and
    #: results carry no energy figures (``repro.cli --no-energy`` style runs,
    #: the overhead benchmark's control arm)
    enabled: bool = True
    #: energy of one ALU operation on the full-width datapath
    alu_access: float = 10.0
    #: energy of one AGU / memory-pipe operation (address add + TLB-ish)
    agu_access: float = 8.0
    #: energy of one FPU operation
    fpu_access: float = 25.0
    #: register file read/write on the full-width datapath
    regfile_access: float = 4.0
    #: issue queue insert/wakeup/select per instruction, for a
    #: ``ref_queue_size``-entry full-width scheduler
    scheduler_access: float = 6.0
    #: rename table access per instruction
    rename_access: float = 3.0
    #: reorder buffer allocate+commit per instruction
    rob_access: float = 3.0
    #: DL0 access
    dl0_access: float = 20.0
    #: UL1 access
    ul1_access: float = 60.0
    #: main memory access
    memory_access: float = 400.0
    #: width/carry/copy predictor lookup or update
    predictor_access: float = 0.6
    #: inter-cluster copy (drive the inter-cluster wires + RF write)
    copy_transfer: float = 6.0
    #: clock-network + leakage energy per host cycle for the host cluster
    wide_clock_per_cycle: float = 12.0
    #: clock-network + leakage energy per cluster cycle of a helper that is
    #: ``clock_ref_width`` bits wide; other helper widths scale linearly
    narrow_clock_per_cycle: float = 1.8
    #: datapath width (bits) at which ``narrow_clock_per_cycle`` is calibrated
    clock_ref_width: int = NARROW_WIDTH
    #: extra clock-network energy per cluster cycle when a *helper* carries
    #: FP units (the host's FP clock load is part of ``wide_clock_per_cycle``)
    fp_clock_per_cycle: float = 3.0
    #: scheduler queue size the ``scheduler_access`` coefficient describes;
    #: wakeup/select energy scales linearly with the actual queue size
    ref_queue_size: int = 32
    #: frontend (fetch/decode/trace cache) energy per fetched uop
    frontend_access: float = 7.0

    def width_scale(self, narrow_width: int = NARROW_WIDTH) -> float:
        """Linear width-scaling factor for narrow-datapath structures."""
        return narrow_width / MACHINE_WIDTH

    def to_key_dict(self) -> dict:
        """Canonical, JSON-serialisable form (the cache-key contract).

        Every coefficient is part of the result-cache key: a tweaked power
        model can never be served energy figures computed under the old one.
        """
        return asdict(self)


@dataclass
class ClusterActivity:
    """Per-cluster event counts produced by one simulation run.

    One record per cluster of the topology, keyed by
    :attr:`~repro.core.config.ClusterSpec.name` in
    :attr:`~repro.sim.metrics.SimulationResult.cluster_activity`.  The spec
    facts needed to re-derive energy coefficients (width, clock ratio) ride
    along so a cached result is self-describing.
    """

    name: str
    datapath_width: int = MACHINE_WIDTH
    clock_ratio: int = 1
    #: cycles of this cluster's own clock elapsed over the run
    cycles: int = 0
    alu_ops: int = 0
    agu_ops: int = 0
    fpu_ops: int = 0
    regfile_accesses: int = 0
    scheduler_ops: int = 0


@dataclass
class ActivityCounts:
    """Machine-wide event counts produced by one simulation run.

    Shared structures (frontend, rename, ROB, caches, predictors, copy
    wires) are counted here; per-cluster execution counts live in
    :class:`ClusterActivity` records, with the legacy ``wide_*``/``narrow_*``
    aggregate fields folded back in at the end of a run (host = wide, all
    helpers summed = narrow) so the original two-cluster accounting remains
    available unchanged.
    """

    wide_cycles: int = 0
    fast_cycles: int = 0
    fetched_uops: int = 0
    committed_uops: int = 0
    wide_alu_ops: int = 0
    narrow_alu_ops: int = 0
    wide_agu_ops: int = 0
    narrow_agu_ops: int = 0
    fpu_ops: int = 0
    wide_regfile_accesses: int = 0
    narrow_regfile_accesses: int = 0
    wide_scheduler_ops: int = 0
    narrow_scheduler_ops: int = 0
    rename_ops: int = 0
    rob_ops: int = 0
    dl0_accesses: int = 0
    ul1_accesses: int = 0
    memory_accesses: int = 0
    predictor_accesses: int = 0
    copies: int = 0
    helper_present: bool = False
    narrow_width: int = NARROW_WIDTH


@dataclass
class PowerBreakdown:
    """Energy per structure group (same arbitrary units as the config)."""

    per_structure: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_structure.values())

    def fraction(self, key: str) -> float:
        total = self.total
        return self.per_structure.get(key, 0.0) / total if total else 0.0


@dataclass(frozen=True)
class ClusterCoefficients:
    """Per-access / per-cycle energy coefficients derived for one cluster."""

    #: linear datapath-width factor applied to ALU/AGU/regfile accesses
    width_scale: float
    #: width x queue-size factor applied to scheduler operations
    scheduler_scale: float
    #: clock-network + leakage energy per cluster cycle
    clock_per_cycle: float


class PowerModel:
    """Computes :class:`PowerBreakdown` records from activity counts.

    Two evaluation paths:

    * :meth:`evaluate_topology` / :meth:`evaluate_cluster` +
      :meth:`evaluate_shared` — the per-cluster, topology-generic model the
      simulator uses;
    * :meth:`evaluate` — the original two-cluster evaluation over the
      aggregate :class:`ActivityCounts`, kept (unchanged) as the reference
      the legacy-equivalence pins compare against.
    """

    def __init__(self, config: PowerConfig | None = None) -> None:
        self.config = config or PowerConfig()

    # -------------------------------------------------- per-cluster model
    def coefficients_for(self, spec: "ClusterSpec",
                         is_host: bool) -> ClusterCoefficients:
        """Derive a cluster's energy coefficients from its spec.

        * ALU/AGU/regfile accesses scale linearly with datapath width
          (``width_fraction``, §2.1: switched capacitance tracks area).
        * Scheduler operations additionally scale with queue size relative
          to the Table 1 reference (CAM wakeup touches every entry).
        * Clock energy per cluster cycle: the host pays the full
          ``wide_clock_per_cycle`` (its tree also drives frontend, commit
          and the FP units); a helper pays the ``clock_ref_width``-bit
          reference coefficient scaled linearly with its width, plus the FP
          adder when its FU mix includes floating point.  The clock *ratio*
          enters through the cycle count (a 2x helper clocks twice per host
          cycle), so faster domains burn proportionally more clock energy.

        For the host and the paper's 8-bit helper these derivations reduce
        exactly to the original two-cluster constants.
        """
        cfg = self.config
        width_scale = spec.width_fraction
        scheduler_scale = width_scale * (spec.queue_size / cfg.ref_queue_size)
        if is_host:
            clock = cfg.wide_clock_per_cycle
        else:
            clock = (cfg.narrow_clock_per_cycle
                     * (spec.datapath_width / cfg.clock_ref_width))
            if spec.has_fp:
                clock += cfg.fp_clock_per_cycle
        return ClusterCoefficients(width_scale=width_scale,
                                   scheduler_scale=scheduler_scale,
                                   clock_per_cycle=clock)

    def evaluate_cluster(self, spec: "ClusterSpec", activity: ClusterActivity,
                         is_host: bool = False) -> PowerBreakdown:
        """Energy of one cluster's structures over a run."""
        cfg = self.config
        co = self.coefficients_for(spec, is_host)
        scale = co.width_scale
        breakdown: Dict[str, float] = {}
        breakdown["execute"] = (scale * (cfg.alu_access * activity.alu_ops
                                         + cfg.agu_access * activity.agu_ops)
                                + cfg.fpu_access * activity.fpu_ops)
        breakdown["regfile"] = scale * cfg.regfile_access * activity.regfile_accesses
        breakdown["scheduler"] = (co.scheduler_scale * cfg.scheduler_access
                                  * activity.scheduler_ops)
        breakdown["clock"] = co.clock_per_cycle * activity.cycles
        return PowerBreakdown(per_structure=breakdown)

    def evaluate_shared(self, activity: ActivityCounts) -> PowerBreakdown:
        """Energy of the machine-wide (cluster-independent) structures."""
        cfg = self.config
        breakdown: Dict[str, float] = {}
        breakdown["frontend"] = cfg.frontend_access * activity.fetched_uops
        breakdown["rename"] = cfg.rename_access * activity.rename_ops
        breakdown["rob"] = cfg.rob_access * activity.rob_ops
        breakdown["dl0"] = cfg.dl0_access * activity.dl0_accesses
        breakdown["ul1"] = cfg.ul1_access * activity.ul1_accesses
        breakdown["memory"] = cfg.memory_access * activity.memory_accesses
        breakdown["predictors"] = cfg.predictor_access * activity.predictor_accesses
        breakdown["copies"] = cfg.copy_transfer * activity.copies
        return PowerBreakdown(per_structure=breakdown)

    def evaluate_topology(self, topology: "Topology",
                          cluster_activity: Mapping[str, ClusterActivity],
                          ) -> Dict[str, PowerBreakdown]:
        """Per-cluster breakdowns for every cluster of a topology."""
        return {spec.name: self.evaluate_cluster(
                    spec, cluster_activity[spec.name], is_host=(index == 0))
                for index, spec in enumerate(topology.clusters)}

    # ------------------------------------------------ legacy two-cluster
    def evaluate(self, activity: ActivityCounts) -> PowerBreakdown:
        """Original two-cluster evaluation over aggregate counts.

        Kept verbatim as the reference model: for the monolithic baseline
        and the wide + 8-bit pair the per-cluster path must reproduce these
        numbers exactly (``tests/test_energy_golden.py``).
        """
        cfg = self.config
        scale = cfg.width_scale(activity.narrow_width)
        breakdown: Dict[str, float] = {}
        breakdown["frontend"] = cfg.frontend_access * activity.fetched_uops
        breakdown["rename"] = cfg.rename_access * activity.rename_ops
        breakdown["rob"] = cfg.rob_access * activity.rob_ops
        breakdown["wide_execute"] = (cfg.alu_access * activity.wide_alu_ops
                                     + cfg.agu_access * activity.wide_agu_ops
                                     + cfg.fpu_access * activity.fpu_ops)
        breakdown["narrow_execute"] = scale * (cfg.alu_access * activity.narrow_alu_ops
                                               + cfg.agu_access * activity.narrow_agu_ops)
        breakdown["wide_regfile"] = cfg.regfile_access * activity.wide_regfile_accesses
        breakdown["narrow_regfile"] = scale * cfg.regfile_access * activity.narrow_regfile_accesses
        breakdown["wide_scheduler"] = cfg.scheduler_access * activity.wide_scheduler_ops
        breakdown["narrow_scheduler"] = scale * cfg.scheduler_access * activity.narrow_scheduler_ops
        breakdown["dl0"] = cfg.dl0_access * activity.dl0_accesses
        breakdown["ul1"] = cfg.ul1_access * activity.ul1_accesses
        breakdown["memory"] = cfg.memory_access * activity.memory_accesses
        breakdown["predictors"] = cfg.predictor_access * activity.predictor_accesses
        breakdown["copies"] = cfg.copy_transfer * activity.copies
        breakdown["wide_clock"] = cfg.wide_clock_per_cycle * activity.wide_cycles
        breakdown["narrow_clock"] = (cfg.narrow_clock_per_cycle * activity.fast_cycles
                                     if activity.helper_present else 0.0)
        return PowerBreakdown(per_structure=breakdown)
