"""Activity-based per-structure energy model (Wattch-style).

Energies are expressed in arbitrary units (aJ-like); only *relative*
comparisons between configurations are meaningful, which is all the paper
claims (helper cluster is 5.1% better in energy-delay² than the baseline in
its most aggressive configuration).

Width scaling follows the paper's §2.1 argument: the area (and switched
capacitance) of backend structures such as register files and ALUs scales at
least linearly with datapath width, so the 8-bit helper structures cost
roughly width_ratio (= 8/32) of their wide counterparts per access.  The
helper cluster's faster clock shows up as clock-network energy charged per
fast cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.values import MACHINE_WIDTH, NARROW_WIDTH


@dataclass(frozen=True)
class PowerConfig:
    """Per-access and per-cycle energy coefficients (arbitrary units)."""

    #: energy of one ALU operation on the full-width datapath
    alu_access: float = 10.0
    #: energy of one AGU / memory-pipe operation (address add + TLB-ish)
    agu_access: float = 8.0
    #: energy of one FPU operation
    fpu_access: float = 25.0
    #: register file read/write on the full-width datapath
    regfile_access: float = 4.0
    #: issue queue insert/wakeup/select per instruction
    scheduler_access: float = 6.0
    #: rename table access per instruction
    rename_access: float = 3.0
    #: reorder buffer allocate+commit per instruction
    rob_access: float = 3.0
    #: DL0 access
    dl0_access: float = 20.0
    #: UL1 access
    ul1_access: float = 60.0
    #: main memory access
    memory_access: float = 400.0
    #: width/carry/copy predictor lookup or update
    predictor_access: float = 0.6
    #: inter-cluster copy (drive the inter-cluster wires + RF write)
    copy_transfer: float = 6.0
    #: clock-network + leakage energy per wide-cluster cycle for the wide core
    wide_clock_per_cycle: float = 12.0
    #: clock-network + leakage energy per *fast* cycle for the helper cluster
    narrow_clock_per_cycle: float = 1.8
    #: frontend (fetch/decode/trace cache) energy per fetched uop
    frontend_access: float = 7.0

    def width_scale(self, narrow_width: int = NARROW_WIDTH) -> float:
        """Linear width-scaling factor for narrow-datapath structures."""
        return narrow_width / MACHINE_WIDTH


@dataclass
class ActivityCounts:
    """Event counts produced by one simulation run."""

    wide_cycles: int = 0
    fast_cycles: int = 0
    fetched_uops: int = 0
    committed_uops: int = 0
    wide_alu_ops: int = 0
    narrow_alu_ops: int = 0
    wide_agu_ops: int = 0
    narrow_agu_ops: int = 0
    fpu_ops: int = 0
    wide_regfile_accesses: int = 0
    narrow_regfile_accesses: int = 0
    wide_scheduler_ops: int = 0
    narrow_scheduler_ops: int = 0
    rename_ops: int = 0
    rob_ops: int = 0
    dl0_accesses: int = 0
    ul1_accesses: int = 0
    memory_accesses: int = 0
    predictor_accesses: int = 0
    copies: int = 0
    helper_present: bool = False
    narrow_width: int = NARROW_WIDTH


@dataclass
class PowerBreakdown:
    """Energy per structure group (same arbitrary units as the config)."""

    per_structure: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.per_structure.values())

    def fraction(self, key: str) -> float:
        total = self.total
        return self.per_structure.get(key, 0.0) / total if total else 0.0


class PowerModel:
    """Computes a :class:`PowerBreakdown` from :class:`ActivityCounts`."""

    def __init__(self, config: PowerConfig | None = None) -> None:
        self.config = config or PowerConfig()

    def evaluate(self, activity: ActivityCounts) -> PowerBreakdown:
        cfg = self.config
        scale = cfg.width_scale(activity.narrow_width)
        breakdown: Dict[str, float] = {}
        breakdown["frontend"] = cfg.frontend_access * activity.fetched_uops
        breakdown["rename"] = cfg.rename_access * activity.rename_ops
        breakdown["rob"] = cfg.rob_access * activity.rob_ops
        breakdown["wide_execute"] = (cfg.alu_access * activity.wide_alu_ops
                                     + cfg.agu_access * activity.wide_agu_ops
                                     + cfg.fpu_access * activity.fpu_ops)
        breakdown["narrow_execute"] = scale * (cfg.alu_access * activity.narrow_alu_ops
                                               + cfg.agu_access * activity.narrow_agu_ops)
        breakdown["wide_regfile"] = cfg.regfile_access * activity.wide_regfile_accesses
        breakdown["narrow_regfile"] = scale * cfg.regfile_access * activity.narrow_regfile_accesses
        breakdown["wide_scheduler"] = cfg.scheduler_access * activity.wide_scheduler_ops
        breakdown["narrow_scheduler"] = scale * cfg.scheduler_access * activity.narrow_scheduler_ops
        breakdown["dl0"] = cfg.dl0_access * activity.dl0_accesses
        breakdown["ul1"] = cfg.ul1_access * activity.ul1_accesses
        breakdown["memory"] = cfg.memory_access * activity.memory_accesses
        breakdown["predictors"] = cfg.predictor_access * activity.predictor_accesses
        breakdown["copies"] = cfg.copy_transfer * activity.copies
        breakdown["wide_clock"] = cfg.wide_clock_per_cycle * activity.wide_cycles
        breakdown["narrow_clock"] = (cfg.narrow_clock_per_cycle * activity.fast_cycles
                                     if activity.helper_present else 0.0)
        return PowerBreakdown(per_structure=breakdown)
