"""Wattch-like activity-based power model.

The paper compares energy-delay² of the most aggressive helper-cluster
configuration against the monolithic baseline using an in-house Wattch-style
power simulator extended with the helper cluster's 8-bit datapath, clock
network and width predictors (§3.1, §3.7).  This subpackage provides the
equivalent: per-structure per-access energies that scale with datapath width,
plus static/clock power per cycle, and the energy / energy-delay /
energy-delay² accounting used by the ED² benchmark.
"""

from repro.power.wattch import PowerModel, PowerConfig, ActivityCounts, PowerBreakdown
from repro.power.energy import EnergyReport, energy_delay_squared, compare_ed2

__all__ = [
    "PowerModel",
    "PowerConfig",
    "ActivityCounts",
    "PowerBreakdown",
    "EnergyReport",
    "energy_delay_squared",
    "compare_ed2",
]
