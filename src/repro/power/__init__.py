"""Wattch-like activity-based power model.

The paper compares energy-delay² of the most aggressive helper-cluster
configuration against the monolithic baseline using an in-house Wattch-style
power simulator extended with the helper cluster's 8-bit datapath, clock
network and width predictors (§3.1).  This subpackage provides the
equivalent, generalised to arbitrary cluster topologies: per-cluster
per-access energies derived from each cluster's spec (datapath width,
scheduler resources, FU mix), clock/static power per cluster cycle, and the
energy / energy-delay / energy-delay² accounting behind the ``repro.cli
energy`` subcommand and the ED² columns of every sweep table.
"""

from repro.power.wattch import (
    ActivityCounts,
    ClusterActivity,
    ClusterCoefficients,
    PowerBreakdown,
    PowerConfig,
    PowerModel,
)
from repro.power.energy import (
    EnergyReport,
    compare_ed2,
    energy_delay_squared,
    report_from_activity,
    report_from_result,
)

__all__ = [
    "PowerModel",
    "PowerConfig",
    "ActivityCounts",
    "ClusterActivity",
    "ClusterCoefficients",
    "PowerBreakdown",
    "EnergyReport",
    "energy_delay_squared",
    "compare_ed2",
    "report_from_activity",
    "report_from_result",
]
