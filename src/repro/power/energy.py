"""Energy, energy-delay and energy-delay² accounting.

ED² is the standard voltage-independent efficiency metric:
``ED² = total_energy x delay²`` where delay is execution time measured in
host (wide) cycles — every configuration shares the host clock, so delays
are directly comparable.  The paper's headline energy claim is that the
helper cluster in its most resource-aggressive configuration (IR) is 5.1%
more ED²-efficient than the monolithic baseline: the extra energy of the
narrow datapath, its clock network and the predictors is outweighed by the
squared benefit of the shorter execution time.

Since the per-cluster refactor, energy is computed *inside* the simulator:
every :class:`~repro.sim.metrics.SimulationResult` carries a per-cluster
:class:`~repro.power.wattch.PowerBreakdown` map plus derived
``energy``/``ed``/``ed2`` fields, travels through the result cache with
them, and the ``repro.cli energy`` subcommand reproduces the paper's
comparison straight from cached sweep results.  The helpers here build
:class:`EnergyReport` views for ad-hoc comparisons:

* :func:`report_from_result` — from a finished simulation result (the
  normal path);
* :func:`report_from_activity` — from raw aggregate activity counts via the
  legacy two-cluster model (kept for the original API and its tests);
* :func:`compare_ed2` — relative ED² improvement between two reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.power.wattch import ActivityCounts, PowerBreakdown, PowerModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.metrics import SimulationResult


@dataclass(frozen=True)
class EnergyReport:
    """Energy metrics of one simulation run."""

    label: str
    energy: float
    delay_cycles: float

    @property
    def energy_delay(self) -> float:
        return self.energy * self.delay_cycles

    @property
    def energy_delay_squared(self) -> float:
        return self.energy * self.delay_cycles ** 2


def energy_delay_squared(breakdown: PowerBreakdown, delay_cycles: float,
                         label: str = "run") -> EnergyReport:
    """Build an :class:`EnergyReport` from a power breakdown and a delay."""
    if delay_cycles <= 0:
        raise ValueError("delay must be positive")
    return EnergyReport(label=label, energy=breakdown.total, delay_cycles=delay_cycles)


def report_from_activity(activity: ActivityCounts, delay_cycles: float,
                         label: str = "run", model: PowerModel | None = None) -> EnergyReport:
    """Convenience: evaluate the legacy two-cluster model and build a report.

    For results produced by the simulator, prefer :func:`report_from_result`
    (per-cluster accounting, no re-evaluation).
    """
    model = model or PowerModel()
    return energy_delay_squared(model.evaluate(activity), delay_cycles, label)


def report_from_result(result: "SimulationResult",
                       label: str | None = None) -> EnergyReport:
    """Energy report of a finished run, using its stored per-cluster energy."""
    if result.slow_cycles <= 0:
        raise ValueError("result has no positive delay (was the run finalised?)")
    if not result.power:
        raise ValueError(
            f"result {result.benchmark}/{result.policy} carries no energy "
            "figures (simulated with PowerConfig(enabled=False)?)")
    return EnergyReport(label=label or f"{result.benchmark}/{result.policy}",
                        energy=result.energy, delay_cycles=result.slow_cycles)


def compare_ed2(baseline: EnergyReport, candidate: EnergyReport) -> float:
    """Relative ED² improvement of ``candidate`` over ``baseline``.

    Positive values mean the candidate is more ED²-efficient; the paper
    reports +5.1% for the IR helper-cluster configuration.
    """
    base = baseline.energy_delay_squared
    if base <= 0:
        raise ValueError("baseline ED² must be positive")
    return (base - candidate.energy_delay_squared) / base
