"""Energy, energy-delay and energy-delay² accounting (§3.7).

The paper reports that the helper cluster in its most resource-aggressive
configuration (IR) is 5.1% more energy-delay²-efficient than the monolithic
baseline.  ED² is the standard voltage-independent efficiency metric:
``ED² = total_energy × delay²`` where delay is execution time (here measured
in wide-cluster cycles, since both configurations share the wide clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.wattch import ActivityCounts, PowerBreakdown, PowerModel


@dataclass(frozen=True)
class EnergyReport:
    """Energy metrics of one simulation run."""

    label: str
    energy: float
    delay_cycles: float

    @property
    def energy_delay(self) -> float:
        return self.energy * self.delay_cycles

    @property
    def energy_delay_squared(self) -> float:
        return self.energy * self.delay_cycles ** 2


def energy_delay_squared(breakdown: PowerBreakdown, delay_cycles: float,
                         label: str = "run") -> EnergyReport:
    """Build an :class:`EnergyReport` from a power breakdown and a delay."""
    if delay_cycles <= 0:
        raise ValueError("delay must be positive")
    return EnergyReport(label=label, energy=breakdown.total, delay_cycles=delay_cycles)


def report_from_activity(activity: ActivityCounts, delay_cycles: float,
                         label: str = "run", model: PowerModel | None = None) -> EnergyReport:
    """Convenience: evaluate the power model and build a report in one step."""
    model = model or PowerModel()
    return energy_delay_squared(model.evaluate(activity), delay_cycles, label)


def compare_ed2(baseline: EnergyReport, candidate: EnergyReport) -> float:
    """Relative ED² improvement of ``candidate`` over ``baseline``.

    Positive values mean the candidate is more ED²-efficient; the paper
    reports +5.1% for the IR helper-cluster configuration.
    """
    base = baseline.energy_delay_squared
    if base <= 0:
        raise ValueError("baseline ED² must be positive")
    return (base - candidate.energy_delay_squared) / base
