"""Offline trace analyses (microarchitecture-independent).

These reproduce the paper's characterisation figures, which are properties of
the *workload* rather than of the helper-cluster machine:

* :mod:`repro.analysis.narrowness` — Figure 1 (narrow data-width dependent
  operands) and the §1 ALU-operand narrowness statistics.
* :mod:`repro.analysis.carry` — Figure 11 (carry-not-propagated fraction of
  (8-bit, 32-bit) -> 32-bit instructions, split into arithmetic and loads).
* :mod:`repro.analysis.distance` — Figure 13 (average producer-consumer
  distance in uops).
"""

from repro.analysis.narrowness import (
    NarrownessReport,
    narrow_dependence_fraction,
    operand_narrowness_breakdown,
    analyze_narrowness,
)
from repro.analysis.carry import CarryReport, carry_not_propagated, analyze_carry
from repro.analysis.distance import DistanceReport, producer_consumer_distance

__all__ = [
    "NarrownessReport",
    "narrow_dependence_fraction",
    "operand_narrowness_breakdown",
    "analyze_narrowness",
    "CarryReport",
    "carry_not_propagated",
    "analyze_carry",
    "DistanceReport",
    "producer_consumer_distance",
]
