"""Narrow data-width dependence analysis (Figure 1 and §1 statistics).

The paper defines a consumer as *narrow data-width dependent* when the
producer of one of its register operands produced a narrow value.  Figure 1
plots, per SPEC Int 2000 application, the percentage of register operands
that are narrow data-width dependent; the average is about 65%.

§1 additionally reports that 39.4% of regular ALU instructions require one
narrow operand, 3.3% require two narrow operands but produce a wide result,
and 43.5% require two narrow operands and produce a narrow result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import OpClass
from repro.isa.values import NARROW_WIDTH, is_narrow
from repro.trace.trace import Trace


@dataclass
class NarrownessReport:
    """Results of the Figure 1 / §1 analysis for one trace."""

    benchmark: str
    #: register operands whose producer value is narrow / total register operands
    narrow_dependent_operands: int = 0
    total_register_operands: int = 0
    #: §1 breakdown over ALU instructions with at least one register source
    alu_one_narrow_operand: int = 0
    alu_two_narrow_wide_result: int = 0
    alu_two_narrow_narrow_result: int = 0
    alu_total: int = 0

    @property
    def narrow_dependence_fraction(self) -> float:
        """Figure 1's y-axis: fraction of operands that are narrow-width dependent."""
        if self.total_register_operands == 0:
            return 0.0
        return self.narrow_dependent_operands / self.total_register_operands

    @property
    def one_narrow_fraction(self) -> float:
        return self.alu_one_narrow_operand / self.alu_total if self.alu_total else 0.0

    @property
    def two_narrow_wide_fraction(self) -> float:
        return self.alu_two_narrow_wide_result / self.alu_total if self.alu_total else 0.0

    @property
    def two_narrow_narrow_fraction(self) -> float:
        return self.alu_two_narrow_narrow_result / self.alu_total if self.alu_total else 0.0


def analyze_narrowness(trace: Trace, narrow_width: int = NARROW_WIDTH) -> NarrownessReport:
    """Run the Figure 1 / §1 analysis over a trace."""
    report = NarrownessReport(benchmark=trace.name)
    for uop in trace.uops:
        # Operand-level narrow dependence (Figure 1): every register source
        # with a known producer contributes one operand observation.
        for index, producer in enumerate(uop.producer_uids):
            if index >= len(uop.src_values):
                continue
            report.total_register_operands += 1
            if is_narrow(uop.src_values[index], narrow_width):
                report.narrow_dependent_operands += 1

        # §1 breakdown over plain ALU instructions with register sources.
        if uop.op_class is OpClass.ALU and uop.srcs and uop.src_values:
            report.alu_total += 1
            narrow_srcs = sum(1 for v in uop.src_values if is_narrow(v, narrow_width))
            result_narrow = uop.result_is_narrow(narrow_width)
            if narrow_srcs >= 2 or (narrow_srcs == len(uop.src_values) and narrow_srcs >= 2):
                if result_narrow:
                    report.alu_two_narrow_narrow_result += 1
                else:
                    report.alu_two_narrow_wide_result += 1
            elif narrow_srcs == 1:
                report.alu_one_narrow_operand += 1
    return report


def narrow_dependence_fraction(trace: Trace, narrow_width: int = NARROW_WIDTH) -> float:
    """Shortcut for Figure 1's per-application metric."""
    return analyze_narrowness(trace, narrow_width).narrow_dependence_fraction


def operand_narrowness_breakdown(trace: Trace,
                                 narrow_width: int = NARROW_WIDTH) -> Dict[str, float]:
    """The §1 three-way ALU operand breakdown as a dictionary of fractions."""
    report = analyze_narrowness(trace, narrow_width)
    return {
        "one_narrow_operand": report.one_narrow_fraction,
        "two_narrow_wide_result": report.two_narrow_wide_fraction,
        "two_narrow_narrow_result": report.two_narrow_narrow_fraction,
    }
