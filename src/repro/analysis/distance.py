"""Producer-consumer distance analysis (Figure 13, motivating CP, §3.6).

Copy prefetching is effective when the distance (in dynamic uops) between a
producer and its consumer is neither too small (the prefetched copy would not
arrive any earlier than a demand copy) nor too large (the prefetched value
would occupy backend resources while waiting).  Figure 13 shows that IA-32
code has an average distance of a few uops, which is favourable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.trace import Trace


@dataclass
class DistanceReport:
    """Producer-consumer distance statistics for one trace."""

    benchmark: str
    pairs: int = 0
    total_distance: int = 0
    histogram: Dict[int, int] = field(default_factory=dict)
    max_bucket: int = 32

    @property
    def mean_distance(self) -> float:
        """Figure 13's y-axis: average producer-consumer distance in uops."""
        return self.total_distance / self.pairs if self.pairs else 0.0

    def fraction_within(self, distance: int) -> float:
        """Fraction of pairs with distance <= ``distance`` (prefetch window)."""
        if self.pairs == 0:
            return 0.0
        close = sum(count for d, count in self.histogram.items() if d <= distance)
        return close / self.pairs


def producer_consumer_distance(trace: Trace, first_consumer_only: bool = True,
                               max_bucket: int = 32) -> DistanceReport:
    """Measure the dynamic distance between producers and their consumers.

    Parameters
    ----------
    trace:
        The trace to analyse.
    first_consumer_only:
        When True (default, matching the figure's intent for copy
        prefetching), only the *first* consumer of each produced value is
        counted; later consumers would find the value already copied.
    max_bucket:
        Distances are clamped to this value in the histogram.
    """
    report = DistanceReport(benchmark=trace.name, max_bucket=max_bucket)
    position_of_uid: Dict[int, int] = {}
    first_seen: set = set()
    for position, uop in enumerate(trace.uops):
        for producer in uop.producer_uids:
            if producer is None:
                continue
            if first_consumer_only and producer in first_seen:
                continue
            producer_pos = position_of_uid.get(producer)
            if producer_pos is None:
                continue
            distance = position - producer_pos
            report.pairs += 1
            report.total_distance += distance
            bucket = min(distance, max_bucket)
            report.histogram[bucket] = report.histogram.get(bucket, 0) + 1
            if first_consumer_only:
                first_seen.add(producer)
        position_of_uid[uop.uid] = position
    return report
