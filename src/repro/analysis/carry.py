"""Carry-propagation analysis (Figure 11, motivating the CR scheme of §3.5).

For instructions with two sources — one 8-bit and one 32-bit — and a 32-bit
result, Figure 11 reports the percentage whose addition does not propagate a
carry beyond the low 8 bits, split into arithmetic instructions (add,
subtract) and loads (whose address is a base + small offset sum, Figure 10).
When the carry does not propagate the operation is effectively narrow: the
upper 24 bits of the result equal those of the wide source, so it can execute
in the helper cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.isa.opcodes import OpClass, Opcode
from repro.isa.values import NARROW_WIDTH, is_narrow
from repro.trace.trace import Trace

#: Arithmetic opcodes considered by the Figure 11 "Arith" series.
_ARITH_OPCODES = {Opcode.ADD, Opcode.SUB, Opcode.INC, Opcode.DEC, Opcode.LEA,
                  Opcode.CMP}


@dataclass
class CarryReport:
    """Carry-not-propagated statistics for one trace."""

    benchmark: str
    arith_candidates: int = 0
    arith_no_carry: int = 0
    load_candidates: int = 0
    load_no_carry: int = 0

    @property
    def arith_fraction(self) -> float:
        """Fraction of eligible arithmetic instructions with no carry past bit 7."""
        return self.arith_no_carry / self.arith_candidates if self.arith_candidates else 0.0

    @property
    def load_fraction(self) -> float:
        """Fraction of eligible loads with no carry past bit 7."""
        return self.load_no_carry / self.load_candidates if self.load_candidates else 0.0


def _mixed_width_operands(values, imm, narrow_width: int):
    """Return (narrow_value, wide_value) if the operand pattern is (8, 32), else None."""
    operands = list(values)
    if imm is not None:
        operands.append(imm)
    if len(operands) < 2:
        return None
    narrow_ops = [v for v in operands if is_narrow(v, narrow_width)]
    wide_ops = [v for v in operands if not is_narrow(v, narrow_width)]
    if len(wide_ops) == 1 and narrow_ops:
        return narrow_ops[0], wide_ops[0]
    return None


def carry_not_propagated(narrow_value: int, wide_value: int,
                         narrow_width: int = NARROW_WIDTH) -> bool:
    """True when ``narrow + wide`` does not carry out of the low byte (Figure 10)."""
    mask = (1 << narrow_width) - 1
    return (narrow_value & mask) + (wide_value & mask) <= mask


def analyze_carry(trace: Trace, narrow_width: int = NARROW_WIDTH) -> CarryReport:
    """Run the Figure 11 analysis over a trace."""
    report = CarryReport(benchmark=trace.name)
    for uop in trace.uops:
        pair = _mixed_width_operands(uop.src_values, uop.imm, narrow_width)
        if pair is None:
            continue
        narrow_value, wide_value = pair
        no_carry = carry_not_propagated(narrow_value, wide_value, narrow_width)
        if uop.op_class in (OpClass.LOAD, OpClass.STORE):
            report.load_candidates += 1
            if no_carry:
                report.load_no_carry += 1
        elif uop.opcode in _ARITH_OPCODES:
            # Restrict to wide results, as the figure does: a narrow result
            # would already be caught by the plain 8-8-8 scheme.
            if uop.result_value is not None and is_narrow(uop.result_value, narrow_width):
                continue
            report.arith_candidates += 1
            if no_carry:
                report.arith_no_carry += 1
    return report


def carry_fractions(trace: Trace, narrow_width: int = NARROW_WIDTH) -> Dict[str, float]:
    """Figure 11's two series for one trace, as a dictionary."""
    report = analyze_carry(trace, narrow_width)
    return {"arith": report.arith_fraction, "load": report.load_fraction}
