"""repro: reproduction of "Empowering a Helper Cluster through Data-Width
Aware Instruction Selection Policies" (Unsal, Ergin, Vera, González — 2006).

The package implements, in pure Python:

* an IA-32-like micro-op ISA and synthetic trace substrate (:mod:`repro.isa`,
  :mod:`repro.trace`);
* the memory hierarchy and out-of-order pipeline substrates of the paper's
  Pentium-4-like clustered processor (:mod:`repro.memory`,
  :mod:`repro.pipeline`);
* the paper's contribution — an 8-bit helper cluster clocked 2x faster plus
  data-width aware steering policies (8-8-8, BR, LR, CR, CP, IR) — in
  :mod:`repro.core`;
* a Wattch-like power model (:mod:`repro.power`);
* simulation drivers, experiment runners and reporting (:mod:`repro.sim`);
* the workload characterisation analyses of Figures 1, 11 and 13
  (:mod:`repro.analysis`).

Quickstart
----------
>>> from repro import quick_speedup
>>> result = quick_speedup("gcc", policy="ir", trace_uops=5000)
>>> result["speedup"] > 0
True
"""

from __future__ import annotations

from typing import Dict, Optional

__version__ = "1.0.0"

from repro.core.config import (  # noqa: F401
    MachineConfig,
    baseline_config,
    helper_cluster_config,
)
from repro.core.steering import (  # noqa: F401
    POLICY_LADDER,
    PolicyRegistry,
    PolicySpec,
    make_policy,
    policy_registry,
    policy_spec,
)
from repro.sim.baseline import baseline_pair, simulate_baseline  # noqa: F401
from repro.sim.metrics import SimulationResult, speedup  # noqa: F401
from repro.sim.simulator import HelperClusterSimulator, simulate  # noqa: F401
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES, get_profile  # noqa: F401
from repro.trace.synthetic import generate_trace  # noqa: F401


def quick_speedup(benchmark: str = "gcc", policy: str = "ir",
                  trace_uops: int = 10_000, seed: int = 2006,
                  config: Optional[MachineConfig] = None) -> Dict[str, float]:
    """One-call helper: generate a trace, run baseline + policy, report speedup.

    Returns a dictionary with ``speedup`` (fraction), ``helper_fraction``,
    ``copy_fraction`` and the baseline / helper IPCs.  Intended for the
    quickstart example and interactive exploration; experiments should use
    :class:`repro.sim.experiment.ExperimentRunner`.
    """
    profile = get_profile(benchmark)
    trace = generate_trace(profile, trace_uops, seed=seed)
    base, helper, gain = baseline_pair(trace, policy, helper_config=config)
    return {
        "benchmark": benchmark,
        "policy": policy,
        "speedup": gain,
        "baseline_ipc": base.ipc,
        "helper_ipc": helper.ipc,
        "helper_fraction": helper.helper_fraction,
        "copy_fraction": helper.copy_fraction,
    }
