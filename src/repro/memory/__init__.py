"""Memory hierarchy substrate.

Models the Table 1 memory system of the baseline processor: a trace cache
(32K uops, 4-way) feeding the frontend, a level-1 data cache (32KB, 8-way,
3-cycle, 2 read/write ports), a level-2 cache (4MB, 16-way, 13-cycle) and
main memory (450 cycles).  All latencies are expressed in wide-cluster (slow)
cycles, exactly as Table 1 states them; the clocking model converts to fast
cycles where needed.
"""

from repro.memory.cache import Cache, CacheConfig, AccessResult
from repro.memory.tracecache import TraceCache, TraceCacheConfig
from repro.memory.hierarchy import MemoryHierarchy, MemoryConfig

__all__ = [
    "Cache",
    "CacheConfig",
    "AccessResult",
    "TraceCache",
    "TraceCacheConfig",
    "MemoryHierarchy",
    "MemoryConfig",
]
