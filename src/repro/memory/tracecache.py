"""Trace cache model (Table 1: 32K uops, 4-way).

The frontend of the modelled processor reads IA-32 instructions from the
upper-level cache (UL1), translates them into uops and stores them in a trace
cache from which they are fetched, decoded and steered (§2.1).  For the
timing simulator what matters is whether a fetch group hits the trace cache
(fetch proceeds at full bandwidth) or misses (the frontend stalls while the
line is rebuilt from UL1).

The trace cache is indexed by the PC of the first uop of a fetch group; its
capacity is expressed in uops rather than bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import Cache, CacheConfig, CacheStats


@dataclass(frozen=True)
class TraceCacheConfig:
    """Trace cache geometry (capacity in uops) and rebuild penalty."""

    capacity_uops: int = 32 * 1024
    associativity: int = 4
    line_uops: int = 8
    miss_penalty: int = 13  # rebuild from UL1, in slow cycles

    def __post_init__(self) -> None:
        if self.capacity_uops <= 0 or self.line_uops <= 0 or self.associativity <= 0:
            raise ValueError("trace cache geometry must be positive")
        if self.miss_penalty < 0:
            raise ValueError("miss penalty must be non-negative")


class TraceCache:
    """A trace cache tracking which fetch lines are resident."""

    def __init__(self, config: Optional[TraceCacheConfig] = None) -> None:
        self.config = config or TraceCacheConfig()
        # Reuse the generic cache tag store: pretend each uop occupies one
        # byte so the capacity arithmetic carries over directly.
        cache_config = CacheConfig(
            name="TC",
            size_bytes=self.config.capacity_uops,
            associativity=self.config.associativity,
            line_bytes=self.config.line_uops,
            hit_latency=0,
            ports=1,
        )
        self._cache = Cache(cache_config)

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def fetch(self, pc: int) -> int:
        """Fetch the line containing ``pc``.

        Returns the additional frontend stall (in slow cycles): 0 on a hit,
        the rebuild penalty on a miss.
        """
        return 0 if self._cache.access_hit(pc) else self.config.miss_penalty

    def reset(self) -> None:
        self._cache.reset()
