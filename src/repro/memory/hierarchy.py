"""Data memory hierarchy: DL0, UL1 and main memory (Table 1).

``MemoryHierarchy.load_latency`` walks an address down the hierarchy and
returns the total load-to-use latency in slow cycles.  Stores are modelled as
fire-and-forget through the same tag state (they allocate, so later loads to
the same line hit) but do not stall the pipeline; the Memory Order Buffer in
:mod:`repro.pipeline.mob` handles ordering and capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.memory.cache import Cache, CacheConfig


@dataclass(frozen=True)
class MemoryConfig:
    """Table 1 memory parameters (latencies in slow cycles)."""

    dl0: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="DL0", size_bytes=32 * 1024, associativity=8, line_bytes=64,
        hit_latency=3, ports=2))
    ul1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="UL1", size_bytes=4 * 1024 * 1024, associativity=16, line_bytes=64,
        hit_latency=13, ports=1))
    main_memory_latency: int = 450

    def __post_init__(self) -> None:
        if self.main_memory_latency <= 0:
            raise ValueError("main memory latency must be positive")


@dataclass
class HierarchyStats:
    """Aggregate statistics across the data hierarchy."""

    loads: int = 0
    stores: int = 0
    dl0_hits: int = 0
    ul1_hits: int = 0
    memory_accesses: int = 0

    @property
    def dl0_hit_rate(self) -> float:
        total = self.loads + self.stores
        return self.dl0_hits / total if total else 0.0


class MemoryHierarchy:
    """The DL0/UL1/main-memory stack used by load and store uops."""

    def __init__(self, config: Optional[MemoryConfig] = None) -> None:
        self.config = config or MemoryConfig()
        self.dl0 = Cache(self.config.dl0)
        self.ul1 = Cache(self.config.ul1)
        self.stats = HierarchyStats()

    def load_latency(self, addr: int) -> int:
        """Return the load-to-use latency (slow cycles) for ``addr``."""
        self.stats.loads += 1
        dl0 = self.dl0.access(addr)
        if dl0.hit:
            self.stats.dl0_hits += 1
            return self.config.dl0.hit_latency
        ul1 = self.ul1.access(addr)
        if ul1.hit:
            self.stats.ul1_hits += 1
            return self.config.dl0.hit_latency + self.config.ul1.hit_latency
        self.stats.memory_accesses += 1
        return (self.config.dl0.hit_latency + self.config.ul1.hit_latency
                + self.config.main_memory_latency)

    def store(self, addr: int) -> int:
        """Perform a store; returns the latency to cache commit (slow cycles)."""
        self.stats.stores += 1
        dl0 = self.dl0.access(addr)
        if dl0.hit:
            self.stats.dl0_hits += 1
            return self.config.dl0.hit_latency
        ul1 = self.ul1.access(addr)
        if ul1.hit:
            self.stats.ul1_hits += 1
        else:
            self.stats.memory_accesses += 1
        # Write-allocate: the line is now resident in DL0 either way.
        return self.config.dl0.hit_latency

    @property
    def dl0_ports(self) -> int:
        """Number of DL0 ports available per slow cycle."""
        return self.config.dl0.ports

    def reset(self) -> None:
        self.dl0.reset()
        self.ul1.reset()
        self.stats = HierarchyStats()
