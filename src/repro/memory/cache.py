"""Set-associative cache model with LRU replacement and port accounting.

The model is deliberately structural rather than data-carrying: it tracks
which lines are present (tags) and how many port slots are consumed per
cycle, which is all the timing simulator needs.  Data values live in the
trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Sizes are in bytes; ``hit_latency`` is in wide-cluster cycles, matching
    how Table 1 states them.
    """

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 3
    ports: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError(f"{self.name}: cache geometry must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{self.line_bytes})"
            )
        if self.hit_latency < 0 or self.ports <= 0:
            raise ValueError(f"{self.name}: latency/ports must be valid")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)


@dataclass
class AccessResult:
    """Outcome of a cache access."""

    hit: bool
    latency: int
    evicted_tag: Optional[int] = None


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """A set-associative cache with true-LRU replacement.

    The cache is a tag store only.  ``access`` looks up (and on a miss,
    allocates) the line containing ``addr`` and returns an
    :class:`AccessResult` whose latency is the hit latency; the caller adds
    the next level's latency on a miss.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Per-set list of tags in LRU order (index 0 = most recently used).
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]

    # ----------------------------------------------------------------- shape
    def _index_and_tag(self, addr: int) -> Tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    # ---------------------------------------------------------------- access
    def probe(self, addr: int) -> bool:
        """Check presence without updating LRU or statistics."""
        index, tag = self._index_and_tag(addr)
        return tag in self._sets[index]

    def _access_tag(self, addr: int):
        """Shared tag-store walk: LRU update, allocation and statistics.

        Returns ``(hit, evicted_tag)``.  Both :meth:`access` and
        :meth:`access_hit` go through here so the two entry points can never
        model different caches.
        """
        index, tag = self._index_and_tag(addr)
        ways = self._sets[index]
        self.stats.accesses += 1
        if ways and ways[0] == tag:
            # MRU fast path: no list rotation needed.
            self.stats.hits += 1
            return True, None
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        evicted: Optional[int] = None
        if len(ways) >= self.config.associativity:
            evicted = ways.pop()
            self.stats.evictions += 1
        ways.insert(0, tag)
        return False, evicted

    def access_hit(self, addr: int) -> bool:
        """Like :meth:`access` (same stats/LRU side effects) but returns only
        the hit flag, avoiding the result-record allocation on hot paths."""
        return self._access_tag(addr)[0]

    def access(self, addr: int) -> AccessResult:
        """Access the cache, allocating the line on a miss (allocate-on-miss)."""
        hit, evicted = self._access_tag(addr)
        if hit:
            return AccessResult(hit=True, latency=self.config.hit_latency)
        return AccessResult(hit=False, latency=self.config.hit_latency,
                            evicted_tag=evicted)

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr``; returns True if it was present."""
        index, tag = self._index_and_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStats()

    def occupancy(self) -> int:
        """Total number of valid lines currently resident."""
        return sum(len(ways) for ways in self._sets)
