"""Content-addressed on-disk cache of simulation results.

A sweep over (benchmark, policy, config) jobs is embarrassingly repetitive:
CI reruns the same headline ladder on every push, and interactive work
re-simulates everything after touching one policy.  The cache keys each
:class:`~repro.sim.metrics.SimulationResult` by a stable hash of everything
that determines it — trace profile, trace length, seed, machine config
(through ``MachineConfig.to_key_dict()``), the policy (through
``PolicySpec.to_key_dict()``: name, scheme set, cluster selector and
selector knobs, so policies differing only in selector or knobs never alias
an entry), the energy coefficients (through ``PowerConfig.to_key_dict()``:
results carry their per-cluster energy figures, so a tweaked power model
must miss) and a code-version tag — so repeated sweeps are near-free while
any change to the inputs (or to simulator semantics, via the version tag)
misses cleanly.

Entry format (one file per result, sharded by key prefix)::

    <header JSON line>\\n<pickled SimulationResult payload>

The header records the format version, the full key and a SHA-256 digest of
the payload.  ``load`` re-verifies both: a corrupted, truncated or stale
entry is detected, dropped from disk, and reported as a miss so the caller
recomputes it.  Writes go through a temp file + ``os.replace`` so readers
never observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.sim.metrics import SimulationResult

#: On-disk entry format; bump when the entry layout changes.
CACHE_FORMAT = 1

#: Version tag folded into every cache key.  Bump whenever a code change
#: alters simulation *semantics* (cycle accounting, steering behaviour,
#: metrics definitions), so stale results from older simulator versions can
#: never be served.  Pure refactors and optimisations that keep results
#: bit-identical do not need a bump.
SIMULATOR_VERSION = "1"


def result_key(*parts: object) -> str:
    """Stable content hash over the given key parts (reprs are hashed)."""
    hasher = hashlib.sha256()
    hasher.update(SIMULATOR_VERSION.encode("utf-8"))
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(repr(part).encode("utf-8"))
    return hasher.hexdigest()


def canonical_text(value: object) -> str:
    """Canonical JSON form of a key dictionary (sorted keys, no whitespace).

    Config objects contribute to cache keys through their ``to_key_dict()``
    serialised with this function, so the key depends on every config field's
    *value* — not on repr formatting, field order, or object identity — and
    any field change (including nested cluster/scheduler/memory fields)
    changes the key.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


#: Upper bound on the in-memory entry memo (results are small metric
#: records; the memo exists so a key is read and decoded from disk at most
#: once per process, however many sweeps of a session ask for it).
_MEMO_LIMIT = 4096


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` records."""

    def __init__(self, cache_dir: os.PathLike | str, enabled: bool = True) -> None:
        self.cache_dir = Path(cache_dir)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: entries dropped because the digest or key did not verify
        self.corrupt_drops = 0
        #: corrupt-dropped slots that were subsequently rewritten with a
        #: fresh result (the "delete-and-rewrite" heal: the same corruption
        #: is never re-parsed, and the footer reports ``corrupt: N healed``)
        self.healed = 0
        #: keys whose on-disk entry was dropped as corrupt and not yet
        #: rewritten (drives the ``healed`` accounting)
        self._corrupt_keys: set = set()
        #: of the hits, how many were served from the in-process memo
        #: without touching (or re-decoding) the on-disk entry
        self.memo_hits = 0
        self.bytes_read = 0
        self.bytes_written = 0
        #: key -> already-loaded (or just-stored) result.  Overlapping CLI
        #: flows — a baseline run followed by the suite sweep that contains
        #: the same baseline job — used to re-read and re-decode the same
        #: entry from disk; now the second load is a dict probe.
        self._memo: dict = {}

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """Location of the entry for ``key`` (two-level sharding)."""
        return self.cache_dir / key[:2] / f"{key}.res"

    # ------------------------------------------------------------------- load
    def load(self, key: str) -> Optional[SimulationResult]:
        """Return the cached result for ``key``, or None on miss/corruption."""
        if not self.enabled:
            return None
        memoised = self._memo.get(key)
        if memoised is not None:
            self.hits += 1
            self.memo_hits += 1
            return memoised
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        self.bytes_read += len(blob)
        result = self._decode(key, blob)
        if result is None:
            # Corrupt or stale: remove so the slot is rewritten cleanly.
            self.corrupt_drops += 1
            self._corrupt_keys.add(key)
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        self._memoise(key, result)
        return result

    def _memoise(self, key: str, result: SimulationResult) -> None:
        if len(self._memo) >= _MEMO_LIMIT:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = result

    def _decode(self, key: str, blob: bytes) -> Optional[SimulationResult]:
        newline = blob.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(blob[:newline].decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        payload = blob[newline + 1:]
        if (not isinstance(header, dict)
                or header.get("format") != CACHE_FORMAT
                or header.get("key") != key
                or header.get("digest") != hashlib.sha256(payload).hexdigest()):
            return None
        try:
            result = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(result, SimulationResult):
            return None
        return result

    # ------------------------------------------------------------------ store
    def store(self, key: str, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (atomic rename, best effort)."""
        if not self.enabled:
            return
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps({
            "format": CACHE_FORMAT,
            "key": key,
            "digest": hashlib.sha256(payload).hexdigest(),
        }, sort_keys=True).encode("utf-8")
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            # Unusable cache location (e.g. --cache-dir points at a file):
            # caching degrades to a no-op rather than failing the sweep.
            return
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(header)
                handle.write(b"\n")
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return
        self.stores += 1
        self.bytes_written += len(header) + 1 + len(payload)
        if key in self._corrupt_keys:
            # This slot previously held a corrupt entry: the rewrite heals
            # it (delete happened at detection time; this is the rewrite).
            self._corrupt_keys.discard(key)
            self.healed += 1
        # A just-stored result is the freshest possible entry: serve later
        # loads of the same key from memory instead of round-tripping disk.
        self._memoise(key, result)

    # ------------------------------------------------------------------ verify
    def verify(self, key: str,
               result: Optional[SimulationResult] = None) -> bool:
        """Re-read and digest-check the on-disk entry for ``key``.

        Bypasses the memo deliberately — the point is to check what a
        *future process* will read.  A failing entry is dropped (counted in
        ``corrupt_drops``) and, when ``result`` is supplied, immediately
        rewritten (counted in ``healed``).  Returns True when the on-disk
        entry verified on first read; the supervised engine calls this
        after every store so corruption that lands during a campaign is
        healed before the campaign ends.
        """
        if not self.enabled:
            return True
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            blob = None
        if blob is not None:
            self.bytes_read += len(blob)
            if self._decode(key, blob) is not None:
                return True
        self.corrupt_drops += 1
        self._corrupt_keys.add(key)
        try:
            path.unlink()
        except OSError:
            pass
        if result is not None:
            self.store(key, result)
        return False

    # -------------------------------------------------------------- reporting
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_drops": self.corrupt_drops,
            "healed": self.healed,
            "memo_hits": self.memo_hits,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
