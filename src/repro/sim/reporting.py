"""Plain-text / CSV reporting of experiment results.

The benchmark harness prints the same rows and series the paper's figures
plot; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.steering import policy_spec
from repro.sim.experiment import (
    PolicySweepResult,
    TopologySweepResult,
    WorkloadSweepResult,
)
from repro.sim.metrics import SimulationResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.3f}") -> str:
    """Format a simple aligned text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: Mapping[str, float], title: Optional[str] = None,
                  value_label: str = "value", percent: bool = False) -> str:
    """Format a name -> value series (one figure series) as text."""
    rows = []
    for name, value in series.items():
        rows.append((name, value * 100.0 if percent else value))
    headers = ["name", f"{value_label}{' (%)' if percent else ''}"]
    return format_table(headers, rows, title=title,
                        float_format="{:.2f}" if percent else "{:.4f}")


def cluster_energy_text(result: SimulationResult) -> str:
    """Compact per-cluster energy summary of one run, e.g.
    ``wide:1.5e+05 narrow:2.1e+04 shared:9.8e+04`` (``-`` when energy
    accounting was disabled)."""
    if not result.power:
        return "-"
    parts = [f"{name}:{breakdown.total:.3g}"
             for name, breakdown in result.power.items()]
    if result.shared_power is not None:
        parts.append(f"shared:{result.shared_power.total:.3g}")
    return " ".join(parts)


def mean_cluster_energy_text(results: Sequence[SimulationResult]) -> str:
    """Compact per-cluster energy summary averaged over several runs."""
    totals: Dict[str, float] = {}
    shared = 0.0
    with_energy = 0
    for result in results:
        if not result.power:
            continue
        with_energy += 1
        for name, breakdown in result.power.items():
            totals[name] = totals.get(name, 0.0) + breakdown.total
        if result.shared_power is not None:
            shared += result.shared_power.total
    if not with_energy:
        return "-"
    parts = [f"{name}:{value / with_energy:.3g}" for name, value in totals.items()]
    parts.append(f"shared:{shared / with_energy:.3g}")
    return " ".join(parts)


def _policy_cells(sweep: PolicySweepResult, policy: str):
    """(benchmark result, policy result) pairs that actually exist.

    A supervised campaign may quarantine individual jobs; reporting renders
    every surviving cell instead of crashing on the missing ones.
    """
    cells = []
    for benchmark in sweep.benchmarks:
        bench = sweep.results.get(benchmark)
        if bench is not None and policy in bench.by_policy:
            cells.append((bench, bench.by_policy[policy]))
    return cells


def results_to_rows(sweep: PolicySweepResult, policy: str) -> List[List[object]]:
    """Rows of per-benchmark metrics for one policy (Figures 6-9, 12)."""
    rows: List[List[object]] = []
    cells = _policy_cells(sweep, policy)
    for bench, result in cells:
        rows.append([
            bench.benchmark,
            bench.speedup(policy) * 100.0,
            result.helper_fraction * 100.0,
            result.copy_fraction * 100.0,
            result.prediction.accuracy * 100.0,
            bench.ed2_improvement(policy) * 100.0,
            cluster_energy_text(result),
        ])
    rows.append([
        "AVG",
        sweep.mean_speedup(policy) * 100.0,
        sweep.mean_helper_fraction(policy) * 100.0,
        sweep.mean_copy_fraction(policy) * 100.0,
        sum(result.prediction.accuracy for _, result in cells)
        / max(1, len(cells)) * 100.0,
        sweep.mean_ed2_improvement(policy) * 100.0,
        mean_cluster_energy_text([result for _, result in cells]),
    ])
    return rows


def format_policy_table(sweep: PolicySweepResult, policy: str,
                        title: Optional[str] = None) -> str:
    """A per-benchmark table for one policy."""
    headers = ["benchmark", "speedup %", "helper %", "copies %", "pred acc %",
               "ED2 gain %", "energy by cluster"]
    return format_table(headers, results_to_rows(sweep, policy),
                        title=title or f"policy: {policy}",
                        float_format="{:.2f}")


def _sweep_selector(sweep: PolicySweepResult, policy: str) -> str:
    """The selector name a policy's runs steered under (self-description)."""
    for _, result in _policy_cells(sweep, policy):
        if result.selector:
            return result.selector
    return "-"


def format_ladder_summary(sweep: PolicySweepResult, title: str = "Policy ladder") -> str:
    """Mean speedup / helper / copies / ED² gain per policy (the headline)."""
    headers = ["policy", "selector", "mean speedup %", "mean helper %",
               "mean copies %", "mean ED2 gain %", "energy by cluster"]
    rows = []
    for policy in sweep.policies:
        rows.append([
            policy,
            _sweep_selector(sweep, policy),
            sweep.mean_speedup(policy) * 100.0,
            sweep.mean_helper_fraction(policy) * 100.0,
            sweep.mean_copy_fraction(policy) * 100.0,
            sweep.mean_ed2_improvement(policy) * 100.0,
            mean_cluster_energy_text([result for _, result
                                      in _policy_cells(sweep, policy)]),
        ])
    return format_table(headers, rows, title=title, float_format="{:.2f}")


def sweep_to_csv(sweep: PolicySweepResult) -> str:
    """All (benchmark, policy) rows of a sweep as CSV (the ``sweep`` command).

    One row per benchmark per policy with the headline per-run metrics, the
    speedup against the shared baseline, and the energy / ED² columns of the
    per-cluster power model.
    """
    headers = ["benchmark", "policy", "selector", "speedup", "ipc",
               "helper_fraction", "copy_fraction", "prediction_accuracy",
               "fatal_rate", "recoveries", "slow_cycles", "energy", "ed2",
               "ed2_gain"]
    rows: List[List[object]] = []
    for benchmark in sweep.benchmarks:
        bench = sweep.results.get(benchmark)
        if bench is None:
            continue  # the whole benchmark was quarantined
        for policy in sweep.policies:
            result = bench.by_policy.get(policy)
            if result is None:
                continue  # this cell was quarantined
            rows.append([
                benchmark, policy, result.selector or "-",
                bench.speedup(policy), result.ipc,
                result.helper_fraction, result.copy_fraction,
                result.prediction.accuracy, result.prediction.fatal_rate,
                result.recoveries, result.slow_cycles,
                result.energy, result.ed2, bench.ed2_improvement(policy),
            ])
    return to_csv(headers, rows)


def format_topology_table(sweep: TopologySweepResult,
                          title: Optional[str] = None) -> str:
    """Sensitivity table of a design-space exploration (``explore`` command).

    One row per machine shape with its mean speedup and ED² gain over the
    shared monolithic baseline, helper occupancy, copy overhead and the
    mean per-cluster energy split; the best point by each criterion is
    marked so a grid scan reads off the winner directly.
    """
    best = sweep.best_point().name if sweep.points else None
    best_ed2 = (sweep.best_ed2_point().name
                if sweep.points and any(
                    sweep.mean_energy(p.name) > 0 for p in sweep.points)
                else None)
    headers = ["point", "clusters", "mean speedup %", "mean helper %",
               "mean copies %", "mean ED2 gain %", "energy by cluster", ""]
    rows: List[List[object]] = []
    for point in sweep.points:
        markers = []
        if point.name == best:
            markers.append("<-- best speedup")
        if best_ed2 is not None and point.name == best_ed2:
            markers.append("<-- best ED2")
        rows.append([
            point.name,
            point.describe(),
            sweep.mean_speedup(point.name) * 100.0,
            sweep.mean_helper_fraction(point.name) * 100.0,
            sweep.mean_copy_fraction(point.name) * 100.0,
            sweep.mean_ed2_improvement(point.name) * 100.0,
            mean_cluster_energy_text([sweep.result(point.name, b)
                                      for b in sweep.benchmarks
                                      if (point.name, b) in sweep.results]),
            " ".join(markers),
        ])
    try:
        policy_label = f"{sweep.policy}/{policy_spec(sweep.policy).selector}"
    except KeyError:
        policy_label = sweep.policy
    return format_table(
        headers, rows,
        title=title or (f"Design-space exploration ({policy_label}, "
                        f"{len(sweep.points)} points x "
                        f"{len(sweep.benchmarks)} benchmarks)"),
        float_format="{:.2f}")


def topology_sweep_to_csv(sweep: TopologySweepResult) -> str:
    """All (point, benchmark) rows of a topology exploration as CSV."""
    headers = ["point", "clusters", "benchmark", "speedup", "ipc",
               "helper_fraction", "copy_fraction", "recoveries", "slow_cycles",
               "energy", "ed2", "ed2_gain", "cluster_energy"]
    rows: List[List[object]] = []
    for point in sweep.points:
        for benchmark in sweep._bench_cells(point.name):
            result = sweep.result(point.name, benchmark)
            rows.append([
                point.name, point.describe(), benchmark,
                sweep.speedup(point.name, benchmark), result.ipc,
                result.helper_fraction, result.copy_fraction,
                result.recoveries, result.slow_cycles,
                result.energy, result.ed2,
                sweep.ed2_improvement(point.name, benchmark),
                cluster_energy_text(result).replace(" ", ";"),
            ])
    return to_csv(headers, rows)


def format_energy_table(sweep: PolicySweepResult, policy: str,
                        title: Optional[str] = None) -> str:
    """The paper's energy comparison (``energy`` command): per-benchmark
    energy / delay ratios and the ED² improvement of ``policy`` over the
    monolithic baseline (the paper reports +5.1% for IR)."""
    rows: List[List[object]] = []
    energy_ratios: List[float] = []
    delay_ratios: List[float] = []
    cells = _policy_cells(sweep, policy)
    for bench, candidate in cells:
        base = bench.baseline
        energy_ratio = candidate.energy / base.energy if base.energy else 0.0
        delay_ratio = (candidate.slow_cycles / base.slow_cycles
                       if base.slow_cycles else 0.0)
        energy_ratios.append(energy_ratio)
        delay_ratios.append(delay_ratio)
        rows.append([
            bench.benchmark, energy_ratio, delay_ratio,
            bench.ed2_improvement(policy) * 100.0,
            cluster_energy_text(candidate),
        ])
    count = max(1, len(cells))
    rows.append([
        "AVG", sum(energy_ratios) / count, sum(delay_ratios) / count,
        sweep.mean_ed2_improvement(policy) * 100.0,
        mean_cluster_energy_text([result for _, result in cells]),
    ])
    try:
        policy_label = f"{policy}/{policy_spec(policy).selector}"
    except KeyError:
        policy_label = policy
    return format_table(
        ["benchmark", "energy ratio", "delay ratio", "ED2 gain %",
         "energy by cluster"],
        rows,
        title=title or (f"Energy-delay² comparison ({policy_label} vs "
                        "monolithic baseline)"),
        float_format="{:.3f}")


def format_workload_summary(sweep: WorkloadSweepResult,
                            descriptions: Optional[Mapping[str, str]] = None,
                            curve_points: int = 20) -> str:
    """Figure 14: per-category mean speedups plus the per-app S-curve.

    The S-curve is rendered as evenly spaced quantiles (plus both extremes)
    so the summary stays readable for the full 409-app suite.
    """
    by_category = sweep.category_speedups()
    rows: List[List[object]] = []
    for category, gains in by_category.items():
        description = (descriptions or {}).get(category, "")
        rows.append([category, description, len(gains),
                     sum(gains) / len(gains) * 100.0])
    rows.append(["ALL", "suite average", len(sweep.apps),
                 sweep.mean_speedup() * 100.0])
    text = format_table(
        ["category", "description", "#apps", "mean performance increase %"],
        rows,
        title=f"Figure 14 - workload-category performance ({sweep.policy})",
        float_format="{:.2f}")

    curve = sweep.s_curve()
    if curve:
        count = min(curve_points, len(curve))
        indices = sorted({round(i * (len(curve) - 1) / max(1, count - 1))
                          for i in range(count)})
        curve_rows = [[index + 1, curve[index]] for index in indices]
        text += "\n\n" + format_table(
            ["application rank", "performance (baseline = 1)"], curve_rows,
            title=(f"Figure 14 (bottom) - per-application S-curve "
                   f"({len(curve)} apps)"),
            float_format="{:.3f}")
    return text


def _format_bytes(count: int) -> str:
    """Humanise a byte count (1.5kB / 2.3MB), exact below 1kB."""
    if count < 1000:
        return f"{count}B"
    for unit in ("kB", "MB", "GB", "TB"):
        count /= 1000.0
        if count < 1000 or unit == "TB":
            return f"{count:.1f}{unit}"
    raise AssertionError("unreachable")


def cache_stats_line(cache, trace_store=None, engine=None) -> str:
    """One-line sweep-footer summary of the result cache (and trace store).

    E.g. ``cache: hits=96 (memo 12) misses=0 stores=0 read=1.2MB
    written=0B · traces: hits=12 stores=0`` — the compact form every
    sweep-shaped CLI table prints under itself when a cache is configured.
    When ``engine`` is given and it clamped an oversubscribed worker
    request, the clamp is appended (e.g. ``· jobs=4 (clamped from 16)``).
    """
    stats = cache.stats()
    parts = [f"cache: hits={stats['hits']}"]
    if stats.get("memo_hits"):
        parts[-1] += f" (memo {stats['memo_hits']})"
    parts.append(f"misses={stats['misses']}")
    parts.append(f"stores={stats['stores']}")
    if stats.get("corrupt_drops"):
        parts.append(f"corrupt: {stats['corrupt_drops']} dropped, "
                     f"{stats.get('healed', 0)} healed")
    parts.append(f"read={_format_bytes(stats.get('bytes_read', 0))}")
    parts.append(f"written={_format_bytes(stats.get('bytes_written', 0))}")
    line = " ".join(parts)
    if trace_store is not None:
        tstats = trace_store.stats()
        line += (f" · traces: hits={tstats['hits']} "
                 f"stores={tstats['stores']}")
        if tstats.get("corrupt_drops"):
            line += (f" corrupt: {tstats['corrupt_drops']} dropped, "
                     f"{tstats.get('healed', 0)} healed")
    if engine is not None and getattr(engine, "jobs_clamped_from", None):
        line += (f" · jobs={engine.jobs} (clamped from "
                 f"{engine.jobs_clamped_from}: the host has "
                 f"{engine.jobs} usable CPU(s))")
    return line


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as CSV text (no external dependencies)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(f"{cell:.6f}")
            else:
                cells.append(str(cell))
        lines.append(",".join(cells))
    return "\n".join(lines)
