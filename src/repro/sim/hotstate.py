"""Hot simulator state: struct-of-arrays views and backend selection.

The event wheel's per-event work operates on a small set of *hot state*
structures (DESIGN.md, "Hot state & compiled core"):

* each cluster's :class:`~repro.pipeline.scheduler.IssueQueue` columns —
  packed age keys, outstanding-source counts and memory flags in parallel
  ``array('q')`` slots plus the uid→slot ``entries`` / ``ready_entries``
  dicts;
* the :class:`~repro.pipeline.rob.ReorderBuffer` ring columns (uid / seq /
  state per ring slot);
* the completion calendar: a ``{cycle: [dyn, ...]}`` bucket dict plus a
  lazily-pruned min-heap of the bucket cycles.

:class:`HotState` aggregates them behind one object so the inner loops (and
the optional compiled backend) have a single binding point.  The compiled
backend is a small C extension, :mod:`repro._corekernel`, implementing the
innermost pure-decision kernels over exactly these structures: next-event
selection, ready-scan issue selection and the ROB commit scan.  Both
backends are bit-identical by construction and pinned by the randomized
equivalence suite (``tests/test_event_wheel.py``) — pickle-equality of
:class:`~repro.sim.metrics.SimulationResult` is the bar, so no result field
records which backend ran.

Backend selection
-----------------
``REPRO_BACKEND`` picks the backend process-wide (the ``--backend`` CLI
flag mirrors it); :class:`~repro.sim.simulator.HelperClusterSimulator`
accepts a per-instance override for co-simulation:

* ``python`` — always use the pure-python Layer-1 path;
* ``compiled`` — require :mod:`repro._corekernel`; raise with build
  instructions when it is not importable;
* ``auto`` (default / unset) — use the compiled kernels when importable,
  silently fall back when the extension was never built, and degrade with
  a single warning when the extension exists but fails to import (a broken
  build must not change results, only speed).
"""

from __future__ import annotations

import os
import warnings
from array import array
from heapq import heappop
from typing import Dict, List, Optional, Tuple

#: Environment variable (and CLI ``--backend``) controlling the backend.
BACKEND_ENV = "REPRO_BACKEND"

_VALID_CHOICES = ("auto", "python", "compiled")

#: Memoised import attempt: ``(available, module_or_None)``.
_kernel_cache: Optional[Tuple[bool, object]] = None
_warned_broken = False


def _import_kernel():
    """Try importing the compiled extension once; memoise the outcome.

    Returns the module or ``None``.  A missing extension (never built) is
    remembered silently; a present-but-broken extension emits one warning
    per process and is treated as missing from then on.
    """
    global _kernel_cache, _warned_broken
    if _kernel_cache is not None:
        return _kernel_cache[1]
    try:
        import repro._corekernel as _corekernel  # noqa: PLC0415 (optional)
        _kernel_cache = (True, _corekernel)
    except ModuleNotFoundError:
        _kernel_cache = (False, None)
    except Exception as exc:  # broken build: degrade, loudly but once
        if not _warned_broken:
            _warned_broken = True
            warnings.warn(
                f"repro._corekernel failed to import ({exc!r}); "
                f"falling back to the pure-python simulator backend",
                RuntimeWarning, stacklevel=2)
        _kernel_cache = (False, None)
    return _kernel_cache[1]


def backend_choice(override: Optional[str] = None) -> str:
    """The requested backend: ``override`` if given, else ``REPRO_BACKEND``."""
    choice = override if override is not None else os.environ.get(BACKEND_ENV, "auto")
    choice = choice.strip().lower() or "auto"
    if choice not in _VALID_CHOICES:
        raise ValueError(
            f"invalid backend {choice!r}: expected one of {_VALID_CHOICES} "
            f"(via {'--backend' if override is not None else BACKEND_ENV})")
    return choice


def resolve_backend(override: Optional[str] = None):
    """Resolve the backend to use: ``('python'|'compiled', module_or_None)``.

    ``override`` takes precedence over the environment variable.  Raises
    ``RuntimeError`` when ``compiled`` is forced but the extension cannot
    be imported.
    """
    choice = backend_choice(override)
    if choice == "python":
        return "python", None
    kernel = _import_kernel()
    if kernel is not None:
        return "compiled", kernel
    if choice == "compiled":
        raise RuntimeError(
            "REPRO_BACKEND=compiled but the repro._corekernel extension is "
            "not importable; build it with "
            "`python setup.py build_ext --inplace` (gcc required) or use "
            "REPRO_BACKEND=python")
    return "python", None


def compiled_available() -> bool:
    """Whether the compiled extension imports (for co-simulation / reporting)."""
    return _import_kernel() is not None


def detected_backend() -> str:
    """The backend a default-constructed simulator would use right now."""
    return resolve_backend()[0]


class DynTable:
    """Struct-of-arrays columns for per-in-flight-uop dispatch state.

    Indexed by ``dyn_id`` — the simulator's dense, monotonically increasing
    dynamic-uop counter, so slots are append-only and never recycled within
    a run (a few MB per million dynamic uops; no free-list bugs).  The hot
    scalar fields of the simulator's ``_DynUop`` record live *only* here;
    the carrier object keeps the cold object references and exposes these
    columns through properties for the cold paths.

    Column layout per slot: ``seq`` / ``domain`` / ``value_uid`` (-1 = no
    produced value) / ``pnarrow`` (-1 unknown, 0 wide, 1 narrow) /
    ``opcode`` and ``unit`` enum codes / ``kindcol`` (0 trace, 1 copy,
    2 chunk) / ``flags`` bitset (:data:`F_COMPLETED` …).
    """

    __slots__ = ("seq", "domain", "flags", "value_uid", "pnarrow",
                 "kindcol", "opcode", "unit", "cap")

    def __init__(self, cap: int = 1024) -> None:
        self.cap = cap
        self.seq = array("q", bytes(8 * cap))
        self.domain = array("q", bytes(8 * cap))
        self.flags = array("q", bytes(8 * cap))
        self.value_uid = array("q", b"\xff" * (8 * cap))
        self.pnarrow = array("q", b"\xff" * (8 * cap))
        self.kindcol = array("q", bytes(8 * cap))
        self.opcode = array("q", bytes(8 * cap))
        self.unit = array("q", bytes(8 * cap))

    def ensure(self, dyn_id: int) -> None:
        """Grow the columns so ``dyn_id`` is indexable."""
        cap = self.cap
        if dyn_id < cap:
            return
        new_cap = cap
        while dyn_id >= new_cap:
            new_cap *= 2
        grow = new_cap - cap
        self.seq.extend(array("q", bytes(8 * grow)))
        self.domain.extend(array("q", bytes(8 * grow)))
        self.flags.extend(array("q", bytes(8 * grow)))
        self.value_uid.extend(array("q", b"\xff" * (8 * grow)))
        self.pnarrow.extend(array("q", b"\xff" * (8 * grow)))
        self.kindcol.extend(array("q", bytes(8 * grow)))
        self.opcode.extend(array("q", bytes(8 * grow)))
        self.unit.extend(array("q", bytes(8 * grow)))
        self.cap = new_cap


#: ``DynTable.flags`` bits.
F_COMPLETED = 1
F_SQUASHED = 2
F_ISSUED = 4
F_IN_ROB = 8
F_REPLICATE_LOAD = 16
F_LAST_CHUNK = 32

#: ``DynTable.kindcol`` codes.
KIND_TRACE = 0
KIND_COPY = 1
KIND_CHUNK = 2


class WaiterPool:
    """Per-producer waiter lists as intrusive linked lists over array slots.

    Replaces the old ``{(value_uid, domain): [dyn, ...]}`` dict-of-lists:
    each producer key owns a FIFO singly-linked list whose nodes live in two
    parallel ``array('q')`` columns (``node_dyn`` — the waiting dyn slot,
    ``node_next`` — next node or -1).  Value keys index head/tail lanes by
    ``value_uid * num_domains + domain``; chunk-chain keys (the old
    ``("chunk", dyn_id)`` tuples) index per-dyn-slot lanes.  Walking a list
    (wakeup) frees its nodes onto an internal free list, so steady-state
    node storage is bounded by the in-flight dependence count.
    """

    __slots__ = ("node_dyn", "node_next", "ctrl",
                 "value_heads", "value_tails", "chunk_heads", "chunk_tails",
                 "num_domains", "vcap", "ccap")

    def __init__(self, num_domains: int, vcap: int = 1024,
                 ccap: int = 1024) -> None:
        self.num_domains = num_domains
        self.node_dyn = array("q")
        self.node_next = array("q")
        #: control block shared with the compiled wakeup kernel:
        #: slot 0 = free-list head (-1 = empty), slot 1 = live node count
        self.ctrl = array("q", [-1, 0])
        self.vcap = vcap
        self.ccap = ccap
        self.value_heads = array("q", b"\xff" * (8 * vcap * num_domains))
        self.value_tails = array("q", b"\xff" * (8 * vcap * num_domains))
        self.chunk_heads = array("q", b"\xff" * (8 * ccap))
        self.chunk_tails = array("q", b"\xff" * (8 * ccap))

    def ensure_value(self, value_uid: int) -> None:
        cap = self.vcap
        if value_uid < cap:
            return
        new_cap = cap
        while value_uid >= new_cap:
            new_cap *= 2
        grow = (new_cap - cap) * self.num_domains
        self.value_heads.extend(array("q", b"\xff" * (8 * grow)))
        self.value_tails.extend(array("q", b"\xff" * (8 * grow)))
        self.vcap = new_cap

    def ensure_chunk(self, dyn_id: int) -> None:
        cap = self.ccap
        if dyn_id < cap:
            return
        new_cap = cap
        while dyn_id >= new_cap:
            new_cap *= 2
        grow = new_cap - cap
        self.chunk_heads.extend(array("q", b"\xff" * (8 * grow)))
        self.chunk_tails.extend(array("q", b"\xff" * (8 * grow)))
        self.ccap = new_cap

    def reserve(self, count: int) -> None:
        """Pre-grow the node free list so the next ``count`` appends cannot
        reallocate (the compiled kernels append but never grow)."""
        ctrl = self.ctrl
        free = ctrl[0]
        available = 0
        node_next = self.node_next
        while free >= 0 and available < count:
            available += 1
            free = node_next[free]
        node_dyn = self.node_dyn
        while available < count:
            slot = len(node_dyn)
            node_dyn.append(-1)
            node_next.append(ctrl[0])
            ctrl[0] = slot
            available += 1

    # hot-path
    def _alloc_node(self, dyn_id: int) -> int:
        ctrl = self.ctrl
        slot = ctrl[0]
        node_next = self.node_next
        if slot >= 0:
            ctrl[0] = node_next[slot]
            self.node_dyn[slot] = dyn_id
            node_next[slot] = -1
        else:
            slot = len(self.node_dyn)
            self.node_dyn.append(dyn_id)
            node_next.append(-1)
        ctrl[1] += 1
        return slot

    # hot-path
    def append_value(self, value_uid: int, domain: int, dyn_id: int) -> None:
        """Append ``dyn_id`` to the (value_uid, domain) waiter list."""
        self.ensure_value(value_uid)
        lane = value_uid * self.num_domains + domain
        node = self._alloc_node(dyn_id)
        tails = self.value_tails
        tail = tails[lane]
        if tail < 0:
            self.value_heads[lane] = node
        else:
            self.node_next[tail] = node
        tails[lane] = node

    # hot-path
    def append_chunk(self, prev_dyn_id: int, dyn_id: int) -> None:
        """Append ``dyn_id`` to the chunk-chain list of ``prev_dyn_id``."""
        self.ensure_chunk(prev_dyn_id)
        node = self._alloc_node(dyn_id)
        tails = self.chunk_tails
        tail = tails[prev_dyn_id]
        if tail < 0:
            self.chunk_heads[prev_dyn_id] = node
        else:
            self.node_next[tail] = node
        tails[prev_dyn_id] = node

    # hot-path
    def free_node(self, node: int) -> None:
        """Return a walked node to the free list (wakeup walks call this
        per node after reading ``node_next``)."""
        ctrl = self.ctrl
        self.node_next[node] = ctrl[0]
        self.node_dyn[node] = -1
        ctrl[0] = node
        ctrl[1] -= 1

    def drop_squashed(self, value_uid: int, domain: int, flags) -> None:
        """Free the (value_uid, domain) list's squashed-dyn nodes.

        Recovery calls this for each cancelled copy's destination lane: the
        copy will never deliver, so the lane may never be walked again and
        its squashed waiters would otherwise strand their nodes forever.
        Surviving (non-squashed) waiters are relinked in FIFO order.
        """
        if value_uid >= self.vcap:
            return
        lane = value_uid * self.num_domains + domain
        node = self.value_heads[lane]
        if node < 0:
            return
        node_dyn = self.node_dyn
        node_next = self.node_next
        head = tail = -1
        while node >= 0:
            nxt = node_next[node]
            if flags[node_dyn[node]] & F_SQUASHED:
                self.free_node(node)
            else:
                node_next[node] = -1
                if tail < 0:
                    head = node
                else:
                    node_next[tail] = node
                tail = node
            node = nxt
        self.value_heads[lane] = head
        self.value_tails[lane] = tail

    def drop_squashed_chunk(self, prev_dyn_id: int, flags) -> None:
        """Chunk-lane counterpart of :meth:`drop_squashed`: free squashed
        waiters chained on ``prev_dyn_id``, which will never complete."""
        if prev_dyn_id >= self.ccap:
            return
        node = self.chunk_heads[prev_dyn_id]
        if node < 0:
            return
        node_dyn = self.node_dyn
        node_next = self.node_next
        head = tail = -1
        while node >= 0:
            nxt = node_next[node]
            if flags[node_dyn[node]] & F_SQUASHED:
                self.free_node(node)
            else:
                node_next[node] = -1
                if tail < 0:
                    head = node
                else:
                    node_next[tail] = node
                tail = node
            node = nxt
        self.chunk_heads[prev_dyn_id] = head
        self.chunk_tails[prev_dyn_id] = tail

    def stranded_nodes(self) -> int:
        """Live (allocated, unwalked) node count — zero once every producer
        list has been woken or the machine drained (property-test hook)."""
        return self.ctrl[1]


class HotState:
    """The simulator's hot state, aggregated behind one binding point.

    Owns the completion calendar, the per-uop :class:`DynTable` columns and
    the :class:`WaiterPool`, and references every cluster's scheduler
    columns and the ROB ring; see the module docstring for the layout.
    The API is deliberately narrow — the simulator reads/writes the
    calendar through the aliased ``completions`` / ``heap`` attributes and
    calls :meth:`next_completion`; everything else is wiring for the
    compiled kernels.
    """

    __slots__ = ("completions", "heap", "queues", "rob", "periods", "ratio",
                 "kernel", "cstate", "dyn", "waiters", "stat_lanes")

    def __init__(self, queues, rob, periods, ratio: int) -> None:
        #: completion calendar: fast cycle -> bucket of completing dyn uops
        #: (bucket order is issue order, which writeback preserves)
        self.completions: Dict[int, list] = {}
        #: lazily-pruned min-heap over the calendar's cycles (unique keys:
        #: a cycle is pushed exactly when its bucket is created)
        self.heap: List[int] = []
        #: per-cluster issue queues, cluster 0 = wide host
        self.queues = list(queues)
        self.rob = rob
        #: per-cluster clock periods in fast cycles
        self.periods = array("q", periods)
        self.ratio = ratio
        #: per-uop dispatch-state columns, indexed by dyn_id
        self.dyn = DynTable()
        #: per-producer waiter lists over the dyn slots
        self.waiters = WaiterPool(num_domains=len(self.queues))
        #: dispatch-accounting counters the batch kernel increments; layout
        #: is ``cluster * 6 + [scheduler, regfile, alu, agu, fpu,
        #: dispatched]`` followed by two global slots ``[rob_ops,
        #: rename_ops]``; folded into the Python-level activity records by
        #: the simulator's ``_finalise``.
        self.stat_lanes = array("q", bytes(8 * (6 * len(self.queues) + 2)))
        self.kernel = None
        self.cstate = None

    # ------------------------------------------------------------- python path
    # hot-path
    def next_completion(self) -> Optional[int]:
        """Earliest upcoming writeback cycle (lazy-pruned heap head)."""
        heap = self.heap
        completions = self.completions
        while heap:
            head = heap[0]
            if head in completions:
                return head
            heappop(heap)
        return None

    # ----------------------------------------------------------- compiled path
    def bind_kernel(self, kernel) -> None:
        """Build the compiled backend's state binding over these structures.

        The C state holds references to the calendar dict/heap list, each
        queue's ready dict and ``array('q')`` columns, and the ROB ring's
        state column; buffers of growable arrays are (re)acquired per call
        inside the extension, so recovery-forced queue growth stays safe.
        """
        self.kernel = kernel
        self.cstate = kernel.bind(
            self.completions,
            self.heap,
            [q.ready_entries for q in self.queues],
            [q.agekey for q in self.queues],
            [q.mem_flags for q in self.queues],
            self.periods,
            self.ratio,
            self.rob.state_ring,
            self.rob.size,
            self.rob.commit_width,
        )
        # The ROB commit scan routes through the kernel for every commit
        # call while this binding is alive (call sites are unchanged, so
        # test spies on ``rob.commit`` keep working).
        self.rob.bind_scan_kernel(kernel.rob_commit_scan, self.cstate)

    def bind_uops(self, kernel, engine) -> None:
        """Extend the compiled binding with the dispatch-chain columns.

        Hands the extension every structure the ``resolve_deps`` /
        ``wakeup_waiters`` / ``dispatch_uop`` / ``dispatch_batch`` kernels
        touch: the DynTable flag/domain columns, the waiter pool, the copy
        engine's value lanes, the ROB ring and each scheduler's insert-side
        columns.  All growable arrays extend in place (object identity is
        stable), and the extension re-acquires their buffers per call.
        Requires :meth:`bind_kernel` to have built ``cstate`` first.
        """
        dyn = self.dyn
        pool = self.waiters
        rob = self.rob
        queues = self.queues
        kernel.bind_uops(
            self.cstate,
            dyn.flags, dyn.domain,
            pool.node_dyn, pool.node_next, pool.ctrl,
            pool.value_heads, pool.value_tails,
            engine.avail_lanes, engine.avail_order_lanes,
            engine.avail_count_lanes,
            engine.pending_lanes, engine.prefetched_lanes,
            engine.copied_lanes, engine.stat_lanes,
            rob.uid_ring, rob.seq_ring, rob.dyn_ring, rob.ctrl,
            rob.by_uid, rob.payload_ring,
            [q.entries for q in queues],
            [q.remaining for q in queues],
            [q.uids for q in queues],
            [q.payloads for q in queues],
            [q.free_stack for q in queues],
            [q.ctrl for q in queues],
            self.stat_lanes,
            array("q", [q.size for q in queues]),
        )
