"""Hot simulator state: struct-of-arrays views and backend selection.

The event wheel's per-event work operates on a small set of *hot state*
structures (DESIGN.md, "Hot state & compiled core"):

* each cluster's :class:`~repro.pipeline.scheduler.IssueQueue` columns —
  packed age keys, outstanding-source counts and memory flags in parallel
  ``array('q')`` slots plus the uid→slot ``entries`` / ``ready_entries``
  dicts;
* the :class:`~repro.pipeline.rob.ReorderBuffer` ring columns (uid / seq /
  state per ring slot);
* the completion calendar: a ``{cycle: [dyn, ...]}`` bucket dict plus a
  lazily-pruned min-heap of the bucket cycles.

:class:`HotState` aggregates them behind one object so the inner loops (and
the optional compiled backend) have a single binding point.  The compiled
backend is a small C extension, :mod:`repro._corekernel`, implementing the
innermost pure-decision kernels over exactly these structures: next-event
selection, ready-scan issue selection and the ROB commit scan.  Both
backends are bit-identical by construction and pinned by the randomized
equivalence suite (``tests/test_event_wheel.py``) — pickle-equality of
:class:`~repro.sim.metrics.SimulationResult` is the bar, so no result field
records which backend ran.

Backend selection
-----------------
``REPRO_BACKEND`` picks the backend process-wide (the ``--backend`` CLI
flag mirrors it); :class:`~repro.sim.simulator.HelperClusterSimulator`
accepts a per-instance override for co-simulation:

* ``python`` — always use the pure-python Layer-1 path;
* ``compiled`` — require :mod:`repro._corekernel`; raise with build
  instructions when it is not importable;
* ``auto`` (default / unset) — use the compiled kernels when importable,
  silently fall back when the extension was never built, and degrade with
  a single warning when the extension exists but fails to import (a broken
  build must not change results, only speed).
"""

from __future__ import annotations

import os
import warnings
from array import array
from heapq import heappop
from typing import Dict, List, Optional, Tuple

#: Environment variable (and CLI ``--backend``) controlling the backend.
BACKEND_ENV = "REPRO_BACKEND"

_VALID_CHOICES = ("auto", "python", "compiled")

#: Memoised import attempt: ``(available, module_or_None)``.
_kernel_cache: Optional[Tuple[bool, object]] = None
_warned_broken = False


def _import_kernel():
    """Try importing the compiled extension once; memoise the outcome.

    Returns the module or ``None``.  A missing extension (never built) is
    remembered silently; a present-but-broken extension emits one warning
    per process and is treated as missing from then on.
    """
    global _kernel_cache, _warned_broken
    if _kernel_cache is not None:
        return _kernel_cache[1]
    try:
        import repro._corekernel as _corekernel  # noqa: PLC0415 (optional)
        _kernel_cache = (True, _corekernel)
    except ModuleNotFoundError:
        _kernel_cache = (False, None)
    except Exception as exc:  # broken build: degrade, loudly but once
        if not _warned_broken:
            _warned_broken = True
            warnings.warn(
                f"repro._corekernel failed to import ({exc!r}); "
                f"falling back to the pure-python simulator backend",
                RuntimeWarning, stacklevel=2)
        _kernel_cache = (False, None)
    return _kernel_cache[1]


def backend_choice(override: Optional[str] = None) -> str:
    """The requested backend: ``override`` if given, else ``REPRO_BACKEND``."""
    choice = override if override is not None else os.environ.get(BACKEND_ENV, "auto")
    choice = choice.strip().lower() or "auto"
    if choice not in _VALID_CHOICES:
        raise ValueError(
            f"invalid backend {choice!r}: expected one of {_VALID_CHOICES} "
            f"(via {'--backend' if override is not None else BACKEND_ENV})")
    return choice


def resolve_backend(override: Optional[str] = None):
    """Resolve the backend to use: ``('python'|'compiled', module_or_None)``.

    ``override`` takes precedence over the environment variable.  Raises
    ``RuntimeError`` when ``compiled`` is forced but the extension cannot
    be imported.
    """
    choice = backend_choice(override)
    if choice == "python":
        return "python", None
    kernel = _import_kernel()
    if kernel is not None:
        return "compiled", kernel
    if choice == "compiled":
        raise RuntimeError(
            "REPRO_BACKEND=compiled but the repro._corekernel extension is "
            "not importable; build it with "
            "`python setup.py build_ext --inplace` (gcc required) or use "
            "REPRO_BACKEND=python")
    return "python", None


def compiled_available() -> bool:
    """Whether the compiled extension imports (for co-simulation / reporting)."""
    return _import_kernel() is not None


def detected_backend() -> str:
    """The backend a default-constructed simulator would use right now."""
    return resolve_backend()[0]


class HotState:
    """The simulator's hot state, aggregated behind one binding point.

    Owns the completion calendar and references every cluster's scheduler
    columns and the ROB ring; see the module docstring for the layout.
    The API is deliberately narrow — the simulator reads/writes the
    calendar through the aliased ``completions`` / ``heap`` attributes and
    calls :meth:`next_completion`; everything else is wiring for the
    compiled kernels.
    """

    __slots__ = ("completions", "heap", "queues", "rob", "periods", "ratio",
                 "kernel", "cstate")

    def __init__(self, queues, rob, periods, ratio: int) -> None:
        #: completion calendar: fast cycle -> bucket of completing dyn uops
        #: (bucket order is issue order, which writeback preserves)
        self.completions: Dict[int, list] = {}
        #: lazily-pruned min-heap over the calendar's cycles (unique keys:
        #: a cycle is pushed exactly when its bucket is created)
        self.heap: List[int] = []
        #: per-cluster issue queues, cluster 0 = wide host
        self.queues = list(queues)
        self.rob = rob
        #: per-cluster clock periods in fast cycles
        self.periods = array("q", periods)
        self.ratio = ratio
        self.kernel = None
        self.cstate = None

    # ------------------------------------------------------------- python path
    # hot-path
    def next_completion(self) -> Optional[int]:
        """Earliest upcoming writeback cycle (lazy-pruned heap head)."""
        heap = self.heap
        completions = self.completions
        while heap:
            head = heap[0]
            if head in completions:
                return head
            heappop(heap)
        return None

    # ----------------------------------------------------------- compiled path
    def bind_kernel(self, kernel) -> None:
        """Build the compiled backend's state binding over these structures.

        The C state holds references to the calendar dict/heap list, each
        queue's ready dict and ``array('q')`` columns, and the ROB ring's
        state column; buffers of growable arrays are (re)acquired per call
        inside the extension, so recovery-forced queue growth stays safe.
        """
        self.kernel = kernel
        self.cstate = kernel.bind(
            self.completions,
            self.heap,
            [q.ready_entries for q in self.queues],
            [q.agekey for q in self.queues],
            [q.mem_flags for q in self.queues],
            self.periods,
            self.ratio,
            self.rob.state_ring,
            self.rob.size,
            self.rob.commit_width,
        )
        # The ROB commit scan routes through the kernel for every commit
        # call while this binding is alive (call sites are unchanged, so
        # test spies on ``rob.commit`` keep working).
        self.rob.bind_scan_kernel(kernel.rob_commit_scan, self.cstate)
