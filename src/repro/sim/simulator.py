"""The helper-cluster timing simulator.

``HelperClusterSimulator`` executes a trace on the clustered machine
described by a :class:`~repro.core.config.MachineConfig` — one
:class:`~repro.core.cluster.Backend` per cluster of its
:class:`~repro.core.config.Topology` — under a
:class:`~repro.core.steering.SteeringPolicy`, advancing time in *fast*
cycles (the least common multiple of the cluster clocks per host cycle).
The host (wide) backend, the frontend and the commit stage only act on fast
cycles that fall on the host clock, and every helper backend acts on
multiples of its own period, which is how the clocking advantage of narrow
helper backends (§2.2) is expressed.  The paper's machine is the two-cluster
case; the simulator itself just iterates the cluster list.

Per fast cycle the simulator performs, in order:

1. **writeback** — completion events: wake consumers, update the width /
   carry / copy-prefetch predictors, detect fatal width mispredictions and
   trigger flushing recovery (§3.2);
2. **issue** — per active backend (helpers first, host last), oldest-first
   select of ready scheduler entries subject to issue width, functional-unit
   and DL0-port constraints;
3. **commit** — on wide cycles, in-order retirement of up to the commit
   width;
4. **dispatch** — on wide cycles, fetch/decode/steer/rename of new trace uops
   (and re-dispatch of squashed ones), generation of inter-cluster copy uops,
   load replication (§3.4), copy prefetching (§3.6) and IR splitting (§3.7).
   Policies express intent (wide vs. helper, plus an optional concrete
   target or declarative width/FP/memory requirement); the policy's shared
   :class:`~repro.core.selection.ClusterSelector` resolves that intent to a
   concrete cluster (the default selector is the original least-loaded
   capable resolution, bit-identically).

Copy uops and IR split chunks are modelled as first-class scheduler entries:
they occupy issue slots in the cluster they execute in, exactly the overhead
the paper's schemes try to minimise.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import islice
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.cluster import Backend
from repro.core.config import MachineConfig, helper_cluster_config
from repro.core.copy_engine import CopyEngine, CopyRequest
from repro.core.imbalance import ImbalanceMonitor
from repro.core.predictors import WidthPredictor
from repro.core.selection import ClusterSelector, LeastLoadedSelector
from repro.core.splitting import InstructionSplitter, SplitPlan
from repro.core.steering import (
    BaselineSteering,
    SteerDecision,
    SteeringContext,
    SteeringPolicy,
)
from repro.isa.opcodes import FunctionalUnit, OpClass, Opcode, opcode_info
from repro.isa.registers import ArchReg
from repro.isa.uop import MicroOp
from repro.isa.values import is_narrow
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.tracecache import TraceCache
from repro.pipeline.clocking import ClockDomain, ClockingModel
from repro.pipeline.frontend import FetchedUop, Frontend
from repro.pipeline.mob import MemoryOrderBuffer
from repro.pipeline.recovery import RecoveryManager
from repro.pipeline.rename import RenameTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.scheduler import IssueQueue, IssueQueueEntry
from repro.power.wattch import ClusterActivity, PowerConfig, PowerModel
from repro.sim.hotstate import (
    F_COMPLETED,
    F_IN_ROB,
    F_ISSUED,
    F_LAST_CHUNK,
    F_REPLICATE_LOAD,
    F_SQUASHED,
    KIND_CHUNK,
    KIND_COPY,
    KIND_TRACE,
    DynTable,
    HotState,
    resolve_backend,
)
from repro.sim.metrics import PredictionBreakdown, SimulationResult
from repro.trace.trace import Trace

#: Safety multiplier: a run is aborted (as a bug) if it exceeds this many
#: fast cycles per trace uop.
_MAX_CYCLES_PER_UOP = 400

#: The host (wide) cluster index.  Domains are cluster indices throughout the
#: simulator; ``ClockDomain.WIDE``/``NARROW`` compare equal to 0/1, so the
#: paper's two-cluster API interoperates.
_WIDE = 0

#: Functional-unit kind -> activity bucket (0 = ALU, 1 = AGU, 2 = FPU), the
#: dispatch-accounting classification precomputed off the hot path.
_UNIT_ACCOUNT = {
    FunctionalUnit.IALU: 0,
    FunctionalUnit.BRU: 0,
    FunctionalUnit.COPY: 0,
    FunctionalUnit.IMUL: 0,
    FunctionalUnit.IDIV: 0,
    FunctionalUnit.AGU: 1,
    FunctionalUnit.FPU: 2,
}


#: ``kind`` string <-> ``DynTable.kindcol`` code mapping.
_KIND_CODES = {"trace": KIND_TRACE, "copy": KIND_COPY, "chunk": KIND_CHUNK}
_KIND_NAMES = ("trace", "copy", "chunk")


class _DynUop:
    """Per-in-flight-operation simulator state, SoA-backed.

    The scalar fields (seq / domain / value_uid / predicted_narrow / kind /
    completion flags) live in the shared :class:`~repro.sim.hotstate.DynTable`
    columns, indexed by ``dyn_id`` — that is what the compiled kernels walk.
    This carrier object keeps only the cold object references (uop, steering
    decision, copy request, parent) plus the opcode/unit enums the issue loop
    reads, and exposes the columns through properties so the cold paths keep
    the old attribute API.  The columns are the single source of truth; the
    properties never cache.
    """

    __slots__ = ("table", "dyn_id", "opcode", "uop", "decision",
                 "copy_request", "chunk_index", "parent", "_unit")

    def __init__(self, table: DynTable, dyn_id: int, kind: str, seq: int,
                 domain: int, opcode: Opcode,
                 uop: Optional[MicroOp] = None,
                 decision: Optional[SteerDecision] = None,
                 value_uid: Optional[int] = None,
                 copy_request: Optional[CopyRequest] = None,
                 chunk_index: int = 0,
                 parent: Optional["_DynUop"] = None,
                 predicted_narrow: Optional[bool] = None,
                 in_rob: bool = False,
                 replicate_load: bool = False,
                 is_last_chunk: bool = False,
                 unit: Optional[FunctionalUnit] = None) -> None:
        table.ensure(dyn_id)
        self.table = table
        self.dyn_id = dyn_id
        self.opcode = opcode
        self.uop = uop
        self.decision = decision
        self.copy_request = copy_request
        self.chunk_index = chunk_index
        self.parent = parent
        self._unit = unit
        i = dyn_id
        table.seq[i] = seq
        table.domain[i] = domain
        table.kindcol[i] = _KIND_CODES[kind]
        table.value_uid[i] = -1 if value_uid is None else value_uid
        table.pnarrow[i] = (-1 if predicted_narrow is None
                            else (1 if predicted_narrow else 0))
        flags = 0
        if in_rob:
            flags |= F_IN_ROB
        if replicate_load:
            flags |= F_REPLICATE_LOAD
        if is_last_chunk:
            flags |= F_LAST_CHUNK
        table.flags[i] = flags
        table.opcode[i] = opcode
        table.unit[i] = -1 if unit is None else unit

    # ------------------------------------------------------- column properties
    @property
    def kind(self) -> str:
        return _KIND_NAMES[self.table.kindcol[self.dyn_id]]

    @property
    def seq(self) -> int:
        return self.table.seq[self.dyn_id]

    @property
    def domain(self) -> int:
        return self.table.domain[self.dyn_id]

    @domain.setter
    def domain(self, value: int) -> None:
        self.table.domain[self.dyn_id] = value

    @property
    def value_uid(self) -> Optional[int]:
        v = self.table.value_uid[self.dyn_id]
        return None if v < 0 else v

    @property
    def predicted_narrow(self) -> Optional[bool]:
        v = self.table.pnarrow[self.dyn_id]
        return None if v < 0 else bool(v)

    @property
    def unit(self) -> Optional[FunctionalUnit]:
        return self._unit

    @unit.setter
    def unit(self, value: Optional[FunctionalUnit]) -> None:
        self._unit = value
        self.table.unit[self.dyn_id] = -1 if value is None else value

    @property
    def completed(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_COMPLETED)

    @completed.setter
    def completed(self, value: bool) -> None:
        if value:
            self.table.flags[self.dyn_id] |= F_COMPLETED
        else:
            self.table.flags[self.dyn_id] &= ~F_COMPLETED

    @property
    def squashed(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_SQUASHED)

    @squashed.setter
    def squashed(self, value: bool) -> None:
        if value:
            self.table.flags[self.dyn_id] |= F_SQUASHED
        else:
            self.table.flags[self.dyn_id] &= ~F_SQUASHED

    @property
    def issued(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_ISSUED)

    @issued.setter
    def issued(self, value: bool) -> None:
        if value:
            self.table.flags[self.dyn_id] |= F_ISSUED
        else:
            self.table.flags[self.dyn_id] &= ~F_ISSUED

    @property
    def in_rob(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_IN_ROB)

    @in_rob.setter
    def in_rob(self, value: bool) -> None:
        if value:
            self.table.flags[self.dyn_id] |= F_IN_ROB
        else:
            self.table.flags[self.dyn_id] &= ~F_IN_ROB

    @property
    def replicate_load(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_REPLICATE_LOAD)

    @property
    def is_last_chunk(self) -> bool:
        return bool(self.table.flags[self.dyn_id] & F_LAST_CHUNK)


class HelperClusterSimulator:
    """Trace-driven timing simulator of the helper-cluster machine."""

    def __init__(self, trace: Trace, config: Optional[MachineConfig] = None,
                 policy: Optional[SteeringPolicy] = None,
                 power: Optional[PowerConfig] = None,
                 reference_loop: Optional[bool] = None,
                 backend: Optional[str] = None) -> None:
        self.trace = trace
        self.config = config or helper_cluster_config()
        self.policy = policy or BaselineSteering()
        self.power_config = power or PowerConfig()
        self.topology = self.config.cluster_topology()
        self.clocking = ClockingModel.from_ratios(
            [spec.clock_ratio for spec in self.topology.clusters])

        # Substrate structures.  One backend per topology cluster; cluster 0
        # is the host (wide) backend, everything after it a helper.
        self.frontend = Frontend(trace, fetch_width=self.config.fetch_width,
                                 trace_cache=TraceCache(self.config.trace_cache))
        self.clusters: List[Backend] = [
            Backend(spec, self.config, self.clocking, index=i)
            for i, spec in enumerate(self.topology.clusters)]
        self.wide = self.clusters[0]
        self.helpers: List[Backend] = self.clusters[1:]
        # Two-cluster compat view: ``sim.narrow`` has always been a Backend,
        # even on the monolithic baseline (where it is dormant).  The dormant
        # backend gets its own two-domain clock so none of its methods can
        # index past the host-only clocking model.
        if self.helpers:
            self.narrow = self.helpers[0]
        else:
            from repro.core.cluster import BackendKind
            self.narrow = Backend(BackendKind.NARROW, self.config,
                                  ClockingModel(ratio=self.clocking.ratio))
        # Cluster-targeted steering: the policy's selector (or the default
        # least-loaded one) resolves steering decisions to concrete clusters.
        selector: Optional[ClusterSelector] = getattr(self.policy, "selector", None)
        self.selector = selector if selector is not None else LeastLoadedSelector()
        self.selector.bind(self.topology, self.clusters)
        self.rob = ReorderBuffer(size=self.config.rob_size,
                                 commit_width=self.config.commit_width)
        self.mob = MemoryOrderBuffer()
        self.memory = MemoryHierarchy(self.config.memory)
        self.rename = RenameTable()
        self.recovery = RecoveryManager(
            flush_penalty_slow=self.topology.flush_penalty_slow,
            clock_ratio=self.clocking.ratio)

        # Core mechanisms.
        self.width_predictor = WidthPredictor(
            entries=self.config.predictor.table_entries,
            use_confidence=self.config.predictor.use_confidence,
            confidence_threshold=self.config.predictor.confidence_threshold)
        self.copy_engine = CopyEngine(num_domains=len(self.clusters))
        helper_capacity = (sum(spec.queue_size for spec in self.topology.helpers)
                           or self.config.scheduler.queue_size)
        self.imbalance = ImbalanceMonitor(
            queue_size=helper_capacity,
            wide_queue_size=self.topology.host.queue_size)
        self.splitter = InstructionSplitter(narrow_width=self.config.narrow_width)
        self.context = SteeringContext(
            config=self.config, width_predictor=self.width_predictor,
            rename=self.rename, imbalance=self.imbalance,
            copy_engine=self.copy_engine, splitter=self.splitter,
            selector=self.selector)

        # Dynamic state.  The completion calendar (and the other hot-state
        # columns) live behind one HotState binding point shared with the
        # optional compiled backend; ``_completions``/``_completion_heap``
        # alias it for the run loop.
        self._dyn_counter = 0
        self.hot = HotState(
            queues=[cluster.issue_queue for cluster in self.clusters],
            rob=self.rob, periods=self.clocking.periods,
            ratio=self.clocking.ratio)
        self._completions: Dict[int, List[_DynUop]] = self.hot.completions
        self._redispatch: Deque[_DynUop] = deque()
        self._pending_fetch: Deque[FetchedUop] = deque()
        self._dl0_slots: Dict[int, int] = {}
        self._current_completing: List[_DynUop] = []
        self._narrow_width = self.config.narrow_width

        # Result accumulation.  One activity record per cluster (keyed by
        # spec name in the result; indexed by cluster in the hot path) feeds
        # the per-cluster power model.
        self.result = SimulationResult(benchmark=trace.name, policy=self.policy.name,
                                       selector=self.selector.name)
        self._cluster_acts: List[ClusterActivity] = [
            ClusterActivity(name=spec.name, datapath_width=spec.datapath_width,
                            clock_ratio=spec.clock_ratio)
            for spec in self.topology.clusters]
        self._prediction = PredictionBreakdown()
        self._helper_committed = 0
        self._split_committed = 0

        # Hot-loop invariants, hoisted once.
        self._steer = self.policy.steer
        self._predict = self.width_predictor.predict
        self._activity = self.result.activity
        self._ratio = self.clocking.ratio
        self._periods = self.clocking.periods
        self._fetch_width = self.config.fetch_width
        self._dl0_hit_fast = (self.config.memory.dl0.hit_latency - 1) * self.clocking.ratio
        self._helper_enabled = bool(self.helpers)
        # Width horizon the selector wants values classified at (equals
        # config.narrow_width for the default selector, so the paper's
        # machines are untouched), plus per-cluster datapath widths for the
        # fatal-misprediction check against the executing cluster.
        self._steer_width = self.selector.steering_width(self.config, self.topology)
        self._track_width = self.selector.wants_width_bits
        self._cluster_widths = [spec.datapath_width
                                for spec in self.topology.clusters]
        self._copy_latency_fast = [self.clocking.slow_to_fast(spec.copy_latency_slow)
                                   for spec in self.topology.clusters]
        self._uses_cp = getattr(self.policy, "uses_copy_prefetch", False)
        self._uses_lr = getattr(self.policy, "uses_load_replication", False)

        # Event wheel.  ``_completion_heap`` mirrors the keys of
        # ``_completions`` (a calendar of upcoming writeback cycles, with
        # lazily discarded stale heads), so the next completion is an O(1)
        # peek instead of a min() scan.  ``_helper_wheel`` pre-binds each
        # helper backend's issue queue, ready set and clock period for the
        # per-cycle issue/sampling/advance paths.
        self._completion_heap: List[int] = self.hot.heap
        self._helper_wheel: List[Tuple[Backend, IssueQueue, Dict, int]] = [
            (backend, backend.issue_queue, backend.issue_queue.ready_entries,
             self._periods[backend.index])
            for backend in self.helpers]
        #: optional commit observer: called as ``hook(retired, t)`` with the
        #: just-retired ROB entries and the fast cycle.  The differential
        #: fuzz harness (repro.fuzz) attaches an in-order-retirement checker
        #: here; the default None costs one attribute test per retiring
        #: cycle and leaves results untouched.
        self.commit_hook = None
        #: run the straightforward per-cycle reference loop instead of the
        #: event wheel (REPRO_REFERENCE_LOOP=1); results are bit-identical
        if reference_loop is None:
            reference_loop = os.environ.get("REPRO_REFERENCE_LOOP", "") == "1"
        self._reference_loop = reference_loop
        #: simulator backend: ``"python"`` or ``"compiled"`` (bit-identical;
        #: resolved from the ``backend`` argument / REPRO_BACKEND).  The
        #: compiled kernels only drive the event wheel — the reference loop
        #: is always pure python, so it stays an independent net.
        self.backend, self._kernel = resolve_backend(backend)
        #: issue-selection routing; the wheel swaps in the compiled variant
        self._select_fn = self._select_python
        #: dependence-resolution / wakeup routing; ``run()`` swaps in the
        #: compiled variants when the extension provides the per-uop kernels
        #: (the pure-python fallbacks below are the semantic source of truth)
        self._resolve_fn = self._resolve_dependences
        self._wake_fn = self._wake_python
        self._dispatch_tail_fn = self._dispatch_tail_python
        #: compiled re-dispatch burst kernel (None on the python backend)
        self._dispatch_batch = None

    # ======================================================================
    # public API
    # ======================================================================
    def run(self) -> SimulationResult:
        """Run the trace to completion and return the filled-in result.

        This is the event-wheel core: each iteration handles one *eventful*
        fast cycle (writeback → issue → commit/dispatch on wide edges →
        sampling) and then :meth:`_next_event` jumps straight to the next
        cycle on which anything can happen.  The straightforward per-cycle
        loop is kept behind ``REPRO_REFERENCE_LOOP=1``
        (:meth:`_run_reference`); both produce bit-identical results.
        """
        if self._reference_loop:
            return self._run_reference()
        limit = _MAX_CYCLES_PER_UOP * max(1, len(self.trace)) + 100_000
        stall_window = 60_000  # fast cycles with zero retirement => wedged
        t = 0
        last_progress_cycle = 0
        last_committed = 0
        ratio = self._ratio
        result = self.result
        completions = self._completions
        helper_wheel = self._helper_wheel
        wide_ready = self.wide.issue_queue.ready_entries
        helper_sampling = self._helper_enabled
        if self._kernel is not None:
            self.hot.bind_kernel(self._kernel)
            self._select_fn = self._select_compiled
            next_event = self._next_event_compiled
            if hasattr(self._kernel, "bind_uops"):
                # Stale builds of the extension predate the dispatch-chain
                # kernels; their python fallbacks then stay in place.
                self.hot.bind_uops(self._kernel, self.copy_engine)
                self._resolve_fn = self._resolve_compiled
                self._wake_fn = self._wake_compiled
                self._dispatch_tail_fn = self._dispatch_tail_compiled
                self._dispatch_batch = self._kernel.dispatch_batch
        else:
            next_event = self._next_event
        while not self._done():
            if t > limit or t - last_progress_cycle > stall_window:
                raise RuntimeError(
                    f"no forward progress after {t - last_progress_cycle} fast cycles "
                    f"at cycle {t}; likely deadlock "
                    f"(trace={self.trace.name}, policy={self.policy.name})")
            if t in completions:
                self._writeback(t)
            for backend, _iq, ready, period in helper_wheel:
                if ready and (period == 1 or t % period == 0):
                    self._issue_backend(backend, t)
            if t % ratio == 0:
                if wide_ready:
                    self._issue_backend(self.wide, t)
                self._commit(t)
                self._dispatch(t)
            if helper_sampling:
                self._sample_imbalance(t)
            if result.committed_uops > last_committed:
                last_committed = result.committed_uops
                last_progress_cycle = t
            target, idle = next_event(t)
            if idle and helper_sampling and target > t + 1:
                self._record_idle_cycles(target - t - 1)
            t = target
        self._finalise(t)
        return self.result

    def _run_reference(self) -> SimulationResult:
        """The straightforward per-cycle loop (``REPRO_REFERENCE_LOOP=1``).

        Every fast cycle is visited and runs the full stage schedule.  The
        only accounting subtlety is inherited, not new: the pre-existing
        long-wait skip (nothing ready anywhere, completions pending) defines
        *semantics* — its cycles are unsampled and its frontend/commit
        schedule is pinned by the golden tests — so the reference loop walks
        those stretches cycle by cycle with writeback/issue (which provably
        no-op) and no sampling, exactly as the event wheel accounts them.
        Idle stretches are sampled one cycle at a time, which must equal the
        event wheel's single aggregate sample; the equivalence test pins the
        full :class:`SimulationResult` either way.
        """
        limit = _MAX_CYCLES_PER_UOP * max(1, len(self.trace)) + 100_000
        stall_window = 60_000  # fast cycles with zero retirement => wedged
        t = 0
        last_progress_cycle = 0
        last_committed = 0
        ratio = self._ratio
        result = self.result
        while not self._done():
            if t > limit or t - last_progress_cycle > stall_window:
                raise RuntimeError(
                    f"no forward progress after {t - last_progress_cycle} fast cycles "
                    f"at cycle {t}; likely deadlock "
                    f"(trace={self.trace.name}, policy={self.policy.name})")
            self._writeback(t)
            self._issue(t)
            if t % ratio == 0:
                self._commit(t)
                self._dispatch(t)
            if self._helper_enabled:
                self._sample_imbalance(t)
            if result.committed_uops > last_committed:
                last_committed = result.committed_uops
                last_progress_cycle = t
            target, idle = self._next_event(t)
            cursor = t + 1
            while cursor < target:
                # Walk the stretch the event wheel hops over: each cycle runs
                # writeback and issue (no completion is due and no active
                # backend has ready work, so both no-op) and contributes its
                # own single-cycle sample when the stretch is idle-sampled.
                self._writeback(cursor)
                self._issue(cursor)
                if idle and self._helper_enabled:
                    self._record_idle_cycles(1)
                cursor += 1
            t = target
        self._finalise(t)
        return self.result

    # ======================================================================
    # termination / time advance
    # ======================================================================
    def _done(self) -> bool:
        return (not self._completions and not self._redispatch
                and not self._pending_fetch and self.frontend.exhausted
                and self.rob.is_empty())

    def _next_completion(self) -> Optional[int]:
        """Earliest upcoming writeback cycle (the completion calendar's head).

        Stale heads — cycles already consumed by :meth:`_writeback` — are
        discarded lazily, so the amortised cost is O(log n) per completion
        instead of an O(n) ``min()`` scan per advance.
        """
        heap = self._completion_heap
        completions = self._completions
        while heap:
            head = heap[0]
            if head in completions:
                return head
            heappop(heap)
        return None

    # hot-path
    def _next_event(self, t: int) -> Tuple[int, bool]:
        """The next fast cycle on which anything can happen, and whether the
        cycles skipped to reach it are idle-sampled.

        The wheel consults three next-action times: the earliest clock edge
        of a helper backend with ready work, the completion calendar's head,
        and the next wide-domain dispatch/commit boundary (only when the wide
        backend has ready work, or dispatch could make progress).  Three
        cases, in order:

        * a helper scheduler with ready work is active on the very next fast
          cycle — time advances by one;
        * event skip (long memory waits): nothing is ready in any cluster
          active before the next event and completions are pending — jump to
          the next completion, or the next wide cycle if dispatch could make
          progress.  These skipped cycles are not sampled (``idle=False``),
          preserving the original accounting;
        * idle hop: no backend can act strictly before the next wide cycle
          (or completion, or ready helper's clock edge).  Hop there; the
          skipped cycles' — provably frozen — occupancy statistics fold in
          as one aggregate sample (``idle=True``).
        """
        next_t = t + 1
        # Earliest upcoming cycle at which a helper with ready work is active
        # (period-1 helpers, the common case, bound it to ``next_t``).
        helper_bound: Optional[int] = None
        for _backend, _iq, ready, period in self._helper_wheel:
            if not ready:
                continue
            if period == 1:
                return next_t, False
            remainder = next_t % period
            if remainder == 0:
                return next_t, False
            nxt = next_t + (period - remainder)
            if helper_bound is None or nxt < helper_bound:
                helper_bound = nxt
        completions = self._completions
        ratio = self._ratio
        if completions and not self.wide.issue_queue.ready_entries:
            next_event = self._next_completion()
            # Dispatch may still make progress at the next wide cycle if
            # there is anything to dispatch and room to put it.
            if ((not self.frontend.exhausted or self._redispatch
                 or self._pending_fetch) and not self.rob.is_full()):
                remainder = next_t % ratio
                next_wide = (next_t if remainder == 0
                             else next_t + (ratio - remainder))
                if next_wide < next_event:
                    next_event = next_wide
            if helper_bound is not None and helper_bound < next_event:
                next_event = helper_bound
            if next_event > next_t:
                return next_event, False
            return next_t, False
        remainder = next_t % ratio
        target = next_t if remainder == 0 else next_t + (ratio - remainder)
        next_completion = self._next_completion()
        if next_completion is not None and next_completion < target:
            target = next_completion
        if helper_bound is not None and helper_bound < target:
            target = helper_bound
        if target > next_t and self._done():
            # The machine may already be fully drained (the run loop is about
            # to observe completion); keep the original final-cycle count.
            return next_t, False
        return target, True

    def _next_event_compiled(self, t: int) -> Tuple[int, bool]:
        """Compiled :meth:`_next_event`: the python-only conditions (frontend
        / redispatch / ROB fullness) fold into a flag word, the helper-wheel
        scan, calendar peek and clock arithmetic run in C."""
        pending = self._redispatch or self._pending_fetch
        exhausted = self.frontend.exhausted
        rob_count = self.rob.occupancy()
        flags = 0
        if pending or not exhausted:
            flags = 1                                   # dispatch possible
        if rob_count >= self.rob.size:
            flags |= 2                                  # ROB full
        elif not pending and exhausted and rob_count == 0:
            flags |= 4                                  # drained modulo calendar
        packed = self._kernel.next_event(self.hot.cstate, t, flags)
        return packed >> 1, bool(packed & 1)


    # hot-path
    def _record_idle_cycles(self, cycles: int) -> None:
        """Fold ``cycles`` skipped no-op cycles into the sampling statistics.

        During an idle hop no queue changes and no active helper queue has
        anything ready, so each skipped cycle would have recorded the same
        occupancy terms and zero NREADY terms.
        """
        wide_iq = self.wide.issue_queue
        helper_occupancy = 0
        for backend in self.helpers:
            helper_occupancy += len(backend.issue_queue)
        self.imbalance.record_idle_cycles(len(wide_iq), helper_occupancy, cycles)
        wide_iq.sample_occupancy(cycles)
        for backend in self.helpers:
            backend.issue_queue.sample_occupancy(cycles)

    # ======================================================================
    # writeback stage
    # ======================================================================
    # hot-path
    def _writeback(self, t: int) -> None:
        completing = self._completions.pop(t, None)
        if not completing:
            return
        # Recovery must be able to squash same-cycle completions that are
        # younger than the mispredicted uop, so keep the list visible.
        self._current_completing = completing
        table = self.hot.dyn
        flags = table.flags
        kindcol = table.kindcol
        for dyn in completing:
            i = dyn.dyn_id
            f = flags[i]
            if f & F_SQUASHED:
                continue
            flags[i] = f | F_COMPLETED
            kind = kindcol[i]
            if kind == KIND_TRACE:
                self._complete_trace_uop(dyn, t)
            elif kind == KIND_COPY:
                self._complete_copy(dyn, t)
            else:
                self._complete_chunk(dyn, t)

    def _complete_copy(self, dyn: _DynUop, t: int) -> None:
        request = dyn.copy_request
        assert request is not None
        self.copy_engine.complete_copy(request, t)
        backend = self._backend(dyn.domain)
        backend.stats.copies_executed += 1
        self._wake_fn(request.value_uid, request.to_domain)

    def _complete_chunk(self, dyn: _DynUop, t: int) -> None:
        backend = self._backend(dyn.domain)
        backend.stats.split_chunks += 1
        self._wake_chunk_successors(dyn)
        parent = dyn.parent
        assert parent is not None
        if dyn.is_last_chunk:
            # The reassembled value becomes architecturally available in the
            # narrow cluster once the most-significant chunk completes.
            if parent.value_uid is not None:
                self.copy_engine.note_produced(parent.value_uid, dyn.domain, t)
                self._wake_fn(parent.value_uid, dyn.domain)
                if parent.uop is not None and parent.uop.has_dest:
                    self.rename.writeback(parent.uop.dest, parent.value_uid,
                                          narrow=False, domain=dyn.domain)
                if parent.uop is not None and parent.uop.writes_flags:
                    self.rename.writeback(ArchReg.FLAGS, parent.value_uid,
                                          narrow=True, domain=dyn.domain)
            parent.completed = True
            if parent.in_rob and parent.uop is not None:
                self.rob.mark_completed(parent.uop.uid)

    # hot-path
    def _complete_trace_uop(self, dyn: _DynUop, t: int) -> None:
        uop = dyn.uop
        domain = dyn.domain
        decision = dyn.decision
        self.clusters[domain].stats.completed += 1

        actual_narrow = uop.result_is_narrow(self._steer_width)
        has_dest = uop.has_dest

        # Fatal width misprediction detection: only instructions steered to
        # a narrow backend on a prediction can be fatally wrong (§3.2).  The
        # check is against the *executing* cluster's datapath width — on the
        # paper's machine every helper is narrow_width bits wide so this is
        # the original check; on asymmetric mixes a 12-bit value completing
        # on a 16-bit helper is correct, not a misprediction.
        fatal = False
        if domain != _WIDE and decision is not None:
            if decision.predicted_narrow:
                width = self._cluster_widths[domain]
                fatal = (not uop.all_sources_narrow(width)
                         or not uop.result_is_narrow(width))
            elif decision.via_cr:
                fatal = uop.cr_carry_crosses(self._narrow_width)

        # Figure 5 accounting: every result-producing uop whose width was
        # predicted contributes one outcome.
        predicted_narrow = dyn.predicted_narrow
        if has_dest and predicted_narrow is not None:
            if predicted_narrow == actual_narrow:
                self._prediction.correct += 1
            elif domain != _WIDE and predicted_narrow:
                self._prediction.fatal += 1
            else:
                self._prediction.non_fatal += 1

        # Predictor training happens at writeback regardless of cluster.
        track_width = self._track_width
        if has_dest:
            self.width_predictor.update(
                uop.pc, actual_narrow,
                width_bits=uop.result_width_bits() if track_width else None)
        if uop.info.cr_eligible:
            self.width_predictor.update_carry(
                uop.pc, uop.cr_operated_narrow(self._narrow_width))

        if fatal:
            self._recover(dyn, t)
            return

        # Successful completion: publish the value (register result and/or
        # FLAGS write travel together) and wake consumers in this cluster.
        value_uid = dyn.value_uid
        if value_uid is not None:
            self.copy_engine.note_produced(value_uid, domain, t)
            if has_dest:
                self.rename.writeback(
                    uop.dest, value_uid, narrow=actual_narrow,
                    domain=domain,
                    width_bits=(uop.result_width_bits()
                                if track_width else None))
            if uop.writes_flags:
                self.rename.writeback(ArchReg.FLAGS, value_uid, narrow=True,
                                      domain=domain)
            self._wake_fn(value_uid, domain)
            if dyn.replicate_load and uop.is_load and actual_narrow:
                # LR (§3.4): the narrow load value is written into every
                # cluster's register file through the shared MOB.  A value
                # too wide for a cluster's register file cannot be replicated
                # there; that case is simply a missed opportunity (on the
                # paper's machine every helper is narrow_width bits wide, so
                # the per-cluster fit check degenerates to the old gate).
                self.copy_engine.note_replicated(value_uid, t)
                widths = self._cluster_widths
                for other in range(len(self.clusters)):
                    if other != domain and uop.result_is_narrow(widths[other]):
                        self._wake_fn(value_uid, other)
        if dyn.in_rob:
            self.rob.mark_completed(uop.uid)

    # ----------------------------------------------------------- CR checking
    def _cr_operated_narrow(self, uop: MicroOp) -> bool:
        """Did this (potential CR) uop actually operate on the low byte only?

        Used to train the carry-width predictor bit at writeback (§3.5).
        Delegates to the memoised per-uop oracle.
        """
        return uop.cr_operated_narrow(self._narrow_width)

    def _cr_violated(self, uop: MicroOp) -> bool:
        """A CR-steered uop is fatally mispredicted if the carry propagated.

        The carry signal of the helper-cluster ALU is what flags the
        misprediction (§3.5): reconstructing the wide result from the wide
        source's upper bits is only correct when no carry leaves the low
        byte.
        """
        return uop.cr_carry_crosses(self._narrow_width)

    # --------------------------------------------------------------- recovery
    def _recover(self, trigger: _DynUop, t: int) -> None:
        """Flushing recovery (§3.2): squash from the mispredicted uop onward.

        The flush covers every helper cluster: younger work in a sibling
        helper may depend (through copies) on values being squashed here, so
        partial flushes could strand waiters.
        """
        seq = trigger.seq
        trigger_domain = trigger.domain
        squashed: List[_DynUop] = []
        cancelled_lanes: List[Tuple[int, int]] = []
        for backend in self.helpers:
            squashed_entries = backend.issue_queue.flush_from(seq)
            for entry in squashed_entries:
                dyn = entry.payload
                assert isinstance(dyn, _DynUop)
                if dyn.kind == "copy":
                    request = dyn.copy_request
                    assert request is not None
                    # A copy whose source value is already resident in the
                    # producer cluster is still architecturally useful (its
                    # producer is older than the flush point and not being
                    # re-executed), so it survives the flush.  Only copies of
                    # values that are themselves being squashed are dropped;
                    # their consumers elsewhere are woken by the re-executed
                    # producer instead.
                    if self.copy_engine.availability(request.value_uid,
                                                     request.from_domain) is not None:
                        backend.issue_queue.insert_uop(
                            entry.uid, entry.seq, entry.remaining_sources,
                            entry.is_memory, dyn, force=True)
                    else:
                        dyn.squashed = True
                        self.copy_engine.cancel_copy(request)
                        # The copy waits on its source lane and its consumers
                        # wait on the destination lane — both go stale.
                        cancelled_lanes.append((request.value_uid,
                                                request.from_domain))
                        cancelled_lanes.append((request.value_uid,
                                                request.to_domain))
                    continue
                dyn.squashed = True
                squashed.append(dyn)
        # In-flight (issued, not yet completed) helper-cluster work younger
        # than the trigger is squashed as well — including anything completing
        # later in this very cycle.
        in_flight_groups = list(self._completions.values())
        in_flight_groups.append(getattr(self, "_current_completing", []))
        for dyns in in_flight_groups:
            for dyn in dyns:
                if (dyn.domain != _WIDE and dyn.seq >= seq
                        and not dyn.completed and not dyn.squashed
                        and dyn.kind != "copy"):
                    dyn.squashed = True
                    squashed.append(dyn)

        # The trigger itself re-executes in the wide backend.
        trigger.squashed = True
        squashed.append(trigger)

        # Squashed consumers leave waiter nodes on the (producer_uid, domain)
        # lanes they resolved against; the re-executed producer completes in
        # the wide cluster, so those helper-domain lanes may never be walked
        # again and the nodes would strand their pool slots.  Drain exactly
        # the lanes the squashed work could occupy — its producers' value
        # lanes in its pre-flush domain (the redispatch loop below rewrites
        # ``domain`` to wide, so this must run first), its own chunk lane,
        # and any cancelled copy's destination lane.  Survivors on a lane are
        # preserved in FIFO order.
        waiters = self.hot.waiters
        flags = self.hot.dyn.flags
        dom_col = self.hot.dyn.domain
        drained: set = set(cancelled_lanes)
        for dyn in squashed:
            domain = dom_col[dyn.dyn_id]
            for producer_uid in dyn.uop.effective_producers:
                drained.add((producer_uid, domain))
            waiters.drop_squashed_chunk(dyn.dyn_id, flags)
        for value_uid, domain in sorted(drained):
            waiters.drop_squashed(value_uid, domain, flags)

        event = self.recovery.trigger(
            trigger_uid=trigger.value_uid if trigger.value_uid is not None else trigger.dyn_id,
            trigger_seq=seq, fast_cycle=t,
            squashed_uids=[d.dyn_id for d in squashed],
            penalty_slow=self.topology.clusters[trigger_domain].flush_penalty_slow)

        # Collapse chunk squashes onto their parents so the parent re-executes
        # as a single wide instruction.
        parents: Dict[int, _DynUop] = {}
        redispatch: List[_DynUop] = []
        for dyn in squashed:
            if dyn.kind == "chunk":
                parent = dyn.parent
                assert parent is not None
                if parent.dyn_id not in parents:
                    parents[parent.dyn_id] = parent
                continue
            redispatch.append(dyn)
        redispatch.extend(parents.values())
        redispatch.sort(key=lambda d: d.seq)
        for dyn in redispatch:
            # The original record stays as the ROB payload; it now reflects
            # wide-cluster execution for commit-time accounting.
            dyn.domain = _WIDE
            fresh = self._clone_for_redispatch(dyn)
            self._redispatch.append(fresh)
        self.result.squashed_uops += len(redispatch)
        self.result.recoveries += 1

    def _clone_for_redispatch(self, dyn: _DynUop) -> _DynUop:
        """Prepare a squashed trace uop to re-execute in the wide backend."""
        self._dyn_counter += 1
        return _DynUop(
            self.hot.dyn,
            dyn_id=self._dyn_counter,
            kind="trace",
            seq=dyn.seq,
            domain=_WIDE,
            opcode=dyn.opcode,
            uop=dyn.uop,
            decision=SteerDecision(domain=ClockDomain.WIDE, reason="recovery"),
            value_uid=dyn.value_uid,
            predicted_narrow=None,
            in_rob=dyn.in_rob,
            unit=dyn.unit,
        )

    # ======================================================================
    # issue stage
    # ======================================================================
    def _issue(self, t: int) -> None:
        periods = self._periods
        for backend in self.helpers:
            if backend.issue_queue.ready_count():
                period = periods[backend.index]
                if period == 1 or t % period == 0:
                    self._issue_backend(backend, t)
        if t % self._ratio == 0 and self.wide.issue_queue.ready_count():
            self._issue_backend(self.wide, t)

    def _select_python(self, iq: IssueQueue, index: int,
                       memory_slots: int) -> List[_DynUop]:
        return iq.select_raw(memory_slots=memory_slots)

    def _select_compiled(self, iq: IssueQueue, index: int,
                         memory_slots: int) -> List[_DynUop]:
        slots = self._kernel.select_slots(self.hot.cstate, index,
                                          iq.issue_width, memory_slots)
        if not slots:
            return []
        return iq.take_slots_raw(slots)

    # hot-path
    def _issue_backend(self, backend: Backend, t: int) -> None:
        slow_cycle = t // self._ratio
        dl0_free = self.memory.dl0_ports - self._dl0_slots.get(slow_cycle, 0)
        selected = self._select_fn(backend.issue_queue, backend.index,
                                   max(0, dl0_free))
        if not selected:
            return
        completions = self._completions
        table = self.hot.dyn
        flags = table.flags
        kindcol = table.kindcol
        seq_col = table.seq
        iq = backend.issue_queue
        try_issue = backend.units.try_issue
        stats = backend.stats
        for dyn in selected:
            i = dyn.dyn_id
            is_trace = kindcol[i] == KIND_TRACE
            is_memory = is_trace and dyn.uop.is_memory
            completion = try_issue(dyn.opcode, t, unit=dyn.unit)
            if completion is None:
                # Structural hazard on the functional unit: put the uop
                # back and retry next cycle.  Forced because it was
                # resident a moment ago (recovery may have over-filled the
                # queue in the meantime).
                iq.insert_uop(i, seq_col[i], 0, is_memory, dyn, force=True)
                continue
            if is_memory:
                completion = self._memory_access(dyn, t, completion, slow_cycle)
            flags[i] |= F_ISSUED
            stats.issued += 1
            bucket = completions.get(completion)
            if bucket is None:
                completions[completion] = [dyn]
                heappush(self._completion_heap, completion)
            else:
                bucket.append(dyn)

    def _memory_access(self, dyn: _DynUop, t: int, completion: int,
                       slow_cycle: int) -> int:
        uop = dyn.uop
        assert uop is not None
        if uop.mem_addr is None:
            # Memory uops without a concrete address in the trace (e.g. FP
            # loads whose address the generator does not materialise) are
            # charged the DL0 hit latency.
            return completion + self._dl0_hit_fast
        self._dl0_slots[slow_cycle] = self._dl0_slots.get(slow_cycle, 0) + 1
        if uop.is_store:
            latency_slow = self.memory.store(uop.mem_addr)
            # Stores complete (for dependence purposes) once the address and
            # data are known; the cache write happens post-commit.
            return completion
        forwarding = self.mob.forwarding_store(dyn.seq, uop.mem_addr)
        if forwarding is not None:
            latency_slow = 1
        else:
            latency_slow = self.memory.load_latency(uop.mem_addr)
        return completion + (latency_slow - 1) * self._ratio

    # ======================================================================
    # commit stage
    # ======================================================================
    # hot-path
    def _commit(self, t: int) -> None:
        retired = self.rob.commit()
        if not retired:
            return
        if self.commit_hook is not None:
            self.commit_hook(retired, t)
        uses_cp = self._uses_cp
        result = self.result
        steer_reasons = result.steer_reasons
        copied = self.copy_engine.copied_lanes
        copied_cap = len(copied)
        for entry in retired:
            dyn = entry.payload
            if type(dyn) is not _DynUop or dyn.uop is None:
                continue
            uop = dyn.uop
            decision = dyn.decision
            result.committed_uops += 1
            split = decision is not None and decision.split
            if dyn.domain != _WIDE or split or dyn.kind == "chunk":
                self._helper_committed += 1
            if split:
                self._split_committed += 1
            if uop.is_memory:
                self.mob.release(uop.uid)
            # Copy-prefetch predictor training: the producer "incurred a copy"
            # if any consumer demanded one before it retired (§3.6).
            if uses_cp and uop.has_dest:
                uid = uop.uid
                self.width_predictor.update_copy(
                    uop.pc, uid < copied_cap and copied[uid] != 0)
            reason = decision.reason if decision is not None else "none"
            steer_reasons[reason] = steer_reasons.get(reason, 0) + 1

    def policy_uses_cp(self) -> bool:
        return getattr(self.policy, "uses_copy_prefetch", False)

    def policy_uses_lr(self) -> bool:
        return getattr(self.policy, "uses_load_replication", False)

    # ======================================================================
    # dispatch stage
    # ======================================================================
    # hot-path
    def _dispatch(self, t: int) -> None:
        if self.recovery.dispatch_blocked(t):
            return
        slow_cycle = t // self._ratio
        budget = self._fetch_width

        # Re-dispatch squashed work first (it is older than anything new).
        # Re-dispatch must make forward progress even when the schedulers are
        # congested with younger dependents of the squashed values, so it may
        # temporarily exceed scheduler capacity (``force=True``).
        redispatch = self._redispatch
        while budget > 0 and redispatch:
            if self._dispatch_batch is not None and budget > 1 and len(redispatch) > 1:
                # The burst is already steered and forced, with no rename or
                # MOB work left — exactly the shape the compiled batch kernel
                # takes whole.  It stops at the first uop it cannot place
                # without python help (copy injection, column growth); that
                # one falls through to the per-uop path below.
                clusters = self.clusters
                items = []
                for dyn in islice(redispatch, min(budget, len(redispatch))):
                    if dyn.unit is None:
                        dyn.unit = clusters[dyn.domain].units.unit_for(dyn.opcode)
                    uop = dyn.uop
                    items.append((dyn, dyn.dyn_id, uop.uid, dyn.seq,
                                  dyn.domain, uop.is_memory,
                                  _UNIT_ACCOUNT.get(dyn.unit, -1),
                                  uop.effective_producers))
                done = self._dispatch_batch(self.hot.cstate, items, t)
                for _ in range(done):
                    redispatch.popleft()
                budget -= done
                if done == len(items):
                    continue
            dyn = redispatch[0]
            if not self._dispatch_dyn(dyn, t, force=True):
                return
            redispatch.popleft()
            budget -= 1

        # Then bring in new trace uops.
        while budget > 0:
            if not self._pending_fetch:
                fetched = self.frontend.fetch(slow_cycle, max_uops=budget)
                if not fetched:
                    break
                self._pending_fetch.extend(fetched)
            while budget > 0 and self._pending_fetch:
                fetched_uop = self._pending_fetch[0]
                consumed = self._dispatch_trace_uop(fetched_uop, t)
                if consumed is None:
                    return  # structural stall; retry next wide cycle
                self._pending_fetch.popleft()
                budget -= consumed

    # ------------------------------------------------------------ trace uops
    # hot-path
    def _dispatch_trace_uop(self, fetched: FetchedUop, t: int) -> Optional[int]:
        """Steer, rename and dispatch one trace uop.

        Returns the number of dispatch slots consumed, or ``None`` if a
        structural hazard (ROB/IQ/MOB full) prevents dispatch this cycle.
        """
        uop = fetched.uop
        if self.rob.is_full():
            return None
        if uop.is_memory and not self.mob.can_allocate(uop.is_store):
            return None

        decision = self._steer(fetched, self.context)
        prediction = decision.prediction
        if uop.has_dest:
            if prediction is None:
                prediction = self._predict(uop.pc)
            predicted_narrow = prediction.narrow
        else:
            predicted_narrow = None
        self._activity.predictor_accesses += 1

        if decision.split:
            return self._dispatch_split(fetched, decision, t)

        # Policies steer wide-vs-helper; the simulator resolves *which*
        # helper cluster (least-loaded, lowest index on ties).
        cluster = self.selector.resolve(decision, uop.opcode)
        backend = self.clusters[cluster]
        iq = backend.issue_queue
        if len(iq.entries) >= iq.size:
            return None

        self._dyn_counter += 1
        dyn = _DynUop(
            self.hot.dyn,
            dyn_id=self._dyn_counter, kind="trace", seq=fetched.seq,
            domain=cluster, opcode=uop.opcode, uop=uop,
            decision=decision,
            value_uid=uop.uid if (uop.has_dest or uop.writes_flags) else None,
            predicted_narrow=predicted_narrow,
            replicate_load=decision.replicate_load and self._uses_lr,
        )
        if not self._dispatch_dyn(dyn, t, allocate_rob=True):
            return None
        return 1

    # hot-path
    def _dispatch_dyn(self, dyn: _DynUop, t: int, fetched: Optional[FetchedUop] = None,
                      allocate_rob: bool = False, force: bool = False) -> bool:
        """Place a dynamic uop into its backend's scheduler, wiring dependences."""
        uop = dyn.uop
        backend = self.clusters[dyn.domain]
        iq = backend.issue_queue
        if not force and len(iq.entries) >= iq.size:
            return False
        if dyn.unit is None:
            dyn.unit = backend.units.unit_for(dyn.opcode)

        # Resolve dependences, allocate the ROB slot and insert into the
        # scheduler — the per-uop tail the compiled dispatch-batch kernel
        # replaces wholesale.
        if not self._dispatch_tail_fn(dyn, t, allocate_rob, force):
            return False

        if allocate_rob:
            if uop.is_memory:
                self.mob.allocate(uop.uid, dyn.seq, uop.is_store, uop.mem_addr,
                                  uop.mem_size)
            # Rename the destination and record the steering domain so later
            # consumers know where the value will live (§3.2 width table).
            decision = dyn.decision
            if uop.has_dest:
                predicted_narrow = (dyn.predicted_narrow
                                    if dyn.predicted_narrow is not None else True)
                width_bits = None
                if self._track_width:
                    prediction = (decision.prediction
                                  if decision is not None else None)
                    if prediction is not None:
                        width_bits = prediction.width_bits
                self.rename.allocate(uop.dest, uop.uid, dyn.domain,
                                     predicted_narrow, width_bits=width_bits)
                if decision is not None and decision.via_cr and uop.srcs:
                    # First wide source wins; a first-match loop avoids
                    # building the full wide-source list per uop.
                    src_values = uop.src_values
                    narrow_width = self._narrow_width
                    for i, r in enumerate(uop.srcs):
                        if (i < len(src_values)
                                and not is_narrow(src_values[i], narrow_width)):
                            self.rename.link_upper_bits(uop.dest, r)
                            break
            if uop.writes_flags:
                self.rename.allocate(ArchReg.FLAGS, uop.uid, dyn.domain, True)
            self._activity.rename_ops += 1

            # Copy prefetching (§3.6): generate the copy at the producer.
            if uop.has_dest and self._uses_cp:
                self._maybe_prefetch_copy(dyn, t)
        return True

    # hot-path
    def _dispatch_tail_python(self, dyn: _DynUop, t: int, allocate_rob: bool,
                              force: bool) -> bool:
        """Resolve + ROB allocate + scheduler insert + dispatch accounting.

        Pure-python fallback of the compiled ``dispatch_batch`` kernel (which
        performs exactly this sequence over the SoA columns, batched across a
        recovery re-dispatch burst).  Returns False when dependence
        resolution stalls on a full producer scheduler.
        """
        outstanding = self._resolve_fn(dyn, t, force=force)
        if outstanding is None:
            return False
        backend = self.clusters[dyn.domain]
        uop = dyn.uop
        if allocate_rob:
            self.rob.allocate(uop.uid, dyn.seq, payload=dyn,
                              dyn_slot=dyn.dyn_id)
            dyn.in_rob = True
            self._activity.rob_ops += 1
        backend.issue_queue.insert_uop(dyn.dyn_id, dyn.seq, outstanding,
                                       uop.is_memory, dyn, force=force)
        backend.stats.dispatched += 1
        self._account_dispatch(dyn, backend)
        return True

    # hot-path
    def _dispatch_tail_compiled(self, dyn: _DynUop, t: int, allocate_rob: bool,
                                force: bool) -> bool:
        """Route the per-uop dispatch tail through the compiled kernel.

        A kernel punt (return 0) commits nothing; the python tail then
        reruns the whole sequence.  The only scan side effect a punt can
        leave behind — prefetch consumption — is idempotent across the
        rescan (the lane bit is already cleared).
        """
        uop = dyn.uop
        if self._kernel.dispatch_uop(
                self.hot.cstate, dyn, dyn.dyn_id, uop.uid, dyn.seq,
                dyn.domain, uop.is_memory,
                _UNIT_ACCOUNT.get(dyn.unit, -1), uop.effective_producers,
                t, allocate_rob, force):
            return True
        return self._dispatch_tail_python(dyn, t, allocate_rob, force)

    def _account_dispatch(self, dyn: _DynUop, backend: Backend) -> None:
        cluster = self._cluster_acts[backend.index]
        cluster.scheduler_ops += 1
        cluster.regfile_accesses += 3
        unit = dyn.unit
        if unit is None:
            unit = backend.units.unit_for(dyn.opcode)
        kind = _UNIT_ACCOUNT.get(unit)
        if kind == 0:
            cluster.alu_ops += 1
        elif kind == 1:
            cluster.agu_ops += 1
        elif kind == 2:
            cluster.fpu_ops += 1

    # -------------------------------------------------------- dependences
    # hot-path
    def _resolve_dependences(self, dyn: _DynUop, t: int,
                             force: bool = False) -> Optional[int]:
        """Count outstanding sources and generate any demand copies.

        For each source value the possibilities are:

        * already available in this uop's cluster — no dependence;
        * in flight (or resident) in this cluster — wait for it (wakeup);
        * in flight or resident only in *some other* cluster — generate a
          demand copy in a producer cluster (unless one is already in
          flight toward this cluster) and wait for its delivery;
        * unknown (produced and retired before tracking, or a trace live-in)
          — architectural state, available in every cluster.

        Pure-python fallback of the compiled ``resolve_deps`` kernel: the
        scan is straight index arithmetic over the copy engine's value lanes
        and the ROB's ``dyn_ring`` (producer cluster through the DynTable
        ``domain`` column).  Returns the number of outstanding source
        values, or ``None`` if a needed copy cannot be injected because the
        producer cluster's scheduler is full (the caller stalls dispatch).
        """
        producers = dyn.uop.effective_producers
        if not producers:
            return 0
        table = self.hot.dyn
        domain = table.domain[dyn.dyn_id]
        engine = self.copy_engine
        D = engine.num_domains
        cap = engine.cap_uids
        avail = engine.avail_lanes
        order_lanes = engine.avail_order_lanes
        counts = engine.avail_count_lanes
        pending = engine.pending_lanes
        pre = engine.prefetched_lanes
        copied = engine.copied_lanes
        stat = engine.stat_lanes
        rob_by_uid = self.rob.by_uid
        dyn_ring = self.rob.dyn_ring
        dom_col = table.domain
        outstanding = 0
        needed_copies: Optional[List[Tuple[int, int]]] = None
        deps: Optional[List[int]] = None

        for producer_uid in producers:
            if producer_uid < cap:
                base = producer_uid * D
                lane = base + domain
                known = counts[producer_uid] > 0
                avail_here = avail[lane]
            else:
                base = lane = -1
                known = False
                avail_here = -1
            if 0 <= avail_here <= t:
                if pre[lane]:
                    # A consumed prefetch keeps the producer's CP bit trained.
                    stat[0] += 1
                    pre[lane] = 0
                    engine.prefetched_active -= 1
                    copied[producer_uid] = 1
                continue
            slot = rob_by_uid.get(producer_uid)
            producer_domain = -1
            if slot is not None:
                ds = dyn_ring[slot]
                if ds >= 0:
                    producer_domain = dom_col[ds]
            if producer_domain < 0 and not known:
                # Retired before tracking or trace live-in: architectural
                # state visible to every register file.
                continue
            copy_pending = lane >= 0 and pending[lane]
            if copy_pending and pre[lane]:
                # The consumer will ride an in-flight prefetched copy.
                stat[0] += 1
                pre[lane] = 0
                engine.prefetched_active -= 1
                copied[producer_uid] = 1
            if avail_here < 0 and not copy_pending:
                source_domain = producer_domain
                if source_domain < 0 or source_domain == domain:
                    # The producer record says "this cluster" but the value
                    # is only resident elsewhere (e.g. it migrated on
                    # recovery): pick the first-arrival resident cluster,
                    # exactly the old per-uid dict's insertion order.
                    source_domain = -1
                    if known:
                        best_order = -1
                        for d in range(D):
                            if d != domain and avail[base + d] >= 0:
                                o = order_lanes[base + d]
                                if best_order < 0 or o < best_order:
                                    best_order = o
                                    source_domain = d
                if source_domain >= 0 and source_domain != domain:
                    if needed_copies is None:
                        needed_copies = []
                    needed_copies.append((producer_uid, source_domain))
            if deps is None:
                deps = [producer_uid]
            else:
                deps.append(producer_uid)
            outstanding += 1

        if needed_copies is not None:
            # Check the producer clusters have scheduler room for all the
            # copies this uop needs before injecting any of them (unless
            # forced by recovery re-dispatch, which must not stall
            # indefinitely).
            if not force:
                slots_needed: Dict[int, int] = {}
                for _, producer_domain in needed_copies:
                    slots_needed[producer_domain] = slots_needed.get(producer_domain, 0) + 1
                for producer_domain, count in slots_needed.items():
                    if self.clusters[producer_domain].issue_queue.free_slots < count:
                        return None
            for producer_uid, producer_domain in needed_copies:
                self._inject_copy(producer_uid, producer_domain, domain, t,
                                  prefetch=False, force=force)
        if deps is not None:
            append_value = self.hot.waiters.append_value
            dyn_id = dyn.dyn_id
            for producer_uid in deps:
                append_value(producer_uid, domain, dyn_id)
        return outstanding

    # hot-path
    def _resolve_compiled(self, dyn: _DynUop, t: int,
                          force: bool = False) -> Optional[int]:
        """Compiled dependence scan; a punt (None) reruns the python
        fallback, which injects demand copies and grows the waiter pool."""
        outstanding = self._kernel.resolve_deps(
            self.hot.cstate, dyn.dyn_id, dyn.uop.effective_producers, t)
        if outstanding is None:
            return self._resolve_dependences(dyn, t, force=force)
        return outstanding

    # ------------------------------------------------------------ copies
    def _inject_copy(self, value_uid: int, from_domain: ClockDomain,
                     to_domain: ClockDomain, t: int, prefetch: bool,
                     force: bool = False) -> None:
        engine = self.copy_engine
        request = engine.request_copy(value_uid, from_domain, to_domain,
                                      prefetch=prefetch)
        if not prefetch:
            # The CP predictor learns from *demand* copies (and from consumed
            # prefetches, recorded when a consumer uses one); counting the
            # prefetches themselves would make the bit self-reinforcing.
            engine.mark_copied(value_uid)
        else:
            engine.mark_prefetched(value_uid, to_domain)
        self.result.copies += 1
        if prefetch:
            self.result.prefetched_copies += 1
        self.result.activity.copies += 1
        self._dyn_counter += 1
        producer_seq = self._seq_of_value(value_uid)
        dyn = _DynUop(
            self.hot.dyn,
            dyn_id=self._dyn_counter, kind="copy", seq=producer_seq,
            domain=from_domain, opcode=Opcode.COPY, copy_request=request,
            value_uid=value_uid, unit=FunctionalUnit.COPY)
        backend = self._backend(from_domain)
        # The copy depends on the value being available in the producer
        # cluster (it reads the producer's register file).
        avail = engine.availability(value_uid, from_domain)
        outstanding = 0
        if avail is None or avail > t:
            outstanding = 1
            self.hot.waiters.append_value(value_uid, from_domain, dyn.dyn_id)
        backend.issue_queue.insert_uop(dyn.dyn_id, producer_seq, outstanding,
                                       False, dyn, force=force)

    def _seq_of_value(self, value_uid: int) -> int:
        slot = self.rob.by_uid.get(value_uid)
        if slot is not None:
            return self.rob.seq_ring[slot]
        return 0

    def _maybe_prefetch_copy(self, dyn: _DynUop, t: int) -> None:
        """§3.6 hybrid policy: CP bit predicts narrow-to-wide copies, the
        result-width predictor predicts wide-to-narrow copies."""
        uop = dyn.uop
        assert uop is not None and uop.has_dest
        prediction = dyn.decision.prediction if dyn.decision is not None else None
        if prediction is None:
            prediction = self.width_predictor.predict(uop.pc)
        target: Optional[int] = None
        if dyn.domain != _WIDE and prediction.will_copy:
            target = _WIDE
        elif (dyn.domain == _WIDE and prediction.narrow
              and prediction.confident and prediction.will_copy):
            # Prefetch toward the currently least-loaded helper (index 1 in
            # the paper's machine).  With several helpers this is a guess —
            # the consumer is steered independently at its own dispatch time
            # and may land elsewhere, in which case the prefetch is wasted
            # and a demand copy is generated anyway (normal prefetch
            # speculation; the CP accuracy stats account for it).
            target = self._select_helper_cluster()
        if target is None:
            return
        if (self.copy_engine.copy_in_flight(uop.uid, target)
                or self.copy_engine.availability(uop.uid, target) is not None):
            return
        if self.clusters[dyn.domain].issue_queue.is_full():
            return
        self._inject_copy(uop.uid, dyn.domain, target, t, prefetch=True)

    # -------------------------------------------------------------- splitting
    def _dispatch_split(self, fetched: FetchedUop, decision: SteerDecision,
                        t: int) -> Optional[int]:
        """IR (§3.7): replace a wide uop with four chained narrow chunks."""
        uop = fetched.uop
        plan = self.splitter.plan(uop)
        if plan is None:
            # The splitter refused (e.g. IR-nodest and the uop has a dest);
            # fall back to a plain wide dispatch.
            decision = SteerDecision(domain=ClockDomain.WIDE, reason="split_rejected")
            self._dyn_counter += 1
            dyn = _DynUop(self.hot.dyn,
                          dyn_id=self._dyn_counter, kind="trace", seq=fetched.seq,
                          domain=_WIDE, opcode=uop.opcode, uop=uop,
                          decision=decision,
                          value_uid=uop.uid if uop.has_dest else None)
            if not self._dispatch_dyn(dyn, t, allocate_rob=True):
                return None
            return 1

        # The whole chunk chain lives in one helper cluster (the chunks are
        # serially dependent, so spreading them would only add copies).
        cluster = self._select_helper_cluster(uop.opcode)
        if cluster is None:
            return None
        helper_backend = self.clusters[cluster]
        narrow_queue = helper_backend.issue_queue
        # The chunks and the copy-back burst all occupy narrow-cluster
        # scheduler entries (copies execute in the producer's cluster).
        needed_narrow = plan.num_chunks + (1 if plan.copy_backs and uop.has_dest else 0)
        if narrow_queue.free_slots < needed_narrow or self.rob.is_full():
            return None

        # The parent is a bookkeeping record: it owns the ROB entry and the
        # produced value, but never enters an issue queue itself.
        self._dyn_counter += 1
        produces_value = uop.has_dest or uop.writes_flags
        parent = _DynUop(
            self.hot.dyn,
            dyn_id=self._dyn_counter, kind="trace", seq=fetched.seq,
            domain=cluster, opcode=uop.opcode, uop=uop,
            decision=decision, value_uid=uop.uid if produces_value else None)
        self.rob.allocate(uop.uid, fetched.seq, payload=parent,
                          dyn_slot=parent.dyn_id)
        parent.in_rob = True
        self.result.activity.rob_ops += 1
        self.result.activity.rename_ops += 1
        if uop.is_memory:
            self.mob.allocate(uop.uid, fetched.seq, uop.is_store, uop.mem_addr,
                              uop.mem_size)
        if uop.has_dest:
            self.rename.allocate(uop.dest, uop.uid, cluster, False)
        if uop.writes_flags:
            self.rename.allocate(ArchReg.FLAGS, uop.uid, cluster, True)

        # Source dependences are attached to the least-significant chunk; the
        # remaining chunks chain on their predecessor (carry order, §3.7).
        previous: Optional[_DynUop] = None
        for chunk in plan.chunks:
            self._dyn_counter += 1
            chunk_dyn = _DynUop(
                self.hot.dyn,
                dyn_id=self._dyn_counter, kind="chunk", seq=fetched.seq,
                domain=cluster, opcode=chunk.opcode, uop=uop,
                parent=parent, chunk_index=chunk.chunk_index,
                is_last_chunk=(chunk.chunk_index == plan.num_chunks - 1),
                unit=helper_backend.units.unit_for(chunk.opcode))
            outstanding = 0
            if chunk.chunk_index == 0:
                resolved = self._resolve_dependences(chunk_dyn, t)
                if resolved is None:
                    resolved = 0
                outstanding = resolved
            elif chunk.depends_on_previous and previous is not None:
                outstanding = 1
                self.hot.waiters.append_chunk(previous.dyn_id, chunk_dyn.dyn_id)
            narrow_queue.insert_uop(chunk_dyn.dyn_id, fetched.seq, outstanding,
                                    False, chunk_dyn)
            helper_backend.stats.dispatched += 1
            self._account_dispatch(chunk_dyn, helper_backend)
            previous = chunk_dyn

        # Copy-backs prefetch the reassembled 32-bit value to the wide cluster.
        if plan.copy_backs and uop.has_dest:
            for _ in range(1):
                # Modelled as a single burst transfer of the four byte copies;
                # the copy *count* reflects all four (§3.7 copy statistics).
                self._inject_copy(uop.uid, cluster, _WIDE, t, prefetch=True)
            self.result.copies += plan.copy_backs - 1
            self.result.activity.copies += plan.copy_backs - 1

        self.result.split_uops += 1
        return 1

    # ======================================================================
    # wakeup plumbing
    # ======================================================================
    # hot-path
    def _wake_python(self, value_uid: Optional[int], domain: int) -> None:
        """Walk (and free) the producer's waiter list for ``domain``.

        Pure-python fallback of the compiled ``wakeup_waiters`` kernel:
        skips squashed waiters and performs ``IssueQueue.wakeup`` inlined on
        the slot columns — the arrays are authoritative while queued, so each
        wake is one dict probe and one column update.
        """
        if value_uid is None:
            return
        pool = self.hot.waiters
        if value_uid >= pool.vcap:
            return
        lane = value_uid * pool.num_domains + domain
        node = pool.value_heads[lane]
        if node < 0:
            return
        pool.value_heads[lane] = -1
        pool.value_tails[lane] = -1
        node_dyn = pool.node_dyn
        node_next = pool.node_next
        free_node = pool.free_node
        table = self.hot.dyn
        flags = table.flags
        dom_col = table.domain
        clusters = self.clusters
        while node >= 0:
            nxt = node_next[node]
            d = node_dyn[node]
            free_node(node)
            node = nxt
            if flags[d] & F_SQUASHED:
                continue
            iq = clusters[dom_col[d]].issue_queue
            slot = iq.entries.get(d)
            if slot is None:
                continue
            remaining = iq.remaining[slot] - 1
            if remaining <= 0:
                remaining = 0
                iq.ready_entries[d] = slot
            iq.remaining[slot] = remaining

    # hot-path
    def _wake_compiled(self, value_uid: Optional[int], domain: int) -> None:
        """Route a producer's waiter walk through the compiled kernel."""
        if value_uid is None:
            return
        self._kernel.wakeup_waiters(self.hot.cstate, value_uid, domain)

    def _wake_chunk_successors(self, chunk: _DynUop) -> None:
        """Wake the chunk-chain successors of a completing IR chunk."""
        pool = self.hot.waiters
        dyn_id = chunk.dyn_id
        if dyn_id >= pool.ccap:
            return
        node = pool.chunk_heads[dyn_id]
        if node < 0:
            return
        pool.chunk_heads[dyn_id] = -1
        pool.chunk_tails[dyn_id] = -1
        node_dyn = pool.node_dyn
        node_next = pool.node_next
        free_node = pool.free_node
        table = self.hot.dyn
        flags = table.flags
        dom_col = table.domain
        clusters = self.clusters
        while node >= 0:
            nxt = node_next[node]
            d = node_dyn[node]
            free_node(node)
            node = nxt
            if flags[d] & F_SQUASHED:
                continue
            clusters[dom_col[d]].issue_queue.wakeup(d)

    # ======================================================================
    # sampling / finalisation
    # ======================================================================
    # hot-path
    def _sample_imbalance(self, t: int) -> None:
        """Record this cycle's NREADY / occupancy statistics.

        The arithmetic is ``ImbalanceMonitor.record_cycle`` +
        ``IssueQueue.sample_occupancy`` fused into one pass over the
        backends — identical integer accumulations, one call per cycle.
        """
        if not self._helper_enabled:
            return
        wide_iq = self.wide.issue_queue
        helper_ready = 0
        helper_free = 0
        helper_occupancy = 0
        for _backend, iq, ready, period in self._helper_wheel:
            occupancy = len(iq.entries)
            helper_occupancy += occupancy
            if period == 1 or t % period == 0:
                helper_ready += len(ready)
                helper_free += iq.issue_width
            iq.total_occupancy_samples += 1
            iq.occupancy_accum += occupancy
            iq.ready_not_issued_accum += len(ready)
        wide_occupancy = len(wide_iq.entries)
        wide_ready_count = len(wide_iq.ready_entries)
        if t % self._ratio == 0:
            wide_ready_blocked = wide_ready_count
            wide_free = wide_iq.issue_width
        else:
            wide_ready_blocked = 0
            wide_free = 0
        imbalance = self.imbalance
        imbalance.samples += 1
        opportunities = wide_occupancy + helper_occupancy
        imbalance.issue_opportunities += opportunities if opportunities > 1 else 1
        imbalance.wide_to_narrow_nready += (
            wide_ready_blocked if wide_ready_blocked < helper_free else helper_free)
        imbalance.narrow_to_wide_nready += (
            helper_ready if helper_ready < wide_free else wide_free)
        imbalance.wide_occupancy_accum += wide_occupancy
        imbalance.narrow_occupancy_accum += helper_occupancy
        imbalance.last_wide_occupancy = wide_occupancy
        imbalance.last_narrow_occupancy = helper_occupancy
        wide_iq.total_occupancy_samples += 1
        wide_iq.occupancy_accum += wide_occupancy
        wide_iq.ready_not_issued_accum += wide_ready_count

    def _fold_stat_lanes(self) -> None:
        """Fold kernel-side stat lanes into the Python counters.

        The compiled dispatch kernels bump flat ``array('q')`` lanes instead
        of Python attributes (per cluster: scheduler, regfile, alu, agu, fpu,
        dispatched; then global rob/rename ops).  Nothing reads the counters
        mid-run, so one additive fold before the power model runs is
        equivalent to the fallback's direct increments.
        """
        lanes = self.hot.stat_lanes
        for backend in self.clusters:
            base = backend.index * 6
            cluster = self._cluster_acts[backend.index]
            cluster.scheduler_ops += lanes[base]
            cluster.regfile_accesses += lanes[base + 1]
            cluster.alu_ops += lanes[base + 2]
            cluster.agu_ops += lanes[base + 3]
            cluster.fpu_ops += lanes[base + 4]
            backend.stats.dispatched += lanes[base + 5]
        g = 6 * len(self.clusters)
        self._activity.rob_ops += lanes[g]
        self._activity.rename_ops += lanes[g + 1]
        for i in range(len(lanes)):
            lanes[i] = 0
        self.copy_engine.sync_stats()

    def _finalise(self, final_cycle: int) -> None:
        self._fold_stat_lanes()
        result = self.result
        result.fast_cycles = final_cycle
        result.slow_cycles = final_cycle / self.clocking.ratio
        result.helper_uops = self._helper_committed
        result.prediction = self._prediction
        result.cp_prediction_accuracy = self.width_predictor.copy_stats.accuracy
        result.replicated_loads = self.copy_engine.stats.replicated_loads
        result.wide_to_narrow_imbalance = self.imbalance.wide_to_narrow_imbalance()
        result.narrow_to_wide_imbalance = self.imbalance.narrow_to_wide_imbalance()
        result.mean_wide_iq_occupancy = self.wide.issue_queue.mean_occupancy
        result.mean_narrow_iq_occupancy = sum(
            backend.issue_queue.mean_occupancy for backend in self.helpers)
        result.cluster_occupancy = {
            backend.spec.name: backend.issue_queue.mean_occupancy
            for backend in self.clusters}
        result.dl0_hit_rate = self.memory.stats.dl0_hit_rate

        activity = result.activity
        activity.fast_cycles = final_cycle
        activity.wide_cycles = final_cycle // self.clocking.ratio
        activity.fetched_uops = self.frontend.fetched
        activity.committed_uops = result.committed_uops
        activity.dl0_accesses = self.memory.dl0.stats.accesses
        activity.ul1_accesses = self.memory.ul1.stats.accesses
        activity.memory_accesses = self.memory.stats.memory_accesses
        activity.helper_present = self._helper_enabled
        activity.narrow_width = self.config.narrow_width
        activity.predictor_accesses += (self.width_predictor.stats.updates
                                        + self.width_predictor.carry_stats.updates
                                        + self.width_predictor.copy_stats.updates)

        # Per-cluster activity: each cluster's own clock ticks once per
        # ``period`` fast cycles, so a 2x helper burns twice the host's
        # clock cycles over the same run.
        periods = self._periods
        for backend in self.clusters:
            cluster = self._cluster_acts[backend.index]
            cluster.cycles = final_cycle // periods[backend.index]
        result.cluster_activity = {cluster.name: cluster
                                   for cluster in self._cluster_acts}

        # Legacy aggregate view: host = wide, all helpers summed = narrow.
        host = self._cluster_acts[0]
        activity.wide_alu_ops = host.alu_ops
        activity.wide_agu_ops = host.agu_ops
        activity.wide_regfile_accesses = host.regfile_accesses
        activity.wide_scheduler_ops = host.scheduler_ops
        activity.fpu_ops = sum(c.fpu_ops for c in self._cluster_acts)
        activity.narrow_alu_ops = sum(c.alu_ops for c in self._cluster_acts[1:])
        activity.narrow_agu_ops = sum(c.agu_ops for c in self._cluster_acts[1:])
        activity.narrow_regfile_accesses = sum(
            c.regfile_accesses for c in self._cluster_acts[1:])
        activity.narrow_scheduler_ops = sum(
            c.scheduler_ops for c in self._cluster_acts[1:])

        # Energy: evaluate the per-cluster power model so every result (and
        # every cached result) carries its breakdowns and ED² for free.
        if self.power_config.enabled:
            model = PowerModel(self.power_config)
            result.power = model.evaluate_topology(self.topology,
                                                   result.cluster_activity)
            result.shared_power = model.evaluate_shared(activity)

    # ======================================================================
    # helpers
    # ======================================================================
    def _backend(self, domain: int) -> Backend:
        return self.clusters[domain]

    def _select_helper_cluster(self, opcode: Optional[Opcode] = None) -> Optional[int]:
        """Pick a helper cluster for requirement-less work (prefetch targets,
        IR chunk chains) through the shared selector."""
        return self.selector.select(opcode=opcode)


def simulate(trace: Trace, config: Optional[MachineConfig] = None,
             policy: Optional[SteeringPolicy] = None,
             power: Optional[PowerConfig] = None,
             backend: Optional[str] = None) -> SimulationResult:
    """Convenience wrapper: build a simulator, run it, return the result.

    ``backend`` forces the hot-state backend for this run (``"python"`` /
    ``"compiled"``); None inherits the process default (``REPRO_BACKEND``
    or auto-detection).  Backends are bit-identical by contract, so the
    choice never changes the result — the supervised engine uses it to
    degrade a job from the compiled to the pure-python backend on retry.
    """
    return HelperClusterSimulator(trace, config=config, policy=policy,
                                  power=power, backend=backend).run()
