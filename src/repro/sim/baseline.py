"""Monolithic-baseline helpers.

The paper reports every performance number *relative to* a monolithic
processor that has the same resources as the frontend plus the wide backend
of the clustered machine (§3.1).  These helpers run that baseline and pair it
with a helper-cluster run over the same trace so speedups can be computed
consistently everywhere (examples, experiments, benchmarks).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.core.config import MachineConfig, baseline_config
from repro.core.steering import BaselineSteering, SteeringPolicy, make_policy
from repro.power.wattch import PowerConfig
from repro.sim.metrics import SimulationResult, speedup
from repro.sim.simulator import simulate
from repro.trace.trace import Trace


def simulate_baseline(trace: Trace, config: Optional[MachineConfig] = None,
                      power: Optional[PowerConfig] = None) -> SimulationResult:
    """Run the trace on the monolithic baseline (helper cluster disabled)."""
    config = config or baseline_config()
    if config.helper.enabled:
        # Equivalent of the deprecated with_helper(enabled=False) shim,
        # spelled out so the library never warns from its own internals.
        config = replace(config, helper=replace(config.helper, enabled=False),
                         topology=None)
    return simulate(trace, config=config, policy=BaselineSteering(), power=power)


def baseline_pair(trace: Trace, policy: SteeringPolicy | str,
                  helper_config: Optional[MachineConfig] = None,
                  baseline: Optional[SimulationResult] = None,
                  power: Optional[PowerConfig] = None,
                  ) -> Tuple[SimulationResult, SimulationResult, float]:
    """Run (baseline, helper-cluster) over one trace and return the speedup.

    Parameters
    ----------
    trace:
        The trace to execute.
    policy:
        A steering policy instance or a name from the policy ladder.
    helper_config:
        Machine configuration for the helper-cluster run; defaults to the
        paper's 8-bit / 2x configuration.
    baseline:
        A previously computed baseline result for this trace, to avoid
        re-simulating it when sweeping many policies.
    power:
        Energy coefficients applied to *both* runs, so energy/ED²
        comparisons between the pair are always under one model.

    Returns
    -------
    (baseline_result, helper_result, speedup_fraction)
    """
    if isinstance(policy, str):
        policy = make_policy(policy)
    from repro.core.config import helper_cluster_config

    helper_config = helper_config or helper_cluster_config()
    if baseline is None:
        baseline = simulate_baseline(trace, power=power)
    helper_result = simulate(trace, config=helper_config, policy=policy,
                             power=power)
    return baseline, helper_result, speedup(baseline, helper_result)
