"""Simulation drivers: the top-level cycle simulator, metrics and experiments."""

from repro.sim.metrics import (
    SimulationResult,
    PredictionBreakdown,
    ed2_improvement,
    speedup,
)
from repro.sim.simulator import HelperClusterSimulator, simulate
from repro.sim.baseline import simulate_baseline, baseline_pair
from repro.sim.experiment import (
    ExperimentRunner,
    BenchmarkResult,
    PolicySweepResult,
    run_policy_ladder,
    run_spec_suite,
)
from repro.sim.reporting import format_table, format_series, results_to_rows

__all__ = [
    "SimulationResult",
    "PredictionBreakdown",
    "speedup",
    "ed2_improvement",
    "HelperClusterSimulator",
    "simulate",
    "simulate_baseline",
    "baseline_pair",
    "ExperimentRunner",
    "BenchmarkResult",
    "PolicySweepResult",
    "run_policy_ladder",
    "run_spec_suite",
    "format_table",
    "format_series",
    "results_to_rows",
]
