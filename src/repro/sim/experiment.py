"""Experiment runner: per-benchmark, per-policy sweeps.

This is the layer the benchmark harness and examples drive.  It owns trace
generation (with caching), baseline simulation and the cumulative policy
ladder, and returns structured results that :mod:`repro.sim.reporting` turns
into the paper's tables and series.

Execution is delegated to the job-based :class:`~repro.sim.engine.SweepEngine`,
which fans (benchmark, policy) jobs over a process pool when ``jobs > 1`` and
serves repeated runs from the on-disk result cache when one is configured.
Serial and parallel paths are bit-identical (see DESIGN.md and
``tests/test_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import MachineConfig, helper_cluster_config
from repro.core.steering import POLICY_LADDER, make_policy
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine, SweepJob, job_seed, trace_for_job
from repro.sim.metrics import SimulationResult, speedup
from repro.sim.simulator import simulate
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES, BenchmarkProfile
from repro.trace.trace import Trace

#: Default trace length (uops) used by experiments.  The paper simulates
#: 100M-instruction traces; the synthetic profiles converge much earlier, and
#: the pure-Python simulator needs CI-scale runtimes (see DESIGN.md).
DEFAULT_TRACE_UOPS = 30_000


@dataclass
class BenchmarkResult:
    """Baseline + policy results for one benchmark."""

    benchmark: str
    baseline: SimulationResult
    by_policy: Dict[str, SimulationResult] = field(default_factory=dict)

    def speedup(self, policy: str) -> float:
        return speedup(self.baseline, self.by_policy[policy])

    def speedups(self) -> Dict[str, float]:
        return {name: self.speedup(name) for name in self.by_policy}


@dataclass
class PolicySweepResult:
    """Results of a sweep over benchmarks x policies."""

    policies: List[str]
    benchmarks: List[str]
    results: Dict[str, BenchmarkResult] = field(default_factory=dict)

    def mean_speedup(self, policy: str) -> float:
        values = [self.results[b].speedup(policy) for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def mean_helper_fraction(self, policy: str) -> float:
        values = [self.results[b].by_policy[policy].helper_fraction
                  for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def mean_copy_fraction(self, policy: str) -> float:
        values = [self.results[b].by_policy[policy].copy_fraction
                  for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def speedup_series(self, policy: str) -> Dict[str, float]:
        return {b: self.results[b].speedup(policy) for b in self.benchmarks}


class ExperimentRunner:
    """Front-end over :class:`SweepEngine` that caches traces and baselines.

    Parameters
    ----------
    jobs:
        Worker processes for sweeps (1 = serial, 0 = one per CPU).
    cache_dir:
        Directory for the on-disk result cache; None disables caching.
    use_cache:
        When False, an existing ``cache_dir`` is bypassed on reads (results
        are still recomputed and stored), the CLI's ``--no-cache``.
    """

    def __init__(self, trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                 config: Optional[MachineConfig] = None,
                 use_slicing: bool = False, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True) -> None:
        if trace_uops <= 0:
            raise ValueError("trace_uops must be positive")
        self.trace_uops = trace_uops
        self.seed = seed
        self.config = config or helper_cluster_config()
        self.use_slicing = use_slicing
        self.use_cache = use_cache
        self.cache = ResultCache(cache_dir) if cache_dir else None
        self.engine = SweepEngine(config=self.config, jobs=jobs,
                                  cache=self.cache)
        self._baselines: Dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------ jobs
    def _job(self, profile: BenchmarkProfile, policy: str) -> SweepJob:
        self.engine.register_profile(profile)
        return SweepJob(profile.name, policy, self.trace_uops,
                        job_seed(self.seed, profile.name), self.use_slicing)

    # ------------------------------------------------------------------ traces
    def trace_for(self, profile: BenchmarkProfile) -> Trace:
        """Generate (and cache) the trace for a profile."""
        return trace_for_job(self._job(profile, "baseline"), profile)

    def baseline_for(self, profile: BenchmarkProfile) -> SimulationResult:
        """Run (and cache) the monolithic baseline for a profile."""
        key = f"{profile.name}:{self.seed}:{self.trace_uops}:{self.use_slicing}"
        if key not in self._baselines:
            job = self._job(profile, "baseline")
            self._baselines[key] = self.engine.run_jobs(
                [job], use_cache=self.use_cache)[job]
        return self._baselines[key]

    # ------------------------------------------------------------------- runs
    def run_policy(self, profile: BenchmarkProfile, policy_name: str,
                   config: Optional[MachineConfig] = None) -> SimulationResult:
        """Run one benchmark under one policy of the ladder."""
        if policy_name == "baseline":
            return self.baseline_for(profile)
        if config is not None and config is not self.config:
            # One-off config override: run directly, outside the engine's
            # (config-keyed) cache.
            return simulate(self.trace_for(profile), config=config,
                            policy=make_policy(policy_name))
        job = self._job(profile, policy_name)
        return self.engine.run_jobs([job], use_cache=self.use_cache)[job]

    def run_benchmark(self, profile: BenchmarkProfile,
                      policies: Sequence[str]) -> BenchmarkResult:
        """Run one benchmark under several policies, sharing the baseline."""
        sweep = self.run_suite([profile], policies)
        return sweep.results[profile.name]

    def run_suite(self, profiles: Iterable[BenchmarkProfile],
                  policies: Sequence[str]) -> PolicySweepResult:
        """Run a set of benchmarks under a set of policies."""
        return self.engine.run_suite(profiles, policies,
                                     trace_uops=self.trace_uops,
                                     seed=self.seed,
                                     use_slicing=self.use_slicing,
                                     use_cache=self.use_cache)


def run_spec_suite(policies: Sequence[str], trace_uops: int = DEFAULT_TRACE_UOPS,
                   seed: int = 2006, benchmarks: Optional[Sequence[str]] = None,
                   config: Optional[MachineConfig] = None, jobs: int = 1,
                   cache_dir: Optional[str] = None,
                   use_cache: bool = True) -> PolicySweepResult:
    """Run the 12 SPEC Int 2000 benchmarks (or a subset) under the given policies."""
    runner = ExperimentRunner(trace_uops=trace_uops, seed=seed, config=config,
                              jobs=jobs, cache_dir=cache_dir,
                              use_cache=use_cache)
    names = list(benchmarks) if benchmarks else SPEC_INT_NAMES
    profiles = [SPEC_INT_2000[name] for name in names]
    return runner.run_suite(profiles, policies)


def run_policy_ladder(trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                      benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
                      cache_dir: Optional[str] = None,
                      use_cache: bool = True) -> PolicySweepResult:
    """Run the full cumulative policy ladder of the paper over SPEC Int 2000."""
    policies = [name for name in POLICY_LADDER if name != "baseline"]
    return run_spec_suite(policies, trace_uops=trace_uops, seed=seed,
                          benchmarks=benchmarks, jobs=jobs,
                          cache_dir=cache_dir, use_cache=use_cache)
