"""Experiment runner: per-benchmark, per-policy sweeps.

This is the layer the benchmark harness and examples drive.  It owns trace
generation (with caching), baseline simulation and the cumulative policy
ladder, and returns structured results that :mod:`repro.sim.reporting` turns
into the paper's tables and series.

Execution is delegated to the job-based :class:`~repro.sim.engine.SweepEngine`,
which fans (benchmark, policy) jobs over a process pool when ``jobs > 1`` and
serves repeated runs from the on-disk result cache when one is configured.
Serial and parallel paths are bit-identical (see DESIGN.md and
``tests/test_engine.py``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import (
    MachineConfig,
    Topology,
    helper_cluster_config,
    helper_topology,
    mixed_helper_topology,
    topology_config,
)
from repro.core.steering import make_policy, policy_registry
from repro.power.wattch import PowerConfig
from repro.sim.cache import ResultCache
from repro.sim.engine import SweepEngine, SweepJob, job_seed, trace_for_job
from repro.sim.metrics import SimulationResult, ed2_improvement, speedup
from repro.sim.simulator import simulate
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES, BenchmarkProfile
from repro.trace.trace import Trace
from repro.trace.workloads import WorkloadApp, build_workload_suite

#: Default trace length (uops) used by experiments.  The paper simulates
#: 100M-instruction traces; the synthetic profiles converge much earlier, and
#: the pure-Python simulator needs CI-scale runtimes (see DESIGN.md).  Raised
#: from 30k when the event-wheel core + cross-job trace store landed (PR 5).
DEFAULT_TRACE_UOPS = 50_000


def _safe_ed2_improvement(baseline: SimulationResult,
                          candidate: SimulationResult) -> float:
    """ED² improvement, or 0.0 when either run lacks energy figures.

    A candidate simulated with energy accounting disabled has ``ed2 == 0``;
    reporting that as a +100% gain would be nonsense, so both sides must
    carry energy for a comparison to mean anything.
    """
    if baseline.ed2 <= 0 or not candidate.has_energy:
        return 0.0
    return ed2_improvement(baseline, candidate)


@dataclass
class BenchmarkResult:
    """Baseline + policy results for one benchmark."""

    benchmark: str
    baseline: SimulationResult
    by_policy: Dict[str, SimulationResult] = field(default_factory=dict)

    def speedup(self, policy: str) -> float:
        return speedup(self.baseline, self.by_policy[policy])

    def speedups(self) -> Dict[str, float]:
        return {name: self.speedup(name) for name in self.by_policy}

    def ed2_improvement(self, policy: str) -> float:
        """Relative ED² gain of a policy over the monolithic baseline."""
        return _safe_ed2_improvement(self.baseline, self.by_policy[policy])


@dataclass
class PolicySweepResult:
    """Results of a sweep over benchmarks x policies.

    Cells may be missing when a supervised campaign quarantined a job (see
    :meth:`SweepEngine.run_suite`); aggregates and series are computed over
    the surviving cells, so a campaign with failures still reports every
    number it did produce.
    """

    policies: List[str]
    benchmarks: List[str]
    results: Dict[str, BenchmarkResult] = field(default_factory=dict)

    def _cells(self, policy: str):
        """Benchmark results that actually hold ``policy`` (in order)."""
        for name in self.benchmarks:
            bench = self.results.get(name)
            if bench is not None and policy in bench.by_policy:
                yield bench

    def mean_speedup(self, policy: str) -> float:
        values = [bench.speedup(policy) for bench in self._cells(policy)]
        return sum(values) / len(values) if values else 0.0

    def mean_helper_fraction(self, policy: str) -> float:
        values = [bench.by_policy[policy].helper_fraction
                  for bench in self._cells(policy)]
        return sum(values) / len(values) if values else 0.0

    def mean_copy_fraction(self, policy: str) -> float:
        values = [bench.by_policy[policy].copy_fraction
                  for bench in self._cells(policy)]
        return sum(values) / len(values) if values else 0.0

    def speedup_series(self, policy: str) -> Dict[str, float]:
        return {bench.benchmark: bench.speedup(policy)
                for bench in self._cells(policy)}

    def mean_ed2_improvement(self, policy: str) -> float:
        values = [bench.ed2_improvement(policy)
                  for bench in self._cells(policy)]
        return sum(values) / len(values) if values else 0.0

    def ed2_series(self, policy: str) -> Dict[str, float]:
        return {bench.benchmark: bench.ed2_improvement(policy)
                for bench in self._cells(policy)}


@dataclass(frozen=True)
class TopologyPoint:
    """One machine shape of a design-space exploration."""

    name: str
    config: MachineConfig

    @property
    def topology(self) -> Topology:
        return self.config.cluster_topology()

    def describe(self) -> str:
        """Compact cluster summary, e.g. ``32 + 2x8b@2x``."""
        topology = self.topology
        if not topology.helpers:
            return f"{topology.host.datapath_width}b host only"
        by_shape: Dict[Tuple[int, int], int] = {}
        for spec in topology.helpers:
            key = (spec.datapath_width, spec.clock_ratio)
            by_shape[key] = by_shape.get(key, 0) + 1
        parts = [f"{count}x{width}b@{ratio}x"
                 for (width, ratio), count in sorted(by_shape.items())]
        return f"{topology.host.datapath_width}b + " + " + ".join(parts)


def build_topology_grid(widths: Sequence[int] = (4, 8, 16),
                        ratios: Sequence[int] = (1, 2),
                        helper_counts: Sequence[int] = (1, 2),
                        predictor_entries: int = 256) -> List[TopologyPoint]:
    """The narrow-width x clock-ratio x helper-count exploration grid.

    The default grid is 3 x 2 x 2 = 12 machine shapes, with the paper's
    design point (``w8x2h1``) among them.
    """
    points: List[TopologyPoint] = []
    for width in widths:
        for ratio in ratios:
            for count in helper_counts:
                name = f"w{width}x{ratio}h{count}"
                config = topology_config(
                    helper_topology(narrow_width=width, clock_ratio=ratio,
                                    helpers=count),
                    predictor_entries=predictor_entries)
                points.append(TopologyPoint(name=name, config=config))
    return points


def mixed_topology_point(helper_shapes: Sequence[Tuple[int, int]],
                         predictor_entries: int = 256) -> TopologyPoint:
    """An asymmetric exploration point: one helper per (width, ratio) pair.

    ``mixed_topology_point([(8, 2), (16, 1)])`` is the ROADMAP's
    8-bit@2x + 16-bit@1x machine, named ``mix_8x2_16x1``; it slots into
    :meth:`ExperimentRunner.run_topology_grid` next to the uniform grid
    points (the CLI's ``explore --mixed``).
    """
    name = "mix_" + "_".join(f"{width}x{ratio}" for width, ratio in helper_shapes)
    config = topology_config(mixed_helper_topology(helper_shapes),
                             predictor_entries=predictor_entries)
    return TopologyPoint(name=name, config=config)


@dataclass
class TopologySweepResult:
    """Results of a topology-grid exploration under one steering policy."""

    policy: str
    benchmarks: List[str]
    points: List[TopologyPoint]
    #: benchmark -> monolithic baseline result (shared across all points)
    baselines: Dict[str, SimulationResult] = field(default_factory=dict)
    #: (point name, benchmark) -> result
    results: Dict[Tuple[str, str], SimulationResult] = field(default_factory=dict)

    def _bench_cells(self, point: str):
        """Benchmarks with both a baseline and this point's result.

        A supervised campaign may quarantine individual grid cells;
        aggregates are over the surviving ones.
        """
        for name in self.benchmarks:
            if (name in self.baselines
                    and (point, name) in self.results):
                yield name

    def result(self, point: str, benchmark: str) -> SimulationResult:
        return self.results[(point, benchmark)]

    def speedup(self, point: str, benchmark: str) -> float:
        return speedup(self.baselines[benchmark], self.results[(point, benchmark)])

    def mean_speedup(self, point: str) -> float:
        values = [self.speedup(point, b) for b in self._bench_cells(point)]
        return sum(values) / len(values) if values else 0.0

    def mean_helper_fraction(self, point: str) -> float:
        values = [self.results[(point, b)].helper_fraction
                  for b in self._bench_cells(point)]
        return sum(values) / len(values) if values else 0.0

    def mean_copy_fraction(self, point: str) -> float:
        values = [self.results[(point, b)].copy_fraction
                  for b in self._bench_cells(point)]
        return sum(values) / len(values) if values else 0.0

    def ed2_improvement(self, point: str, benchmark: str) -> float:
        """ED² gain of one grid point over the shared monolithic baseline."""
        return _safe_ed2_improvement(self.baselines[benchmark],
                                     self.results[(point, benchmark)])

    def mean_ed2_improvement(self, point: str) -> float:
        values = [self.ed2_improvement(point, b)
                  for b in self._bench_cells(point)]
        return sum(values) / len(values) if values else 0.0

    def mean_energy(self, point: str) -> float:
        values = [self.results[(point, b)].energy
                  for b in self._bench_cells(point)]
        return sum(values) / len(values) if values else 0.0

    def best_point(self) -> TopologyPoint:
        return max(self.points, key=lambda p: self.mean_speedup(p.name))

    def best_ed2_point(self) -> TopologyPoint:
        """The grid point with the best mean ED² gain (the paper's metric)."""
        return max(self.points, key=lambda p: self.mean_ed2_improvement(p.name))


@dataclass
class WorkloadSweepResult:
    """Results of the Table 2 workload suite under one steering policy."""

    policy: str
    apps: List[WorkloadApp]
    #: app name -> monolithic baseline result
    baselines: Dict[str, SimulationResult] = field(default_factory=dict)
    #: app name -> policy result
    by_app: Dict[str, SimulationResult] = field(default_factory=dict)

    def _live_apps(self) -> List[WorkloadApp]:
        """Apps with both a baseline and a policy result (a supervised
        campaign may have quarantined either half of a pair)."""
        return [app for app in self.apps
                if app.name in self.baselines and app.name in self.by_app]

    def speedup(self, app_name: str) -> float:
        return speedup(self.baselines[app_name], self.by_app[app_name])

    def speedups(self) -> Dict[str, float]:
        return {app.name: self.speedup(app.name) for app in self._live_apps()}

    def ed2_improvement(self, app_name: str) -> float:
        return _safe_ed2_improvement(self.baselines[app_name],
                                     self.by_app[app_name])

    def mean_ed2_improvement(self) -> float:
        values = [self.ed2_improvement(app.name) for app in self._live_apps()]
        return sum(values) / len(values) if values else 0.0

    def category_speedups(self) -> Dict[str, List[float]]:
        by_category: Dict[str, List[float]] = {}
        for app in self._live_apps():
            by_category.setdefault(app.category, []).append(self.speedup(app.name))
        return by_category

    def category_means(self) -> Dict[str, float]:
        return {category: sum(values) / len(values)
                for category, values in self.category_speedups().items()}

    def mean_speedup(self) -> float:
        values = [self.speedup(app.name) for app in self._live_apps()]
        return sum(values) / len(values) if values else 0.0

    def s_curve(self) -> List[float]:
        """Per-app performance sorted ascending, baseline = 1 (Figure 14)."""
        return sorted(1.0 + self.speedup(app.name)
                      for app in self._live_apps())


class ExperimentRunner:
    """Front-end over :class:`SweepEngine` that caches traces and baselines.

    Parameters
    ----------
    jobs:
        Worker processes for sweeps (1 = serial, 0 = one per CPU).  Requests
        beyond the host's usable CPUs are clamped by the engine unless
        ``allow_oversubscribe=True``.
    cache_dir:
        Directory for the on-disk result cache; None disables caching.
    use_cache:
        When False, an existing ``cache_dir`` is bypassed on reads (results
        are still recomputed and stored), the CLI's ``--no-cache``.
    power:
        Energy-coefficient configuration for every run (baselines included);
        ``PowerConfig(enabled=False)`` turns energy accounting off.
    supervisor / faults:
        Passed through to the engine (retry/deadline policy and the
        deterministic fault plan; see :mod:`repro.sim.supervise` and
        :mod:`repro.faultkit`).
    checkpoint_path / quarantine_path:
        Campaign checkpoint (JSONL) and the replayable ``failed-jobs.json``
        ledger.  Both default to living next to the result cache when a
        ``cache_dir`` is configured (``<cache-dir>/checkpoint.jsonl`` /
        ``<cache-dir>/failed-jobs.json``) — a cached campaign is resumable
        and quarantine-accountable by default; without a cache dir the
        quarantine ledger falls back to ``./failed-jobs.json`` and
        checkpointing is off (there is no durable store to resume from).
    """

    def __init__(self, trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                 config: Optional[MachineConfig] = None,
                 use_slicing: bool = False, jobs: int = 1,
                 cache_dir: Optional[str] = None,
                 use_cache: bool = True,
                 power: Optional[PowerConfig] = None,
                 trace_store_dir: Optional[str] = None,
                 allow_oversubscribe: bool = False,
                 supervisor=None, faults=None,
                 checkpoint_path: Optional[str] = None,
                 quarantine_path: Optional[str] = None) -> None:
        if trace_uops <= 0:
            raise ValueError("trace_uops must be positive")
        self.trace_uops = trace_uops
        self.seed = seed
        self.config = config or helper_cluster_config()
        self.use_slicing = use_slicing
        self.use_cache = use_cache
        self.power = power or PowerConfig()
        self.cache = ResultCache(cache_dir) if cache_dir else None
        if trace_store_dir is None and cache_dir:
            # A persistent result cache gets a persistent sibling trace
            # store: warm directories skip generation as well as simulation.
            trace_store_dir = os.path.join(str(cache_dir), "traces")
        if checkpoint_path is None and cache_dir:
            checkpoint_path = os.path.join(str(cache_dir), "checkpoint.jsonl")
        if quarantine_path is None:
            quarantine_path = (os.path.join(str(cache_dir), "failed-jobs.json")
                               if cache_dir else "failed-jobs.json")
        self.engine = SweepEngine(config=self.config, jobs=jobs,
                                  cache=self.cache, power=self.power,
                                  trace_store_dir=trace_store_dir,
                                  allow_oversubscribe=allow_oversubscribe,
                                  supervisor=supervisor, faults=faults,
                                  checkpoint_path=checkpoint_path,
                                  quarantine_path=quarantine_path)
        self._baselines: Dict[str, SimulationResult] = {}

    @property
    def report(self):
        """The engine's supervision report (retries, degradations, …)."""
        return self.engine.report

    # ------------------------------------------------------------------ jobs
    def _job(self, profile: BenchmarkProfile, policy: str) -> SweepJob:
        self.engine.register_profile(profile)
        return SweepJob(profile.name, policy, self.trace_uops,
                        job_seed(self.seed, profile.name), self.use_slicing)

    # ------------------------------------------------------------------ traces
    def trace_for(self, profile: BenchmarkProfile) -> Trace:
        """Generate (and cache) the trace for a profile."""
        return trace_for_job(self._job(profile, "baseline"), profile,
                             self.engine.trace_store)

    def baseline_for(self, profile: BenchmarkProfile) -> SimulationResult:
        """Run (and cache) the monolithic baseline for a profile."""
        key = f"{profile.name}:{self.seed}:{self.trace_uops}:{self.use_slicing}"
        if key not in self._baselines:
            job = self._job(profile, "baseline")
            self._baselines[key] = self._single_result(job)
        return self._baselines[key]

    def _single_result(self, job: SweepJob) -> SimulationResult:
        """Run one job; a quarantined single job is a hard error (there is
        no partial campaign to salvage when the caller asked for exactly
        this result)."""
        results = self.engine.run_jobs([job], use_cache=self.use_cache)
        if job not in results:
            raise RuntimeError(
                f"job {job.benchmark}:{job.policy} failed all supervised "
                f"attempts (quarantined); see the failed-jobs ledger")
        return results[job]

    # ------------------------------------------------------------------- runs
    def run_policy(self, profile: BenchmarkProfile, policy_name: str,
                   config: Optional[MachineConfig] = None) -> SimulationResult:
        """Run one benchmark under one policy of the ladder."""
        if policy_name == "baseline":
            return self.baseline_for(profile)
        if config is not None and config is not self.config:
            # One-off config override: run directly, outside the engine's
            # (config-keyed) cache.
            return simulate(self.trace_for(profile), config=config,
                            policy=make_policy(policy_name), power=self.power)
        job = self._job(profile, policy_name)
        return self._single_result(job)

    def run_benchmark(self, profile: BenchmarkProfile,
                      policies: Sequence[str]) -> BenchmarkResult:
        """Run one benchmark under several policies, sharing the baseline."""
        sweep = self.run_suite([profile], policies)
        return sweep.results[profile.name]

    def run_suite(self, profiles: Iterable[BenchmarkProfile],
                  policies: Sequence[str]) -> PolicySweepResult:
        """Run a set of benchmarks under a set of policies."""
        return self.engine.run_suite(profiles, policies,
                                     trace_uops=self.trace_uops,
                                     seed=self.seed,
                                     use_slicing=self.use_slicing,
                                     use_cache=self.use_cache)

    # -------------------------------------------------------- design space
    def run_topology_grid(self, points: Sequence[TopologyPoint],
                          profiles: Iterable[BenchmarkProfile],
                          policy: str = "ir") -> TopologySweepResult:
        """Sweep machine shapes x benchmarks through the parallel engine.

        One job per (topology point, benchmark) plus a shared monolithic
        baseline per benchmark; every job carries its topology, so the pool
        fans out over machine shapes exactly as it does over benchmarks, and
        the result cache keys each point separately.
        """
        if policy == "baseline":
            raise ValueError("the exploration policy must be a helper policy")
        profiles = list(profiles)
        jobs: List[SweepJob] = []
        for profile in profiles:
            self.engine.register_profile(profile)
            seed_for_bench = job_seed(self.seed, profile.name)
            jobs.append(SweepJob(profile.name, "baseline", self.trace_uops,
                                 seed_for_bench, self.use_slicing))
            for point in points:
                jobs.append(SweepJob(profile.name, policy, self.trace_uops,
                                     seed_for_bench, self.use_slicing,
                                     config=point.config))
        results = self.engine.run_jobs(jobs, use_cache=self.use_cache)

        sweep = TopologySweepResult(policy=policy,
                                    benchmarks=[p.name for p in profiles],
                                    points=list(points))
        # Quarantined cells are simply absent; the aggregates skip them
        # (and the supervision report records what was dropped).
        for profile in profiles:
            seed_for_bench = job_seed(self.seed, profile.name)
            baseline = results.get(SweepJob(
                profile.name, "baseline", self.trace_uops, seed_for_bench,
                self.use_slicing))
            if baseline is not None:
                sweep.baselines[profile.name] = baseline
            for point in points:
                result = results.get(SweepJob(
                    profile.name, policy, self.trace_uops, seed_for_bench,
                    self.use_slicing, config=point.config))
                if result is not None:
                    sweep.results[(point.name, profile.name)] = result
        return sweep

    # ----------------------------------------------------- workload suite
    def run_workload_suite(self, policy: str = "ir_nodest",
                           categories: Optional[Sequence[str]] = None,
                           apps_per_category: Optional[int] = None,
                           base_seed: Optional[int] = None) -> WorkloadSweepResult:
        """Run the Table 2 suite (§3.8 / Figure 14) through the engine.

        Each application is a (perturbed-profile, per-app seed) job pair —
        baseline plus ``policy`` — fanned over the worker pool and served
        from the result cache on re-runs, replacing the serial per-app loop
        of the benchmark harness.
        """
        apps = build_workload_suite(
            list(categories) if categories else None,
            apps_per_category=apps_per_category,
            base_seed=self.seed if base_seed is None else base_seed)
        jobs: List[SweepJob] = []
        for app in apps:
            self.engine.register_profile(app.profile)
            jobs.append(SweepJob(app.name, "baseline", self.trace_uops,
                                 app.seed, self.use_slicing))
            jobs.append(SweepJob(app.name, policy, self.trace_uops,
                                 app.seed, self.use_slicing))
        results = self.engine.run_jobs(jobs, use_cache=self.use_cache)

        sweep = WorkloadSweepResult(policy=policy, apps=apps)
        for app in apps:
            baseline = results.get(SweepJob(
                app.name, "baseline", self.trace_uops, app.seed,
                self.use_slicing))
            if baseline is not None:
                sweep.baselines[app.name] = baseline
            result = results.get(SweepJob(
                app.name, policy, self.trace_uops, app.seed,
                self.use_slicing))
            if result is not None:
                sweep.by_app[app.name] = result
        return sweep


def run_spec_suite(policies: Sequence[str], trace_uops: int = DEFAULT_TRACE_UOPS,
                   seed: int = 2006, benchmarks: Optional[Sequence[str]] = None,
                   config: Optional[MachineConfig] = None, jobs: int = 1,
                   cache_dir: Optional[str] = None,
                   use_cache: bool = True,
                   allow_oversubscribe: bool = False) -> PolicySweepResult:
    """Run the 12 SPEC Int 2000 benchmarks (or a subset) under the given policies."""
    runner = ExperimentRunner(trace_uops=trace_uops, seed=seed, config=config,
                              jobs=jobs, cache_dir=cache_dir,
                              use_cache=use_cache,
                              allow_oversubscribe=allow_oversubscribe)
    names = list(benchmarks) if benchmarks else SPEC_INT_NAMES
    profiles = [SPEC_INT_2000[name] for name in names]
    return runner.run_suite(profiles, policies)


def run_topology_exploration(widths: Sequence[int] = (4, 8, 16),
                             ratios: Sequence[int] = (1, 2),
                             helper_counts: Sequence[int] = (1, 2),
                             policy: str = "ir",
                             trace_uops: int = DEFAULT_TRACE_UOPS,
                             seed: int = 2006,
                             benchmarks: Optional[Sequence[str]] = None,
                             jobs: int = 1, cache_dir: Optional[str] = None,
                             use_cache: bool = True
                             ) -> Tuple[TopologySweepResult, ExperimentRunner]:
    """Design-space exploration: sweep a topology grid over SPEC benchmarks."""
    runner = ExperimentRunner(trace_uops=trace_uops, seed=seed, jobs=jobs,
                              cache_dir=cache_dir, use_cache=use_cache)
    names = list(benchmarks) if benchmarks else SPEC_INT_NAMES
    profiles = [SPEC_INT_2000[name] for name in names]
    points = build_topology_grid(widths, ratios, helper_counts)
    return runner.run_topology_grid(points, profiles, policy=policy), runner


def run_policy_ladder(trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                      benchmarks: Optional[Sequence[str]] = None, jobs: int = 1,
                      cache_dir: Optional[str] = None,
                      use_cache: bool = True) -> PolicySweepResult:
    """Run the full cumulative policy ladder of the paper over SPEC Int 2000."""
    policies = policy_registry.ladder_names(include_baseline=False)
    return run_spec_suite(policies, trace_uops=trace_uops, seed=seed,
                          benchmarks=benchmarks, jobs=jobs,
                          cache_dir=cache_dir, use_cache=use_cache)
