"""Experiment runner: per-benchmark, per-policy sweeps.

This is the layer the benchmark harness and examples drive.  It owns trace
generation (with caching), baseline simulation and the cumulative policy
ladder, and returns structured results that :mod:`repro.sim.reporting` turns
into the paper's tables and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import MachineConfig, helper_cluster_config
from repro.core.steering import POLICY_LADDER, make_policy
from repro.sim.baseline import simulate_baseline
from repro.sim.metrics import SimulationResult, speedup
from repro.sim.simulator import simulate
from repro.trace.profiles import SPEC_INT_2000, SPEC_INT_NAMES, BenchmarkProfile
from repro.trace.slicing import select_simulation_slice
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace

#: Default trace length (uops) used by experiments.  The paper simulates
#: 100M-instruction traces; the synthetic profiles converge much earlier, and
#: the pure-Python simulator needs CI-scale runtimes (see DESIGN.md).
DEFAULT_TRACE_UOPS = 30_000


@dataclass
class BenchmarkResult:
    """Baseline + policy results for one benchmark."""

    benchmark: str
    baseline: SimulationResult
    by_policy: Dict[str, SimulationResult] = field(default_factory=dict)

    def speedup(self, policy: str) -> float:
        return speedup(self.baseline, self.by_policy[policy])

    def speedups(self) -> Dict[str, float]:
        return {name: self.speedup(name) for name in self.by_policy}


@dataclass
class PolicySweepResult:
    """Results of a sweep over benchmarks x policies."""

    policies: List[str]
    benchmarks: List[str]
    results: Dict[str, BenchmarkResult] = field(default_factory=dict)

    def mean_speedup(self, policy: str) -> float:
        values = [self.results[b].speedup(policy) for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def mean_helper_fraction(self, policy: str) -> float:
        values = [self.results[b].by_policy[policy].helper_fraction
                  for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def mean_copy_fraction(self, policy: str) -> float:
        values = [self.results[b].by_policy[policy].copy_fraction
                  for b in self.benchmarks]
        return sum(values) / len(values) if values else 0.0

    def speedup_series(self, policy: str) -> Dict[str, float]:
        return {b: self.results[b].speedup(policy) for b in self.benchmarks}


class ExperimentRunner:
    """Caches traces and baseline runs across policy sweeps."""

    def __init__(self, trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                 config: Optional[MachineConfig] = None,
                 use_slicing: bool = False) -> None:
        if trace_uops <= 0:
            raise ValueError("trace_uops must be positive")
        self.trace_uops = trace_uops
        self.seed = seed
        self.config = config or helper_cluster_config()
        self.use_slicing = use_slicing
        self._traces: Dict[str, Trace] = {}
        self._baselines: Dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------ traces
    def trace_for(self, profile: BenchmarkProfile) -> Trace:
        """Generate (and cache) the trace for a profile."""
        key = f"{profile.name}:{self.seed}:{self.trace_uops}:{self.use_slicing}"
        if key not in self._traces:
            if self.use_slicing:
                # Generate a longer run and keep the paper's simulation slice
                # (§3.1: split into 10 slices, start from the fourth).
                full = generate_trace(profile, self.trace_uops * 10, seed=self.seed)
                self._traces[key] = select_simulation_slice(full)
            else:
                self._traces[key] = generate_trace(profile, self.trace_uops,
                                                   seed=self.seed)
        return self._traces[key]

    def baseline_for(self, profile: BenchmarkProfile) -> SimulationResult:
        """Run (and cache) the monolithic baseline for a profile."""
        key = f"{profile.name}:{self.seed}:{self.trace_uops}:{self.use_slicing}"
        if key not in self._baselines:
            self._baselines[key] = simulate_baseline(self.trace_for(profile))
        return self._baselines[key]

    # ------------------------------------------------------------------- runs
    def run_policy(self, profile: BenchmarkProfile, policy_name: str,
                   config: Optional[MachineConfig] = None) -> SimulationResult:
        """Run one benchmark under one policy of the ladder."""
        trace = self.trace_for(profile)
        if policy_name == "baseline":
            return self.baseline_for(profile)
        return simulate(trace, config=config or self.config,
                        policy=make_policy(policy_name))

    def run_benchmark(self, profile: BenchmarkProfile,
                      policies: Sequence[str]) -> BenchmarkResult:
        """Run one benchmark under several policies, sharing the baseline."""
        result = BenchmarkResult(benchmark=profile.name,
                                 baseline=self.baseline_for(profile))
        for name in policies:
            if name == "baseline":
                continue
            result.by_policy[name] = self.run_policy(profile, name)
        return result

    def run_suite(self, profiles: Iterable[BenchmarkProfile],
                  policies: Sequence[str]) -> PolicySweepResult:
        """Run a set of benchmarks under a set of policies."""
        profiles = list(profiles)
        sweep = PolicySweepResult(
            policies=[p for p in policies if p != "baseline"],
            benchmarks=[p.name for p in profiles])
        for profile in profiles:
            sweep.results[profile.name] = self.run_benchmark(profile, policies)
        return sweep


def run_spec_suite(policies: Sequence[str], trace_uops: int = DEFAULT_TRACE_UOPS,
                   seed: int = 2006, benchmarks: Optional[Sequence[str]] = None,
                   config: Optional[MachineConfig] = None) -> PolicySweepResult:
    """Run the 12 SPEC Int 2000 benchmarks (or a subset) under the given policies."""
    runner = ExperimentRunner(trace_uops=trace_uops, seed=seed, config=config)
    names = list(benchmarks) if benchmarks else SPEC_INT_NAMES
    profiles = [SPEC_INT_2000[name] for name in names]
    return runner.run_suite(profiles, policies)


def run_policy_ladder(trace_uops: int = DEFAULT_TRACE_UOPS, seed: int = 2006,
                      benchmarks: Optional[Sequence[str]] = None) -> PolicySweepResult:
    """Run the full cumulative policy ladder of the paper over SPEC Int 2000."""
    policies = [name for name in POLICY_LADDER if name != "baseline"]
    return run_spec_suite(policies, trace_uops=trace_uops, seed=seed,
                          benchmarks=benchmarks)
