"""Campaign checkpointing and the quarantine ledger.

The content-addressed :class:`~repro.sim.cache.ResultCache` already makes
re-submitting a finished job idempotent; the checkpoint makes the campaign's
progress *explicit and reportable*: an append-only JSONL file of completed
job keys that survives interruption (each line is one ``fsync``-free append;
a torn final line from a crash mid-write is detected and ignored on load).
A resumed sweep reports ``resumed=N`` for jobs whose key is both
checkpointed and served from the cache — and recomputes any checkpointed
job whose cache entry has meanwhile been lost or corrupted, correcting the
record as it goes (the cache stays the source of truth for *data*; the
checkpoint only witnesses *progress*).

The quarantine ledger (``failed-jobs.json``) is the other half of the
contract: a job that fails every supervised attempt is recorded — with its
full attempt history — instead of aborting the campaign, in a replayable
form (the job fields reconstruct a :class:`~repro.sim.engine.SweepJob`
verbatim).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

#: Checkpoint line format; bump when the line layout changes.
CHECKPOINT_FORMAT = 1

#: Quarantine file format; bump when the record layout changes.
QUARANTINE_FORMAT = 1


def job_to_dict(job) -> dict:
    """The replayable identity of a SweepJob (per-job config elided —
    grid jobs are re-keyed by their result key, which covers it)."""
    return {
        "benchmark": job.benchmark,
        "policy": job.policy,
        "trace_uops": job.trace_uops,
        "seed": job.seed,
        "use_slicing": job.use_slicing,
    }


class CampaignCheckpoint:
    """Append-only record of completed (and quarantined) job keys."""

    def __init__(self, path: os.PathLike | str) -> None:
        self.path = Path(path)
        #: key -> replayable job identity dict
        self.completed: Dict[str, dict] = {}
        #: key -> quarantine record (cleared when the job later completes)
        self.quarantined: Dict[str, dict] = {}
        #: lines dropped on load because they did not parse (torn tail
        #: from an interrupted append, or foreign garbage)
        self.dropped_lines = 0
        self._load()

    # -------------------------------------------------------------- loading
    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A torn append (interrupt mid-write) only ever damages the
                # final line; anything unparseable is simply not progress.
                self.dropped_lines += 1
                continue
            if not isinstance(record, dict) or "key" not in record:
                self.dropped_lines += 1
                continue
            key = record["key"]
            if record.get("kind") == "quarantined":
                self.quarantined[key] = record
            else:
                self.completed[key] = record.get("job", {})
                self.quarantined.pop(key, None)

    # ------------------------------------------------------------ appending
    def _append(self, record: dict) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:
            # Checkpointing is best-effort by design: an unwritable
            # checkpoint degrades resume reporting, never the sweep.
            pass

    def mark_completed(self, key: str, job) -> None:
        if key in self.completed:
            return
        self.completed[key] = job_to_dict(job)
        self.quarantined.pop(key, None)
        self._append({"format": CHECKPOINT_FORMAT, "kind": "completed",
                      "key": key, "job": job_to_dict(job)})

    def mark_quarantined(self, key: str, job, attempts: List[dict]) -> None:
        record = {"format": CHECKPOINT_FORMAT, "kind": "quarantined",
                  "key": key, "job": job_to_dict(job), "attempts": attempts}
        self.quarantined[key] = record
        self._append(record)


def write_quarantine_file(path: os.PathLike | str,
                          records: List[dict]) -> Optional[Path]:
    """Write the replayable ``failed-jobs.json`` ledger (best effort).

    ``records`` are supervision quarantine records: ``{"job": {...},
    "key": ..., "attempts": [...]}``.  Returns the path written, or None
    when the location is unusable.
    """
    path = Path(path)
    payload = {
        "format": QUARANTINE_FORMAT,
        "jobs": records,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    except OSError:
        return None
    return path


def load_quarantine_file(path: os.PathLike | str) -> List[dict]:
    """Load a ``failed-jobs.json`` ledger; [] when absent or unreadable."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    if not isinstance(data, dict) or data.get("format") != QUARANTINE_FORMAT:
        return []
    jobs = data.get("jobs")
    return jobs if isinstance(jobs, list) else []
