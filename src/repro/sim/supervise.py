"""Per-job supervision for the sweep engine: deadlines, retry, degrade,
quarantine, pool respawn.

The engine used to drain ``pool.imap`` bare: one worker segfault, one hung
job or one raised exception killed (or wedged) the whole campaign with no
partial results.  This module supervises every job attempt the way a routed
network survives link failure — detect, reroute, reconverge:

* **Deadlines** — each in-flight job gets a wall-clock deadline scaled by
  its trace length (:meth:`SupervisorPolicy.deadline_for`); an expired job
  is treated as hung, the pool is respawned, and innocent in-flight jobs
  are resubmitted without burning one of their attempts.
* **Crash attribution** — workers write a tiny *claim* file (pid → job
  token) before touching a job; when a worker process dies (SIGKILL,
  segfault, ``os._exit``), the dead pid's claim names the victim job, which
  is charged an attempt — co-located innocents are requeued for free, so a
  crash-looping job converges to quarantine without dragging its batch
  neighbours with it.
* **Retry with backoff** — failed/timed-out jobs are retried up to
  ``max_attempts`` with exponential backoff between attempts.
* **Graceful degradation** — a job whose attempt failed under the compiled
  backend is re-run with the pure-python backend (``degrade``); backends
  are bit-identical by contract, so the result is unchanged and cacheable —
  the degradation is recorded in the supervision report and CLI footer, not
  in the result (stamping it there would break the bit-identity the whole
  cache rests on).
* **Quarantine** — a job that fails every attempt is recorded (with its
  full attempt history) instead of aborting the campaign; the engine writes
  the replayable ``failed-jobs.json`` ledger from these records.
* **Pool respawn** — a dead or wedged pool is terminated and respawned
  (bounded by ``max_pool_respawns``); ``_ensure_pool``'s cached pool can no
  longer be wedged by a ``BrokenPipeError`` or a killed worker.

Everything here is *scheduling*: which process runs a job, when, and how
often it is retried.  None of it touches simulation semantics — a
supervised sweep's surviving results are bit-identical to a fault-free
serial run (pinned by ``tests/test_supervision.py``).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faultkit import FaultPlan, maybe_inject
from repro.sim.hotstate import detected_backend


def _now() -> float:
    """Wall-clock for deadlines and backoff — scheduling only, never
    simulation semantics (results stay bit-identical under any timing)."""
    return time.monotonic()  # lint: disable=REP001(supervision deadlines and backoff are wall-clock scheduling decisions; they choose when and where a job runs, never what it computes)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/deadline/degradation policy for supervised job execution."""

    #: total attempts per job before quarantine (1 = no retries)
    max_attempts: int = 3
    #: backoff before retry r is ``backoff_base * backoff_factor**(r-1)``
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    #: per-job wall-clock deadline: ``timeout_base + timeout_per_kuop``
    #: seconds per thousand trace uops (generation + simulation + margin)
    timeout_base: float = 120.0
    timeout_per_kuop: float = 0.05
    #: re-run a job that failed under the compiled backend with the pure
    #: python backend (bit-identical by contract; recorded in the report)
    degrade: bool = True
    #: re-read and digest-check every cache entry written by a supervised
    #: sweep, rewriting entries that fail to verify (heals same-run
    #: corruption so a resumed campaign starts from a clean cache)
    verify_stores: bool = True
    #: pool respawns allowed per batch before giving up (safety valve —
    #: a respawn storm means something is wrong beyond one bad job)
    max_pool_respawns: int = 12
    #: parallel poll cadence, seconds
    poll_interval: float = 0.02

    def deadline_for(self, job) -> float:
        return self.timeout_base + (job.trace_uops / 1000.0) * self.timeout_per_kuop

    def backoff_for(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1-based)."""
        return self.backoff_base * (self.backoff_factor ** max(0, retry_index - 1))

    def with_plan(self, plan: Optional[FaultPlan]) -> "SupervisorPolicy":
        """Apply a fault plan's supervision overrides (chaos scenarios)."""
        if plan is None:
            return self
        changes = {}
        if plan.deadline is not None:
            changes["timeout_base"] = plan.deadline
        if plan.backoff is not None:
            changes["backoff_base"] = plan.backoff
        if plan.attempts is not None:
            changes["max_attempts"] = plan.attempts
        if not changes:
            return self
        from dataclasses import replace

        return replace(self, **changes)


@dataclass
class AttemptFailure:
    """One failed attempt of one job (quarantine records carry these)."""

    attempt: int
    #: ``timeout`` | ``worker-death`` | ``error``
    reason: str
    error: str = ""
    #: the backend this attempt ran ("python"/"compiled")
    backend: str = ""

    def to_dict(self) -> dict:
        return {"attempt": self.attempt, "reason": self.reason,
                "error": self.error, "backend": self.backend}


@dataclass
class SweepReport:
    """Supervision outcome, accumulated across an engine's batches.

    The CLI footer prints :meth:`summary_line`; tests and the chaos job
    read the fields directly.  ``quarantined`` records are the replayable
    ``failed-jobs.json`` payload.
    """

    computed: int = 0
    cache_hits: int = 0
    #: cache-served jobs whose completion was already checkpointed — the
    #: explicit "resumed, touching zero already-completed jobs" count
    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_errors: int = 0
    worker_deaths: int = 0
    pool_respawns: int = 0
    #: job tokens re-run on the pure-python backend after a compiled failure
    degraded: List[str] = field(default_factory=list)
    #: quarantine records: {"job": {...}, "key": ..., "attempts": [...]}
    quarantined: List[dict] = field(default_factory=list)
    #: verify-after-write repairs (entry failed its digest check re-read)
    store_repairs: int = 0
    #: injected faults that actually fired, by kind (parent-side count)
    faults_fired: Dict[str, int] = field(default_factory=dict)

    def merge_faults(self, fired: Dict[str, int]) -> None:
        for kind, count in fired.items():
            self.faults_fired[kind] = max(self.faults_fired.get(kind, 0), count)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def summary_line(self) -> Optional[str]:
        """Footer fragment, or None when nothing supervision-worthy happened."""
        interesting = (self.retries or self.timeouts or self.worker_deaths
                       or self.pool_respawns or self.degraded
                       or self.quarantined or self.resumed
                       or self.store_repairs or self.faults_fired)
        if not interesting:
            return None
        parts = [f"supervision: computed={self.computed}"]
        if self.resumed:
            parts.append(f"resumed={self.resumed}")
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.timeouts:
            parts.append(f"timeouts={self.timeouts}")
        if self.worker_deaths:
            parts.append(f"worker-deaths={self.worker_deaths}")
        if self.pool_respawns:
            parts.append(f"pool-respawns={self.pool_respawns}")
        if self.degraded:
            parts.append(f"degraded={len(self.degraded)} "
                         f"({', '.join(sorted(set(self.degraded))[:4])})")
        if self.store_repairs:
            parts.append(f"store-repairs={self.store_repairs}")
        if self.quarantined:
            tokens = sorted(f"{r['job']['benchmark']}:{r['job']['policy']}"
                            for r in self.quarantined)
            parts.append(f"quarantined={len(self.quarantined)} "
                         f"({', '.join(tokens[:4])})")
        if self.faults_fired:
            fired = " ".join(f"{kind}={count}" for kind, count
                             in sorted(self.faults_fired.items()))
            parts.append(f"faults[{fired}]")
        return " ".join(parts)


@dataclass
class _JobState:
    """Supervisor-side lifecycle of one pending job."""

    job: object
    token: str
    failures: List[AttemptFailure] = field(default_factory=list)
    #: backend override for the next attempt (None = inherit)
    backend: Optional[str] = None
    #: earliest monotonic time the next attempt may be submitted
    ready_at: float = 0.0

    @property
    def attempt(self) -> int:
        return len(self.failures)


class JobSupervisor:
    """Drives one batch of pending jobs to completion or quarantine.

    The engine supplies execution primitives (task building, pool access,
    serial execution, claim-file scratch space); the supervisor owns the
    scheduling loop.  ``on_complete``/``on_quarantine`` callbacks run in
    the parent as each job settles, so caching and checkpointing are
    incremental — an interrupt loses only in-flight work.
    """

    def __init__(self, engine, policy: SupervisorPolicy,
                 plan: Optional[FaultPlan], report: SweepReport) -> None:
        self.engine = engine
        self.policy = policy
        self.plan = plan
        self.report = report

    # -------------------------------------------------------------- shared
    def _effective_backend(self, state: _JobState) -> str:
        return state.backend or detected_backend()

    def _note_failure(self, state: _JobState, reason: str, error: str) -> bool:
        """Record a failed attempt; True when the job may be retried."""
        backend = self._effective_backend(state)
        state.failures.append(AttemptFailure(
            attempt=state.attempt, reason=reason, error=error,
            backend=backend))
        if reason == "timeout":
            self.report.timeouts += 1
        elif reason == "worker-death":
            self.report.worker_deaths += 1
        else:
            self.report.worker_errors += 1
        if len(state.failures) >= self.policy.max_attempts:
            return False
        self.report.retries += 1
        if self.policy.degrade and backend == "compiled":
            # The degradation ladder: a failure under the compiled backend
            # is retried on the pure-python backend (bit-identical results,
            # so the cache entry is exactly what the fast path would have
            # written).  Recorded once per job token.
            state.backend = "python"
            if state.token not in self.report.degraded:
                self.report.degraded.append(state.token)
        state.ready_at = _now() + self.policy.backoff_for(len(state.failures))
        return True

    def _quarantine(self, state: _JobState, on_quarantine) -> None:
        on_quarantine(state.job, state.failures)

    # -------------------------------------------------------------- serial
    def run_serial(self, pending, token_for, on_complete, on_quarantine) -> None:
        """In-process supervised execution (jobs == 1, or a single job).

        No deadline protection exists in-process (nothing could interrupt a
        hung simulation from inside the same thread); crash/hang faults
        degrade to raised exceptions (see :func:`repro.faultkit.maybe_inject`).
        """
        for job in pending:
            state = _JobState(job=job, token=token_for(job))
            while True:
                try:
                    maybe_inject(self.plan, state.token, state.attempt,
                                 state.backend, in_worker=False)
                    result = self.engine._execute_supervised(job, state.backend)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 — any failure retries
                    retry = self._note_failure(
                        state, "error", f"{type(exc).__name__}: {exc}")
                    if not retry:
                        self._quarantine(state, on_quarantine)
                        break
                    delay = state.ready_at - _now()
                    if delay > 0:
                        time.sleep(delay)
                    continue
                on_complete(job, result)
                break

    # ------------------------------------------------------------ parallel
    def _pool_pids(self, pool) -> frozenset:
        return frozenset(proc.pid for proc in getattr(pool, "_pool", ())
                         if proc.exitcode is None)

    def _respawn(self, why: str):
        """Terminate and respawn the engine pool (bounded per batch)."""
        self.report.pool_respawns += 1
        if self.report.pool_respawns > self.policy.max_pool_respawns:
            raise RuntimeError(
                f"worker pool respawned more than "
                f"{self.policy.max_pool_respawns} times ({why}); "
                f"giving up on the batch")
        return self.engine._respawn_pool()

    def _requeue_inflight(self, inflight: Dict, queue: List[_JobState],
                          charged_tokens: set, reason: str,
                          on_quarantine) -> None:
        """Return in-flight jobs to the queue after a pool respawn.

        Jobs whose token is in ``charged_tokens`` are charged a failed
        attempt (and may quarantine); the rest resubmit for free — they
        were innocent bystanders of the respawn.
        """
        for state, _async, _deadline in inflight.values():
            if state.token in charged_tokens:
                if self._note_failure(state, reason,
                                      f"pool respawn attributed to this job "
                                      f"({reason})"):
                    queue.append(state)
                else:
                    self._quarantine(state, on_quarantine)
            else:
                queue.append(state)
        inflight.clear()

    def run_parallel(self, pending, token_for, on_complete,
                     on_quarantine) -> None:
        """Supervised pool execution of a batch of jobs."""
        queue: List[_JobState] = [
            _JobState(job=job, token=token_for(job)) for job in pending]
        inflight: Dict[object, Tuple[_JobState, object, float]] = {}
        pool = self.engine._ensure_pool()
        pids = self._pool_pids(pool)
        workers = self.engine.jobs

        while queue or inflight:
            now = _now()
            # ---- submit: keep at most one task in flight per worker, so a
            # deadline measured from submission approximates run time and a
            # respawn cancels as few innocents as possible.
            while queue and len(inflight) < workers:
                index = next((i for i, st in enumerate(queue)
                              if st.ready_at <= now), None)
                if index is None:
                    break
                state = queue.pop(index)
                task = self.engine._task_blob(state.job, state.backend,
                                              state.attempt, state.token)
                try:
                    handle = pool.apply_async(_worker_entry, (task,))
                except Exception as exc:  # noqa: BLE001 — broken pool
                    pool = self._respawn(f"submit failed: {exc}")
                    pids = self._pool_pids(pool)
                    queue.append(state)
                    continue
                inflight[state.job] = (
                    state, handle, now + self.policy.deadline_for(state.job))

            progressed = False
            # ---- collect ready results
            for job, (state, handle, _deadline) in list(inflight.items()):
                if not handle.ready():
                    continue
                progressed = True
                del inflight[job]
                try:
                    outcome = pickle.loads(handle.get())
                except Exception as exc:  # noqa: BLE001 — transport failure
                    if self._note_failure(state, "error",
                                          f"pool transport: "
                                          f"{type(exc).__name__}: {exc}"):
                        queue.append(state)
                    else:
                        self._quarantine(state, on_quarantine)
                    continue
                if outcome[0] == "ok":
                    on_complete(job, outcome[1])
                else:
                    if self._note_failure(state, "error", outcome[1]):
                        queue.append(state)
                    else:
                        self._quarantine(state, on_quarantine)

            # ---- worker-death detection: a changed pid set means at least
            # one worker died (SIGKILL / segfault / os._exit).  The dead
            # pid's claim file names the job it was running, which is
            # charged the attempt; everyone else resubmits for free.
            current = self._pool_pids(pool)
            if current != pids:
                if inflight:
                    dead = pids - current
                    claimed = self.engine._read_claims(dead)
                    charged = {token for token in claimed.values()
                               if any(st.token == token
                                      for st, _a, _d in inflight.values())}
                    if not charged:
                        # Unattributed death with work in flight (killed
                        # before the claim write landed): charge everyone
                        # rather than loop forever on an invisible killer.
                        charged = {st.token
                                   for st, _a, _d in inflight.values()}
                    pool = self._respawn("worker died")
                    self.engine._clear_claims()
                    self._requeue_inflight(inflight, queue, charged,
                                           "worker-death", on_quarantine)
                pids = self._pool_pids(pool)
                progressed = True

            # ---- deadlines: an expired job counts as hung; the pool is
            # respawned (the hung worker would otherwise hold its slot
            # forever) and innocents resubmit for free.
            now = _now()
            expired = {state.token
                       for state, _handle, deadline in inflight.values()
                       if now > deadline}
            if expired:
                pool = self._respawn("job deadline expired")
                self.engine._clear_claims()
                self._requeue_inflight(inflight, queue, expired, "timeout",
                                       on_quarantine)
                pids = self._pool_pids(pool)
                progressed = True

            if not progressed and (queue or inflight):
                time.sleep(self.policy.poll_interval)


def _worker_entry(task: bytes) -> bytes:
    """Thin pool entry point; the engine owns the actual worker body.

    Lives here (not in the engine) so the supervisor module is the single
    place that defines the parent<->worker protocol version; delegates
    immediately to :func:`repro.sim.engine._supervised_worker`.
    """
    from repro.sim.engine import _supervised_worker

    return _supervised_worker(task)
