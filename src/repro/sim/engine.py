"""Job-based parallel sweep engine.

The paper's results are all *sweeps* — benchmarks x steering policies (x
config ablations).  This module turns a sweep into a list of self-contained
:class:`SweepJob` records and executes them either serially in-process or
fanned out over a ``multiprocessing`` pool, with an optional content-addressed
on-disk :class:`~repro.sim.cache.ResultCache` in front.

Determinism
-----------
A job carries everything that determines its result: benchmark profile, trace
length, an explicit per-job seed (a pure function of the sweep seed and the
benchmark — no global RNG state is consulted), slicing mode and policy name.
Trace generation is seeded from the job alone and the simulator itself is
deterministic, so a job computes the bit-identical ``SimulationResult``
whether it runs in the parent process, in a pool worker, or is replayed from
the cache; ``tests/test_engine.py`` pins this property.

Results are keyed and re-assembled by job (not by completion order), so the
parallel path produces identical sweeps regardless of worker scheduling.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, baseline_config, helper_cluster_config
from repro.core.steering import make_policy, policy_spec
from repro.faultkit import FaultInjector, FaultPlan, maybe_inject
from repro.power.wattch import PowerConfig
from repro.sim.cache import ResultCache, canonical_text, result_key
from repro.sim.checkpoint import (CampaignCheckpoint, job_to_dict,
                                  write_quarantine_file)
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import simulate
from repro.sim.supervise import JobSupervisor, SupervisorPolicy, SweepReport
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.slicing import select_simulation_slice
from repro.trace.store import TraceStore, profile_key_text, trace_key
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace

#: Upper bound on the per-process memoised trace set (each full-length trace
#: is a few MB of MicroOps; a sweep touches each benchmark's trace many times
#: but only a handful of distinct traces at once).
_TRACE_MEMO_LIMIT = 32

_trace_memo: Dict[Tuple[str, int, int, bool], Trace] = {}

#: Trace store bound to this process when it is a pool worker (set by
#: :func:`_pool_init`); lets spawned workers re-hydrate parent-generated
#: traces from disk instead of re-deriving them.
_worker_store: Optional[TraceStore] = None

#: Fault plan bound to this process when it is a pool worker (set by
#: :func:`_pool_init`); None outside chaos scenarios.
_worker_plan: Optional[FaultPlan] = None

#: Claim directory bound to this process when it is a pool worker —
#: ``<trace-store>/claims/<pid>`` names the job a worker is executing so
#: the supervisor can attribute a worker death (SIGKILL, segfault) to the
#: job that caused it and charge only that job an attempt.
_worker_claims_dir: Optional[str] = None


def _pool_init(store_dir: Optional[str], plan_text: str = "") -> None:
    """Pool-worker initializer: bind the trace store and fault plan."""
    global _worker_store, _worker_plan, _worker_claims_dir
    _worker_store = TraceStore(store_dir) if store_dir else None
    _worker_plan = FaultPlan.parse(plan_text) if plan_text else None
    _worker_claims_dir = (str(Path(store_dir) / "claims")
                          if store_dir else None)


@dataclass(frozen=True)
class SweepJob:
    """One (benchmark, policy, machine) simulation of a sweep.

    ``policy == "baseline"`` runs the monolithic baseline machine; every
    other name is resolved through the policy registry (registered
    :class:`~repro.core.steering.PolicySpec` names or ad-hoc ``"+"`` scheme
    combos such as ``"n888+cr"``).  ``config`` overrides
    the engine's machine configuration for this job — that is how a
    design-space exploration fans out over topologies: one job per
    (topology, benchmark) with the topology carried in the job itself, so
    workers and the cache key see exactly the machine the job simulates.
    ``power`` likewise overrides the engine's energy-coefficient
    configuration for this job (baseline jobs included — ED² comparisons
    need baseline energies under the same coefficients).
    """

    benchmark: str
    policy: str
    trace_uops: int
    seed: int
    use_slicing: bool = False
    config: Optional[MachineConfig] = None
    power: Optional[PowerConfig] = None


def job_seed(sweep_seed: int, benchmark: str) -> int:
    """Deterministic per-job seed.

    The historical serial runner seeds every benchmark's trace generator with
    the sweep seed directly, and the sweep's published numbers depend on
    that, so the mapping is the identity.  It lives in one named function so
    the seeding policy is explicit, shared by the serial and parallel paths,
    and changeable in exactly one place (with a
    :data:`~repro.sim.cache.SIMULATOR_VERSION` bump).
    """
    del benchmark  # deliberately not folded in; see docstring
    return sweep_seed


def trace_for_job(job: SweepJob, profile: Optional[BenchmarkProfile] = None,
                  store: Optional[TraceStore] = None) -> Trace:
    """Generate (or reuse) the trace a job runs on.

    Three layers, cheapest first: the per-process memo (keyed by benchmark,
    length, seed, slicing — within a sweep every policy of a benchmark
    shares one trace), then the content-addressed on-disk ``store`` (one
    digest-checked binary file per trace, shared across processes and across
    sweeps on a warm directory), and only then generation — which also
    populates both layers, so an entire sweep performs exactly one
    generation per distinct trace.
    """
    if profile is None:
        profile = get_profile(job.benchmark)
    # The profile content is part of the key so a caller-supplied profile that
    # shadows a registered name cannot collide with it.
    key = (profile_key_text(profile), job.trace_uops, job.seed,
           job.use_slicing)
    trace = _trace_memo.get(key)
    if trace is not None:
        # The memo is process-global while stores are per-engine: a trace
        # another engine generated must still reach *this* store, or a
        # spawn-started worker of this engine would regenerate it.  The
        # store's ``seen`` set keeps the key hash + path probe to once per
        # distinct trace rather than once per job.
        if store is not None and store.enabled and key not in store.seen:
            store_key = trace_key(profile, job.trace_uops, job.seed,
                                  job.use_slicing)
            if not store.path_for(store_key).exists():
                store.store(store_key, trace)
            store.seen.add(key)
        return trace
    store_key = (trace_key(profile, job.trace_uops, job.seed, job.use_slicing)
                 if store is not None else None)
    if store_key is not None:
        trace = store.load(store_key)
    if trace is None:
        if job.use_slicing:
            # Generate a longer run and keep the paper's simulation slice
            # (§3.1: split into 10 slices, start from the fourth).
            full = generate_trace(profile, job.trace_uops * 10, seed=job.seed)
            trace = select_simulation_slice(full)
        else:
            trace = generate_trace(profile, job.trace_uops, seed=job.seed)
        if store_key is not None:
            store.store(store_key, trace)
    if store is not None:
        store.seen.add(key)
    if len(_trace_memo) >= _TRACE_MEMO_LIMIT:
        _trace_memo.pop(next(iter(_trace_memo)))
    _trace_memo[key] = trace
    return trace


def execute_job(job: SweepJob, config: MachineConfig,
                profile: Optional[BenchmarkProfile] = None,
                spec=None, power: Optional[PowerConfig] = None,
                store: Optional[TraceStore] = None,
                backend: Optional[str] = None) -> SimulationResult:
    """Run one job to completion (trace generation included).

    The job's own ``config`` wins over the engine-supplied one; the baseline
    policy always runs the monolithic baseline machine (the paper's
    methodology normalises every topology to the same baseline).  ``spec``
    is the job's resolved :class:`~repro.core.steering.PolicySpec`; when
    omitted, the name is resolved against this process's registry.
    ``power`` supplies the energy coefficients (job-carried config wins);
    ``store`` is the cross-job trace store consulted before generating.
    ``backend`` forces the hot-state backend for this attempt (bit-identical
    by contract; the supervisor uses it to degrade compiled -> python).
    """
    trace = trace_for_job(job, profile, store)
    policy = make_policy(spec if spec is not None else job.policy)
    power = job.power or power
    if job.policy == "baseline":
        return simulate(trace, config=baseline_config(), policy=policy,
                        power=power, backend=backend)
    return simulate(trace, config=job.config or config, policy=policy,
                    power=power, backend=backend)


def _claim_path() -> Optional[Path]:
    return (Path(_worker_claims_dir) / str(os.getpid())
            if _worker_claims_dir else None)


def _write_claim(token: str, attempt: int) -> None:
    """Record which job this worker is executing (crash attribution).

    Written *before* fault injection and execution; removed on any outcome
    the worker survives to report.  A worker that dies mid-job (SIGKILL,
    segfault) leaves its claim behind, and the dead pid's claim file is
    exactly how the supervisor knows which in-flight job to charge.
    """
    path = _claim_path()
    if path is None:
        return
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"token": token, "attempt": attempt}),
                        encoding="utf-8")
    except OSError:
        pass  # attribution degrades gracefully; supervision still works


def _remove_claim() -> None:
    path = _claim_path()
    if path is None:
        return
    try:
        path.unlink()
    except OSError:
        pass


def _supervised_worker(task: bytes) -> bytes:
    """Pool entry point; pickled tuples keep the Pool API version-stable.

    The parent resolves each job's policy name to its PolicySpec and ships
    the spec in the task, so policies registered at runtime in the parent
    stay runnable even under spawn/forkserver start methods, where the
    child's freshly-imported registry only holds the built-in specs.
    Traces come from the worker's memo (inherited on fork), the trace store
    bound by :func:`_pool_init`, or are generated as a last resort.

    The worker never lets an exception escape to the pool machinery: any
    failure is reported as an ``("error", message)`` outcome so the parent
    supervisor — not ``multiprocessing``'s error plumbing — owns retry,
    degradation and quarantine decisions.
    """
    job, config, profile, spec, power, backend, attempt, token = (
        pickle.loads(task))
    _write_claim(token, attempt)
    try:
        maybe_inject(_worker_plan, token, attempt, backend, in_worker=True)
        result = execute_job(job, config, profile, spec=spec, power=power,
                             store=_worker_store, backend=backend)
        outcome: Tuple = ("ok", result)
    except Exception as exc:  # noqa: BLE001 — every failure is reportable
        outcome = ("error", f"{type(exc).__name__}: {exc}")
    _remove_claim()
    return pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)


def available_cpus() -> int:
    """CPUs this process may actually use.

    Prefers ``os.process_cpu_count`` (Python 3.13+, affinity-aware) and
    falls back to ``os.cpu_count``.
    """
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    return max(1, counter() or 1)


def default_jobs() -> int:
    """Worker count used when the caller asks for ``jobs=0`` ("auto")."""
    return available_cpus()


def _stop_pool(pool, grace: float = 5.0) -> None:
    """Tear a (possibly wedged) pool down without blocking the parent.

    A SIGKILLed worker can die *holding the task queue's reader lock*, and
    ``Pool.terminate`` drains that queue under the same lock — calling it
    directly on such a pool wedges the parent forever.  So: kill the worker
    processes first (no child outlives the pool), then run terminate+join
    on a daemon thread with a grace period; a pool that still refuses to
    die is abandoned — its handler threads are daemonic — never waited on.
    """
    import threading

    for proc in list(getattr(pool, "_pool", ()) or ()):
        try:
            if proc.exitcode is None:
                proc.kill()
        except Exception:  # noqa: BLE001 — racing a dying worker is fine
            pass

    def _teardown() -> None:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # noqa: BLE001 — a broken pool may refuse both
            pass

    thread = threading.Thread(target=_teardown, daemon=True,
                              name="repro-pool-teardown")
    thread.start()
    thread.join(grace)


def _terminate_pool(pool) -> None:
    """Engine-finalizer hook: tear the warm pool down without blocking."""
    _stop_pool(pool, grace=1.0)


class SweepEngine:
    """Executes sweeps of :class:`SweepJob` records, optionally in parallel.

    Parameters
    ----------
    config:
        Machine configuration for the policy runs (the baseline policy always
        runs on :func:`baseline_config`, mirroring the paper's methodology).
    jobs:
        Worker processes; 1 = serial in-process, 0 = one per CPU.  Requests
        beyond the host's usable CPU count are clamped to it (worker
        processes are CPU-bound, so oversubscription only adds scheduling
        overhead) unless ``allow_oversubscribe`` is set; a clamp is
        recorded in :attr:`jobs_clamped_from` and surfaces in the CLI's
        footer line.
    allow_oversubscribe:
        Run exactly the requested number of workers even past the CPU
        count (measurement / debugging escape hatch).
    cache:
        Optional :class:`ResultCache` consulted before and filled after
        every job.
    power:
        Energy-coefficient configuration applied to every job (including
        baselines); jobs may carry their own override.  Defaults to the
        standard :class:`~repro.power.wattch.PowerConfig`.
    trace_store_dir:
        Directory of the cross-job trace store.  ``None`` (the default)
        uses a private temporary directory that lives as long as the engine
        — still worth having, because spawned pool workers re-hydrate
        parent-generated traces from it instead of re-deriving them.  Point
        it at a persistent directory (the CLI uses ``<cache-dir>/traces``)
        and repeated sweeps skip generation entirely.
    supervisor:
        :class:`~repro.sim.supervise.SupervisorPolicy` governing per-job
        deadlines, retries/backoff, degradation and pool respawn; the
        default policy retries twice with exponential backoff.  A fault
        plan's supervision overrides (``deadline=``, ``attempts=``, …) are
        applied on top.
    faults:
        :class:`~repro.faultkit.FaultPlan` to inject deterministic faults
        (chaos testing); ``None`` reads ``REPRO_FAULTS`` from the
        environment, which is empty outside chaos scenarios.
    checkpoint_path:
        Append-only campaign checkpoint (JSONL).  Completed job keys are
        recorded as they land, so an interrupted campaign resumes from its
        completed results (``resumed=N`` in the supervision footer) — the
        CLI uses ``<cache-dir>/checkpoint.jsonl``.
    quarantine_path:
        Where to write the replayable ``failed-jobs.json`` ledger when any
        job exhausts its attempts.
    """

    def __init__(self, config: Optional[MachineConfig] = None, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 power: Optional[PowerConfig] = None,
                 trace_store_dir: Optional[str] = None,
                 allow_oversubscribe: bool = False,
                 supervisor: Optional[SupervisorPolicy] = None,
                 faults: Optional[FaultPlan] = None,
                 checkpoint_path: Optional[str] = None,
                 quarantine_path: Optional[str] = None) -> None:
        self.config = config or helper_cluster_config()
        requested = default_jobs() if jobs == 0 else max(1, jobs)
        #: the originally requested worker count when the engine clamped it
        #: to the host's CPU count, else None
        self.jobs_clamped_from: Optional[int] = None
        cpus = available_cpus()
        if requested > cpus and not allow_oversubscribe:
            self.jobs_clamped_from = requested
            requested = cpus
        self.jobs = requested
        self.cache = cache
        self.power = power or PowerConfig()
        self._profiles: Dict[str, BenchmarkProfile] = {}
        #: finalizer that removes the engine-private temp trace directory;
        #: None when the caller supplied (and therefore owns) the directory
        self._store_cleanup: Optional[weakref.finalize] = None
        if trace_store_dir is None:
            trace_store_dir = tempfile.mkdtemp(prefix="repro-traces-")
            self._store_cleanup = weakref.finalize(
                self, shutil.rmtree, trace_store_dir, ignore_errors=True)
        self.trace_store = TraceStore(trace_store_dir)
        #: persistent warm worker pool, created lazily on the first parallel
        #: batch and reused across sweeps (pool spin-up and re-import are a
        #: real cost when every figure of a benchmark session runs a sweep)
        self._pool = None
        self._pool_finalizer: Optional[weakref.finalize] = None
        # ---- supervision / fault-tolerance state -------------------------
        if faults is None:
            faults = FaultPlan.from_env()
        #: active fault plan (None outside chaos scenarios)
        self.faults = faults
        #: retry/deadline policy, with the plan's overrides applied
        self.supervisor_policy = (supervisor or SupervisorPolicy()
                                  ).with_plan(faults)
        #: parent-side artifact/interrupt injector (None without a plan)
        self.injector = FaultInjector(faults) if faults is not None else None
        #: supervision outcome, accumulated across this engine's batches
        self.report = SweepReport()
        #: campaign checkpoint (None = not checkpointing)
        self.checkpoint = (CampaignCheckpoint(checkpoint_path)
                           if checkpoint_path else None)
        #: where the quarantine ledger is written (None = nowhere)
        self.quarantine_path = (Path(quarantine_path)
                                if quarantine_path else None)

    # ------------------------------------------------------------------ pool
    def _ensure_pool(self):
        """The engine's warm worker pool, created on first use."""
        if self._pool is None:
            import multiprocessing

            plan_text = self.faults.to_text() if self.faults else ""
            self._pool = multiprocessing.Pool(
                processes=self.jobs, initializer=_pool_init,
                initargs=(str(self.trace_store.store_dir), plan_text))
            self._pool_finalizer = weakref.finalize(
                self, _terminate_pool, self._pool)
        return self._pool

    def _respawn_pool(self):
        """Terminate the cached pool and spawn a fresh one.

        This is how a dead worker (SIGKILL/segfault) or a wedged pool
        (``BrokenPipeError`` on submit) is recovered without wedging
        ``_ensure_pool``'s cache: the broken pool is dropped wholesale and
        the next ``_ensure_pool`` call builds a replacement.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            _stop_pool(pool)
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        return self._ensure_pool()

    # ---------------------------------------------------------------- claims
    @property
    def claims_dir(self) -> Path:
        """Scratch directory of worker claim files (crash attribution)."""
        return Path(self.trace_store.store_dir) / "claims"

    def _read_claims(self, pids) -> Dict[int, str]:
        """Job tokens claimed by the given (dead) worker pids."""
        claims: Dict[int, str] = {}
        for pid in pids:
            try:
                record = json.loads(
                    (self.claims_dir / str(pid)).read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            token = record.get("token") if isinstance(record, dict) else None
            if token:
                claims[pid] = token
        return claims

    def _clear_claims(self) -> None:
        """Drop stale claim files (after a respawn killed all workers)."""
        try:
            entries = list(self.claims_dir.iterdir())
        except OSError:
            return
        for path in entries:
            try:
                path.unlink()
            except OSError:
                pass

    def close(self) -> None:
        """Release the engine's pooled resources (idempotent).

        Tears down the warm worker pool and removes the engine-private
        temporary trace-store directory (when no explicit
        ``trace_store_dir`` was given — a caller-supplied directory is the
        caller's to keep).  The same cleanups are registered as
        ``weakref.finalize`` callbacks (which also run at interpreter
        exit), so an engine that is never closed still cannot leak them;
        ``close()`` — or the context-manager form — releases them eagerly
        and deterministically, exceptions included.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            _stop_pool(pool)
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        self._clear_claims()
        if self._store_cleanup is not None:
            cleanup, self._store_cleanup = self._store_cleanup, None
            cleanup()  # a dead finalizer is a no-op, so this is idempotent

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ keys
    def key_for(self, job: SweepJob) -> str:
        """Content-address of a job's result.

        The machine configuration contributes through its canonical
        ``to_key_dict()`` (topology included), so any config field change —
        not just the handful of fields a sweep happens to vary — changes the
        key and can never serve a stale cached result.  The policy likewise
        contributes through ``PolicySpec.to_key_dict()`` (name, scheme set,
        cluster selector and selector knobs), so two registered policies
        that differ only in selector or knobs can never alias an entry.
        The power configuration contributes through
        ``PowerConfig.to_key_dict()``: results carry their energy figures,
        so changed coefficients must change the key too.  The profile
        contributes the same way (``BenchmarkProfile.to_key_dict()``, every
        distribution knob), replacing the earlier ``repr``-based keying
        whose coverage was implicit.
        """
        if job.policy == "baseline":
            config = baseline_config()
        else:
            config = job.config or self.config
        profile = self._profile_for(job.benchmark)
        power = job.power or self.power
        return result_key(canonical_text(profile.to_key_dict()),
                          job.trace_uops, job.seed, job.use_slicing,
                          canonical_text(config.to_key_dict()),
                          canonical_text(policy_spec(job.policy).to_key_dict()),
                          canonical_text(power.to_key_dict()))

    def register_profile(self, profile: BenchmarkProfile) -> None:
        """Make a (possibly unregistered) profile resolvable by name."""
        self._profiles[profile.name] = profile

    def _profile_for(self, benchmark: str) -> BenchmarkProfile:
        profile = self._profiles.get(benchmark)
        if profile is None:
            profile = get_profile(benchmark)
            self._profiles[benchmark] = profile
        return profile

    # ------------------------------------------------------------------- run
    def token_for(self, job: SweepJob, key: Optional[str] = None) -> str:
        """Human-legible job identity for supervision and fault decisions.

        The 12-hex-digit result-key prefix distinguishes topology-grid
        points that share a benchmark and policy (a grid fans out over
        job-carried configs, which the benchmark:policy pair alone cannot
        see).
        """
        prefix = f"{job.benchmark}:{job.policy}"
        return f"{prefix}:{key[:12]}" if key else prefix

    def run_jobs(self, sweep_jobs: Sequence[SweepJob],
                 use_cache: bool = True) -> Dict[SweepJob, SimulationResult]:
        """Execute a batch of jobs and return ``{job: result}``.

        Cached results are served first; the remainder runs under the
        :class:`~repro.sim.supervise.JobSupervisor` — serially in-process
        or fanned out over the warm pool — with per-job deadlines, retry,
        degradation and quarantine.  A quarantined job is simply absent
        from the returned mapping (its record lands in
        ``self.report.quarantined`` and the quarantine ledger); the
        returned mapping is keyed (and therefore ordered) by the input job
        list, independent of worker completion order.
        """
        results: Dict[SweepJob, SimulationResult] = {}
        pending: List[SweepJob] = []
        keys: Dict[SweepJob, str] = {}
        seen: set = set()
        need_keys = (self.cache is not None or self.checkpoint is not None
                     or self.faults is not None)
        for job in sweep_jobs:
            if job in seen:
                continue  # duplicate job in the batch
            seen.add(job)
            if need_keys:
                keys[job] = self.key_for(job)
            if self.cache is not None and use_cache:
                key = keys[job]
                cached = self.cache.load(key)
                if cached is not None:
                    results[job] = cached
                    self.report.cache_hits += 1
                    if self.checkpoint is not None:
                        if key in self.checkpoint.completed:
                            # The explicit resume contract: this job was
                            # completed by an earlier (interrupted) run and
                            # is served without touching a worker.
                            self.report.resumed += 1
                        else:
                            self.checkpoint.mark_completed(key, job)
                    continue
            pending.append(job)

        if pending:
            self._run_supervised(pending, keys, results)
        return {job: results[job] for job in sweep_jobs if job in results}

    def _run_supervised(self, pending: Sequence[SweepJob],
                        keys: Dict[SweepJob, str],
                        results: Dict[SweepJob, SimulationResult]) -> None:
        """Drive ``pending`` through the supervisor into ``results``.

        Completion is incremental: each job is cached, verified and
        checkpointed from the parent as it settles, so an interruption
        (KeyboardInterrupt included) loses only in-flight work and the
        next invocation resumes from everything that finished.
        """

        def token_for(job: SweepJob) -> str:
            return self.token_for(job, keys.get(job))

        def key_of(job: SweepJob) -> str:
            key = keys.get(job)
            if key is None:
                key = self.key_for(job)
                keys[job] = key
            return key

        def on_complete(job: SweepJob, result: SimulationResult) -> None:
            results[job] = result
            self.report.computed += 1
            if self.cache is not None:
                key = key_of(job)
                self.cache.store(key, result)
                if self.injector is not None:
                    self.injector.corrupt_result_entry(self.cache, key)
                if self.supervisor_policy.verify_stores:
                    # Verify-after-write: re-read and digest-check the
                    # entry, rewriting it when it fails — corruption that
                    # happens during the campaign is healed before the
                    # campaign ends, so a resumed run starts clean.
                    if not self.cache.verify(key, result):
                        self.report.store_repairs += 1
            if self.checkpoint is not None:
                self.checkpoint.mark_completed(key_of(job), job)
            if self.injector is not None:
                self.injector.after_completion()

        def on_quarantine(job: SweepJob, failures) -> None:
            record = {"job": job_to_dict(job), "key": key_of(job),
                      "attempts": [f.to_dict() for f in failures]}
            self.report.quarantined.append(record)
            if self.checkpoint is not None:
                self.checkpoint.mark_quarantined(record["key"], job,
                                                 record["attempts"])

        supervisor = JobSupervisor(self, self.supervisor_policy, self.faults,
                                   self.report)
        try:
            if len(pending) > 1 and self.jobs > 1:
                self._prepare_traces(pending)
                supervisor.run_parallel(pending, token_for, on_complete,
                                        on_quarantine)
            else:
                supervisor.run_serial(pending, token_for, on_complete,
                                      on_quarantine)
        except BaseException:
            # Pool teardown and temp-dir cleanup must run on *every* exit —
            # KeyboardInterrupt included — or an aborted campaign leaks its
            # pool and wedges the next one.  Completed work is already
            # cached and checkpointed, so nothing durable is lost.
            self.close()
            raise
        finally:
            if self.injector is not None:
                self.report.merge_faults(self.injector.fired)
            if self.report.quarantined and self.quarantine_path is not None:
                write_quarantine_file(self.quarantine_path,
                                      self.report.quarantined)

    def _execute_supervised(self, job: SweepJob,
                            backend: Optional[str] = None) -> SimulationResult:
        """One in-process job attempt (the supervisor's serial primitive)."""
        return execute_job(job, self.config,
                           self._profile_for(job.benchmark),
                           power=self.power, store=self.trace_store,
                           backend=backend)

    def _task_blob(self, job: SweepJob, backend: Optional[str],
                   attempt: int, token: str) -> bytes:
        """Serialise one job attempt for the pool worker protocol."""
        return pickle.dumps((job, job.config or self.config,
                             self._profile_for(job.benchmark),
                             policy_spec(job.policy),
                             job.power or self.power,
                             backend, attempt, token),
                            protocol=pickle.HIGHEST_PROTOCOL)

    def _prepare_traces(self, pending: Sequence[SweepJob]) -> None:
        # Generate each distinct (profile, length, seed, slicing) trace once
        # in the parent before fanning out: fork-started workers inherit the
        # memo for free, spawn-started (and warm-restart) workers re-hydrate
        # from the trace store — either way no worker re-derives a trace.
        seen_traces: set = set()
        for job in pending:
            trace_tuple = (job.benchmark, job.trace_uops, job.seed,
                           job.use_slicing)
            if trace_tuple in seen_traces:
                continue
            seen_traces.add(trace_tuple)
            profile = self._profile_for(job.benchmark)
            trace_for_job(job, profile, self.trace_store)
            if self.injector is not None and self.trace_store.enabled:
                # Chaos: truncate the just-stored trace entry so workers
                # exercise the store's corruption-heal path (detect,
                # unlink, re-derive, re-store).
                store_key = trace_key(profile, job.trace_uops, job.seed,
                                      job.use_slicing)
                self.injector.corrupt_trace_entry(self.trace_store,
                                                  store_key)

    # ----------------------------------------------------------------- sweeps
    def build_suite_jobs(self, profiles: Iterable[BenchmarkProfile],
                         policies: Sequence[str], trace_uops: int, seed: int,
                         use_slicing: bool = False) -> List[SweepJob]:
        """Jobs for a benchmarks x policies sweep, grouped by benchmark.

        A baseline job is always included per benchmark (speedups need it).
        """
        jobs: List[SweepJob] = []
        for profile in profiles:
            self.register_profile(profile)
            seed_for_bench = job_seed(seed, profile.name)
            jobs.append(SweepJob(profile.name, "baseline", trace_uops,
                                 seed_for_bench, use_slicing))
            for name in policies:
                if name == "baseline":
                    continue
                jobs.append(SweepJob(profile.name, name, trace_uops,
                                     seed_for_bench, use_slicing))
        return jobs

    def run_suite(self, profiles: Iterable[BenchmarkProfile],
                  policies: Sequence[str], trace_uops: int, seed: int,
                  use_slicing: bool = False, use_cache: bool = True):
        """Run a benchmarks x policies sweep into a ``PolicySweepResult``.

        Quarantined jobs (every supervised attempt failed) are simply
        absent: a missing policy result drops that cell, and a missing
        baseline drops the whole benchmark (nothing can be normalised
        without it).  The supervision report records what was dropped — a
        campaign with failures still reports every surviving number.
        """
        from repro.sim.experiment import BenchmarkResult, PolicySweepResult

        profiles = list(profiles)
        jobs = self.build_suite_jobs(profiles, policies, trace_uops, seed,
                                     use_slicing)
        results = self.run_jobs(jobs, use_cache=use_cache)

        sweep = PolicySweepResult(
            policies=[p for p in policies if p != "baseline"],
            benchmarks=[p.name for p in profiles])
        for profile in profiles:
            seed_for_bench = job_seed(seed, profile.name)
            baseline = results.get(SweepJob(profile.name, "baseline",
                                            trace_uops, seed_for_bench,
                                            use_slicing))
            if baseline is None:
                sweep.benchmarks.remove(profile.name)
                continue
            bench = BenchmarkResult(benchmark=profile.name, baseline=baseline)
            for name in sweep.policies:
                result = results.get(SweepJob(profile.name, name, trace_uops,
                                              seed_for_bench, use_slicing))
                if result is not None:
                    bench.by_policy[name] = result
            sweep.results[profile.name] = bench
        return sweep
