"""Job-based parallel sweep engine.

The paper's results are all *sweeps* — benchmarks x steering policies (x
config ablations).  This module turns a sweep into a list of self-contained
:class:`SweepJob` records and executes them either serially in-process or
fanned out over a ``multiprocessing`` pool, with an optional content-addressed
on-disk :class:`~repro.sim.cache.ResultCache` in front.

Determinism
-----------
A job carries everything that determines its result: benchmark profile, trace
length, an explicit per-job seed (a pure function of the sweep seed and the
benchmark — no global RNG state is consulted), slicing mode and policy name.
Trace generation is seeded from the job alone and the simulator itself is
deterministic, so a job computes the bit-identical ``SimulationResult``
whether it runs in the parent process, in a pool worker, or is replayed from
the cache; ``tests/test_engine.py`` pins this property.

Results are keyed and re-assembled by job (not by completion order), so the
parallel path produces identical sweeps regardless of worker scheduling.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig, baseline_config, helper_cluster_config
from repro.core.steering import make_policy, policy_spec
from repro.power.wattch import PowerConfig
from repro.sim.cache import ResultCache, canonical_text, result_key
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.profiles import BenchmarkProfile, get_profile
from repro.trace.slicing import select_simulation_slice
from repro.trace.store import TraceStore, profile_key_text, trace_key
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace

#: Upper bound on the per-process memoised trace set (each full-length trace
#: is a few MB of MicroOps; a sweep touches each benchmark's trace many times
#: but only a handful of distinct traces at once).
_TRACE_MEMO_LIMIT = 32

_trace_memo: Dict[Tuple[str, int, int, bool], Trace] = {}

#: Trace store bound to this process when it is a pool worker (set by
#: :func:`_pool_init`); lets spawned workers re-hydrate parent-generated
#: traces from disk instead of re-deriving them.
_worker_store: Optional[TraceStore] = None


def _pool_init(store_dir: Optional[str]) -> None:
    """Pool-worker initializer: seed the per-worker trace-store binding."""
    global _worker_store
    _worker_store = TraceStore(store_dir) if store_dir else None


@dataclass(frozen=True)
class SweepJob:
    """One (benchmark, policy, machine) simulation of a sweep.

    ``policy == "baseline"`` runs the monolithic baseline machine; every
    other name is resolved through the policy registry (registered
    :class:`~repro.core.steering.PolicySpec` names or ad-hoc ``"+"`` scheme
    combos such as ``"n888+cr"``).  ``config`` overrides
    the engine's machine configuration for this job — that is how a
    design-space exploration fans out over topologies: one job per
    (topology, benchmark) with the topology carried in the job itself, so
    workers and the cache key see exactly the machine the job simulates.
    ``power`` likewise overrides the engine's energy-coefficient
    configuration for this job (baseline jobs included — ED² comparisons
    need baseline energies under the same coefficients).
    """

    benchmark: str
    policy: str
    trace_uops: int
    seed: int
    use_slicing: bool = False
    config: Optional[MachineConfig] = None
    power: Optional[PowerConfig] = None


def job_seed(sweep_seed: int, benchmark: str) -> int:
    """Deterministic per-job seed.

    The historical serial runner seeds every benchmark's trace generator with
    the sweep seed directly, and the sweep's published numbers depend on
    that, so the mapping is the identity.  It lives in one named function so
    the seeding policy is explicit, shared by the serial and parallel paths,
    and changeable in exactly one place (with a
    :data:`~repro.sim.cache.SIMULATOR_VERSION` bump).
    """
    del benchmark  # deliberately not folded in; see docstring
    return sweep_seed


def trace_for_job(job: SweepJob, profile: Optional[BenchmarkProfile] = None,
                  store: Optional[TraceStore] = None) -> Trace:
    """Generate (or reuse) the trace a job runs on.

    Three layers, cheapest first: the per-process memo (keyed by benchmark,
    length, seed, slicing — within a sweep every policy of a benchmark
    shares one trace), then the content-addressed on-disk ``store`` (one
    digest-checked binary file per trace, shared across processes and across
    sweeps on a warm directory), and only then generation — which also
    populates both layers, so an entire sweep performs exactly one
    generation per distinct trace.
    """
    if profile is None:
        profile = get_profile(job.benchmark)
    # The profile content is part of the key so a caller-supplied profile that
    # shadows a registered name cannot collide with it.
    key = (profile_key_text(profile), job.trace_uops, job.seed,
           job.use_slicing)
    trace = _trace_memo.get(key)
    if trace is not None:
        # The memo is process-global while stores are per-engine: a trace
        # another engine generated must still reach *this* store, or a
        # spawn-started worker of this engine would regenerate it.  The
        # store's ``seen`` set keeps the key hash + path probe to once per
        # distinct trace rather than once per job.
        if store is not None and store.enabled and key not in store.seen:
            store_key = trace_key(profile, job.trace_uops, job.seed,
                                  job.use_slicing)
            if not store.path_for(store_key).exists():
                store.store(store_key, trace)
            store.seen.add(key)
        return trace
    store_key = (trace_key(profile, job.trace_uops, job.seed, job.use_slicing)
                 if store is not None else None)
    if store_key is not None:
        trace = store.load(store_key)
    if trace is None:
        if job.use_slicing:
            # Generate a longer run and keep the paper's simulation slice
            # (§3.1: split into 10 slices, start from the fourth).
            full = generate_trace(profile, job.trace_uops * 10, seed=job.seed)
            trace = select_simulation_slice(full)
        else:
            trace = generate_trace(profile, job.trace_uops, seed=job.seed)
        if store_key is not None:
            store.store(store_key, trace)
    if store is not None:
        store.seen.add(key)
    if len(_trace_memo) >= _TRACE_MEMO_LIMIT:
        _trace_memo.pop(next(iter(_trace_memo)))
    _trace_memo[key] = trace
    return trace


def execute_job(job: SweepJob, config: MachineConfig,
                profile: Optional[BenchmarkProfile] = None,
                spec=None, power: Optional[PowerConfig] = None,
                store: Optional[TraceStore] = None) -> SimulationResult:
    """Run one job to completion (trace generation included).

    The job's own ``config`` wins over the engine-supplied one; the baseline
    policy always runs the monolithic baseline machine (the paper's
    methodology normalises every topology to the same baseline).  ``spec``
    is the job's resolved :class:`~repro.core.steering.PolicySpec`; when
    omitted, the name is resolved against this process's registry.
    ``power`` supplies the energy coefficients (job-carried config wins);
    ``store`` is the cross-job trace store consulted before generating.
    """
    trace = trace_for_job(job, profile, store)
    policy = make_policy(spec if spec is not None else job.policy)
    power = job.power or power
    if job.policy == "baseline":
        return simulate(trace, config=baseline_config(), policy=policy,
                        power=power)
    return simulate(trace, config=job.config or config, policy=policy,
                    power=power)


def _pool_worker(task: bytes) -> bytes:
    """Pool entry point; pickled tuples keep the Pool API version-stable.

    The parent resolves each job's policy name to its PolicySpec and ships
    the spec in the task, so policies registered at runtime in the parent
    stay runnable even under spawn/forkserver start methods, where the
    child's freshly-imported registry only holds the built-in specs.
    Traces come from the worker's memo (inherited on fork), the trace store
    bound by :func:`_pool_init`, or are generated as a last resort.
    """
    job, config, profile, spec, power = pickle.loads(task)
    result = execute_job(job, config, profile, spec=spec, power=power,
                         store=_worker_store)
    return pickle.dumps((job, result), protocol=pickle.HIGHEST_PROTOCOL)


def available_cpus() -> int:
    """CPUs this process may actually use.

    Prefers ``os.process_cpu_count`` (Python 3.13+, affinity-aware) and
    falls back to ``os.cpu_count``.
    """
    counter = getattr(os, "process_cpu_count", None) or os.cpu_count
    return max(1, counter() or 1)


def default_jobs() -> int:
    """Worker count used when the caller asks for ``jobs=0`` ("auto")."""
    return available_cpus()


def _terminate_pool(pool) -> None:
    """Engine-finalizer hook: tear the warm pool down without blocking."""
    try:
        pool.terminate()
    except Exception:
        pass


class SweepEngine:
    """Executes sweeps of :class:`SweepJob` records, optionally in parallel.

    Parameters
    ----------
    config:
        Machine configuration for the policy runs (the baseline policy always
        runs on :func:`baseline_config`, mirroring the paper's methodology).
    jobs:
        Worker processes; 1 = serial in-process, 0 = one per CPU.  Requests
        beyond the host's usable CPU count are clamped to it (worker
        processes are CPU-bound, so oversubscription only adds scheduling
        overhead) unless ``allow_oversubscribe`` is set; a clamp is
        recorded in :attr:`jobs_clamped_from` and surfaces in the CLI's
        footer line.
    allow_oversubscribe:
        Run exactly the requested number of workers even past the CPU
        count (measurement / debugging escape hatch).
    cache:
        Optional :class:`ResultCache` consulted before and filled after
        every job.
    power:
        Energy-coefficient configuration applied to every job (including
        baselines); jobs may carry their own override.  Defaults to the
        standard :class:`~repro.power.wattch.PowerConfig`.
    trace_store_dir:
        Directory of the cross-job trace store.  ``None`` (the default)
        uses a private temporary directory that lives as long as the engine
        — still worth having, because spawned pool workers re-hydrate
        parent-generated traces from it instead of re-deriving them.  Point
        it at a persistent directory (the CLI uses ``<cache-dir>/traces``)
        and repeated sweeps skip generation entirely.
    """

    def __init__(self, config: Optional[MachineConfig] = None, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 power: Optional[PowerConfig] = None,
                 trace_store_dir: Optional[str] = None,
                 allow_oversubscribe: bool = False) -> None:
        self.config = config or helper_cluster_config()
        requested = default_jobs() if jobs == 0 else max(1, jobs)
        #: the originally requested worker count when the engine clamped it
        #: to the host's CPU count, else None
        self.jobs_clamped_from: Optional[int] = None
        cpus = available_cpus()
        if requested > cpus and not allow_oversubscribe:
            self.jobs_clamped_from = requested
            requested = cpus
        self.jobs = requested
        self.cache = cache
        self.power = power or PowerConfig()
        self._profiles: Dict[str, BenchmarkProfile] = {}
        #: finalizer that removes the engine-private temp trace directory;
        #: None when the caller supplied (and therefore owns) the directory
        self._store_cleanup: Optional[weakref.finalize] = None
        if trace_store_dir is None:
            trace_store_dir = tempfile.mkdtemp(prefix="repro-traces-")
            self._store_cleanup = weakref.finalize(
                self, shutil.rmtree, trace_store_dir, ignore_errors=True)
        self.trace_store = TraceStore(trace_store_dir)
        #: persistent warm worker pool, created lazily on the first parallel
        #: batch and reused across sweeps (pool spin-up and re-import are a
        #: real cost when every figure of a benchmark session runs a sweep)
        self._pool = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------ pool
    def _ensure_pool(self):
        """The engine's warm worker pool, created on first use."""
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(
                processes=self.jobs, initializer=_pool_init,
                initargs=(str(self.trace_store.store_dir),))
            self._pool_finalizer = weakref.finalize(
                self, _terminate_pool, self._pool)
        return self._pool

    def close(self) -> None:
        """Release the engine's pooled resources (idempotent).

        Tears down the warm worker pool and removes the engine-private
        temporary trace-store directory (when no explicit
        ``trace_store_dir`` was given — a caller-supplied directory is the
        caller's to keep).  The same cleanups are registered as
        ``weakref.finalize`` callbacks (which also run at interpreter
        exit), so an engine that is never closed still cannot leak them;
        ``close()`` — or the context-manager form — releases them eagerly
        and deterministically, exceptions included.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.terminate()
            pool.join()
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        if self._store_cleanup is not None:
            cleanup, self._store_cleanup = self._store_cleanup, None
            cleanup()  # a dead finalizer is a no-op, so this is idempotent

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ keys
    def key_for(self, job: SweepJob) -> str:
        """Content-address of a job's result.

        The machine configuration contributes through its canonical
        ``to_key_dict()`` (topology included), so any config field change —
        not just the handful of fields a sweep happens to vary — changes the
        key and can never serve a stale cached result.  The policy likewise
        contributes through ``PolicySpec.to_key_dict()`` (name, scheme set,
        cluster selector and selector knobs), so two registered policies
        that differ only in selector or knobs can never alias an entry.
        The power configuration contributes through
        ``PowerConfig.to_key_dict()``: results carry their energy figures,
        so changed coefficients must change the key too.  The profile
        contributes the same way (``BenchmarkProfile.to_key_dict()``, every
        distribution knob), replacing the earlier ``repr``-based keying
        whose coverage was implicit.
        """
        if job.policy == "baseline":
            config = baseline_config()
        else:
            config = job.config or self.config
        profile = self._profile_for(job.benchmark)
        power = job.power or self.power
        return result_key(canonical_text(profile.to_key_dict()),
                          job.trace_uops, job.seed, job.use_slicing,
                          canonical_text(config.to_key_dict()),
                          canonical_text(policy_spec(job.policy).to_key_dict()),
                          canonical_text(power.to_key_dict()))

    def register_profile(self, profile: BenchmarkProfile) -> None:
        """Make a (possibly unregistered) profile resolvable by name."""
        self._profiles[profile.name] = profile

    def _profile_for(self, benchmark: str) -> BenchmarkProfile:
        profile = self._profiles.get(benchmark)
        if profile is None:
            profile = get_profile(benchmark)
            self._profiles[benchmark] = profile
        return profile

    # ------------------------------------------------------------------- run
    def run_jobs(self, sweep_jobs: Sequence[SweepJob],
                 use_cache: bool = True) -> Dict[SweepJob, SimulationResult]:
        """Execute a batch of jobs and return ``{job: result}``.

        Cached results are served first; the remainder runs serially or on a
        pool.  The returned mapping is keyed (and therefore ordered) by the
        input job list, independent of worker completion order.
        """
        results: Dict[SweepJob, SimulationResult] = {}
        pending: List[SweepJob] = []
        keys: Dict[SweepJob, str] = {}
        seen: set = set()
        for job in sweep_jobs:
            if job in seen:
                continue  # duplicate job in the batch
            seen.add(job)
            if self.cache is not None and use_cache:
                key = self.key_for(job)
                keys[job] = key
                cached = self.cache.load(key)
                if cached is not None:
                    results[job] = cached
                    continue
            pending.append(job)

        if len(pending) > 1 and self.jobs > 1:
            computed = self._run_parallel(pending)
        else:
            computed = {job: execute_job(job, self.config,
                                         self._profile_for(job.benchmark),
                                         power=self.power,
                                         store=self.trace_store)
                        for job in pending}

        for job, result in computed.items():
            if self.cache is not None:
                self.cache.store(keys.get(job) or self.key_for(job), result)
            results[job] = result
        return {job: results[job] for job in sweep_jobs if job in results}

    def _run_parallel(self, pending: Sequence[SweepJob]
                      ) -> Dict[SweepJob, SimulationResult]:
        # Generate each distinct (profile, length, seed, slicing) trace once
        # in the parent before fanning out: fork-started workers inherit the
        # memo for free, spawn-started (and warm-restart) workers re-hydrate
        # from the trace store — either way no worker re-derives a trace.
        seen_traces: set = set()
        for job in pending:
            trace_tuple = (job.benchmark, job.trace_uops, job.seed,
                           job.use_slicing)
            if trace_tuple in seen_traces:
                continue
            seen_traces.add(trace_tuple)
            trace_for_job(job, self._profile_for(job.benchmark),
                          self.trace_store)

        # Adjacent jobs share a benchmark (the builders emit them grouped),
        # so contiguous chunks let each worker reuse its memoised trace.
        tasks = [pickle.dumps((job, job.config or self.config,
                               self._profile_for(job.benchmark),
                               policy_spec(job.policy),
                               job.power or self.power),
                              protocol=pickle.HIGHEST_PROTOCOL)
                 for job in pending]
        workers = min(self.jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 2))
        computed: Dict[SweepJob, SimulationResult] = {}
        pool = self._ensure_pool()
        for blob in pool.imap(_pool_worker, tasks, chunksize=chunksize):
            job, result = pickle.loads(blob)
            computed[job] = result
        return computed

    # ----------------------------------------------------------------- sweeps
    def build_suite_jobs(self, profiles: Iterable[BenchmarkProfile],
                         policies: Sequence[str], trace_uops: int, seed: int,
                         use_slicing: bool = False) -> List[SweepJob]:
        """Jobs for a benchmarks x policies sweep, grouped by benchmark.

        A baseline job is always included per benchmark (speedups need it).
        """
        jobs: List[SweepJob] = []
        for profile in profiles:
            self.register_profile(profile)
            seed_for_bench = job_seed(seed, profile.name)
            jobs.append(SweepJob(profile.name, "baseline", trace_uops,
                                 seed_for_bench, use_slicing))
            for name in policies:
                if name == "baseline":
                    continue
                jobs.append(SweepJob(profile.name, name, trace_uops,
                                     seed_for_bench, use_slicing))
        return jobs

    def run_suite(self, profiles: Iterable[BenchmarkProfile],
                  policies: Sequence[str], trace_uops: int, seed: int,
                  use_slicing: bool = False, use_cache: bool = True):
        """Run a benchmarks x policies sweep into a ``PolicySweepResult``."""
        from repro.sim.experiment import BenchmarkResult, PolicySweepResult

        profiles = list(profiles)
        jobs = self.build_suite_jobs(profiles, policies, trace_uops, seed,
                                     use_slicing)
        results = self.run_jobs(jobs, use_cache=use_cache)

        sweep = PolicySweepResult(
            policies=[p for p in policies if p != "baseline"],
            benchmarks=[p.name for p in profiles])
        for profile in profiles:
            seed_for_bench = job_seed(seed, profile.name)
            baseline = results[SweepJob(profile.name, "baseline", trace_uops,
                                        seed_for_bench, use_slicing)]
            bench = BenchmarkResult(benchmark=profile.name, baseline=baseline)
            for name in sweep.policies:
                bench.by_policy[name] = results[SweepJob(
                    profile.name, name, trace_uops, seed_for_bench, use_slicing)]
            sweep.results[profile.name] = bench
        return sweep
