"""Deterministic, seed-driven fault injection for the sweep engine.

The supervision layer in :mod:`repro.sim.supervise` claims to survive worker
crashes, hangs, transient exceptions, cache-entry corruption and trace-store
truncation.  The only way to trust a recovery path is to take it, so this
module turns each of those faults into a *deterministic function of a seed*:
given the same :class:`FaultPlan`, the same campaign injects the same faults
at the same points, every run, on every machine.  Tests (and the CI chaos
job) pin every recovery path against seeded plans instead of asserting them
in prose.

Decision model
--------------
Each fault decision hashes ``(plan seed, kind, token, attempt)`` with
SHA-256 and compares the resulting uniform value against the plan's rate
for that kind — no RNG state, no ordering sensitivity: two processes (or a
worker and its replacement after a respawn) agree on every decision.  A
*token* identifies the victim: for job faults it is
``"<benchmark>:<policy>:<key12>"`` (the 12-hex-digit result-key prefix
distinguishes topology-grid points that share a benchmark and policy); for
artifact faults it is the cache/store key itself.

At most one fault fires per (token, attempt): the kinds partition a single
uniform draw by cumulative rate, so raising one rate never flips an
unrelated decision from another kind — only the boundary between "this
kind" and "no fault" moves.

Fault kinds
-----------
``crash``
    The worker kills itself with ``SIGKILL`` mid-job — the closest stand-in
    for a compiled-backend segfault.  Serial (in-process) execution maps it
    to a raised :class:`InjectedFault` instead, because killing the parent
    is not a recoverable scenario.
``hang``
    The worker sleeps ``hang_delay`` seconds before proceeding; the
    supervisor's per-job deadline decides whether that counts as a hang.
``transient``
    The worker raises :class:`InjectedFault` — the classic once-off
    failure that a retry absorbs.
``slow``
    The worker sleeps ``slow_delay`` seconds and then completes normally —
    latency noise that must never change results.
``corrupt_result``
    A just-stored result-cache entry has one payload byte flipped
    (parent-side, at most once per key) so the cache's digest check, heal
    path and the supervisor's verify-after-write are exercised.
``corrupt_trace``
    A just-stored trace-store entry is truncated (parent-side, at most
    once per key) so workers re-derive the trace through the store's
    corruption-heal path.

Unless a token is listed in ``sticky``, job faults only fire on attempts
below ``max_attempt`` (default 1: first attempt only), so a retried job
succeeds and the campaign converges.  ``sticky`` entries of the form
``kind@token-substring`` fire on *every* attempt — that is how a test (or
the chaos job) proves quarantine: the job must exhaust its attempts and
land in ``failed-jobs.json`` without taking the campaign down.

Activation
----------
``REPRO_FAULTS`` (or the engine's ``faults=`` knob / the CLI's
``--faults``) holds a comma-separated spec, e.g.::

    REPRO_FAULTS="seed=7,crash=0.2,hang=0.1,transient=0.2,corrupt_result=0.3,deadline=20,hang_delay=2"

Plans also carry the supervision overrides chaos scenarios need
(``deadline``, ``backoff``, ``hang_delay``, …) so one knob configures a
whole scenario.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple

#: Environment variable holding the fault-plan spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Job-fault kinds in cumulative-draw order (fixed: the order is part of
#: the deterministic contract — reordering would re-map every decision).
JOB_FAULT_KINDS = ("crash", "hang", "transient", "slow")

#: Artifact-fault kinds (parent-side, keyed by cache/store key).
ARTIFACT_FAULT_KINDS = ("corrupt_result", "corrupt_trace")


class InjectedFault(RuntimeError):
    """A deliberately injected failure (transient, or a serialised crash)."""


def _unit(*parts: object) -> float:
    """Deterministic uniform value in [0, 1) from the given parts."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultPlan:
    """A complete seeded fault scenario (see the module docstring)."""

    seed: int = 0
    # -- job-fault rates, one per kind in JOB_FAULT_KINDS -----------------
    crash: float = 0.0
    hang: float = 0.0
    transient: float = 0.0
    slow: float = 0.0
    # -- artifact-fault rates --------------------------------------------
    corrupt_result: float = 0.0
    corrupt_trace: float = 0.0
    # -- shaping ----------------------------------------------------------
    #: job faults fire only on attempts < max_attempt (sticky ones always)
    max_attempt: int = 1
    #: ``kind@token-substring`` entries that fire on every attempt,
    #: ``;``-separated in the env spec (e.g. ``sticky=crash@gcc:ir``)
    sticky: Tuple[str, ...] = ()
    #: restrict job faults to attempts running the compiled backend — the
    #: "compiled-backend bug" scenario whose retry the degradation ladder
    #: (compiled -> python) must absorb
    compiled_only: bool = False
    #: how long a "hang" sleeps; the supervisor deadline decides its fate
    hang_delay: float = 30.0
    #: how long a "slow" fault delays a job that then completes normally
    slow_delay: float = 0.05
    # -- supervision overrides (chaos scenarios tune these with the plan) -
    #: overrides SupervisorPolicy.timeout_base when set
    deadline: Optional[float] = None
    #: overrides SupervisorPolicy.backoff_base when set
    backoff: Optional[float] = None
    #: overrides SupervisorPolicy.max_attempts when set
    attempts: Optional[int] = None
    #: parent raises KeyboardInterrupt after this many computed jobs
    #: (0 = off) — deterministic interruption for checkpoint/resume tests
    interrupt_after: int = 0

    # ------------------------------------------------------------- parsing
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``key=value,...`` spec (the ``REPRO_FAULTS`` format)."""
        kwargs: Dict[str, object] = {}
        types = {f.name: f.type for f in fields(cls)}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or key not in types:
                raise ValueError(
                    f"bad {FAULTS_ENV} entry {item!r}: expected key=value "
                    f"with key one of {sorted(types)}")
            if key == "sticky":
                kwargs[key] = tuple(entry.strip()
                                    for entry in value.split(";")
                                    if entry.strip())
            elif key in ("seed", "max_attempt", "interrupt_after", "attempts"):
                kwargs[key] = int(value)
            elif key == "compiled_only":
                kwargs[key] = value.strip().lower() in ("1", "true", "yes")
            else:
                kwargs[key] = float(value)
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or None when unset/empty."""
        text = os.environ.get(FAULTS_ENV, "").strip()
        return cls.parse(text) if text else None

    def to_text(self) -> str:
        """Round-trippable spec text (only non-default fields)."""
        default = FaultPlan()
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value == getattr(default, f.name):
                continue
            if f.name == "sticky":
                parts.append(f"sticky={';'.join(value)}")
            elif f.name == "compiled_only":
                parts.append("compiled_only=1")
            else:
                parts.append(f"{f.name}={value}")
        return ",".join(parts)

    # ----------------------------------------------------------- decisions
    def _sticky_kind(self, token: str) -> Optional[str]:
        for entry in self.sticky:
            kind, sep, needle = entry.partition("@")
            if sep and kind in JOB_FAULT_KINDS and needle in token:
                return kind
        return None

    def fault_for(self, token: str, attempt: int) -> Optional[str]:
        """The job-fault kind that fires for (token, attempt), if any.

        Sticky entries win (and ignore ``max_attempt``); otherwise one
        uniform draw is partitioned by cumulative rate across the kinds.
        """
        sticky = self._sticky_kind(token)
        if sticky is not None:
            return sticky
        if attempt >= self.max_attempt:
            return None
        draw = _unit(self.seed, "job", token, attempt)
        cumulative = 0.0
        for kind in JOB_FAULT_KINDS:
            cumulative += getattr(self, kind)
            if draw < cumulative:
                return kind
        return None

    def artifact_fault(self, kind: str, key: str) -> bool:
        """Whether artifact fault ``kind`` fires for store entry ``key``."""
        if kind not in ARTIFACT_FAULT_KINDS:
            raise ValueError(f"unknown artifact fault kind {kind!r}")
        return _unit(self.seed, kind, key) < getattr(self, kind)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def any_job_faults(self) -> bool:
        return (bool(self.sticky)
                or any(getattr(self, kind) > 0.0 for kind in JOB_FAULT_KINDS))


# ---------------------------------------------------------------------------
# worker-side injection
# ---------------------------------------------------------------------------
def maybe_inject(plan: Optional[FaultPlan], token: str, attempt: int,
                 backend: Optional[str], in_worker: bool = True) -> None:
    """Apply the planned fault for (token, attempt), if any.

    Called at the top of a job execution.  ``backend`` is the backend this
    attempt will run (None = inherit the process default); with
    ``compiled_only`` set, faults spare attempts that resolve to the pure
    python backend — that is the degradation contract under test.  Serial
    callers pass ``in_worker=False``: a crash cannot be injected without
    killing the campaign itself, so it (and a hang, which nothing could
    interrupt in-process) degrade to an :class:`InjectedFault`.
    """
    if plan is None:
        return
    kind = plan.fault_for(token, attempt)
    if kind is None:
        return
    if plan.compiled_only:
        from repro.sim.hotstate import detected_backend

        effective = backend or detected_backend()
        if effective != "compiled":
            return
    if kind == "crash":
        if in_worker:
            # The satellite scenario verbatim: the worker is SIGKILLed
            # mid-job, exactly as a segfaulting C kernel would die.
            os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedFault(f"injected crash (serial) for {token}")
    if kind == "hang":
        if in_worker:
            time.sleep(plan.hang_delay)
            return  # a survivable hang is just extreme slowness
        raise InjectedFault(f"injected hang (serial) for {token}")
    if kind == "transient":
        raise InjectedFault(f"injected transient fault for {token} "
                            f"(attempt {attempt})")
    if kind == "slow":
        time.sleep(plan.slow_delay)


# ---------------------------------------------------------------------------
# parent-side artifact injection
# ---------------------------------------------------------------------------
class FaultInjector:
    """Parent-side injector: artifact corruption + the interrupt fault.

    Artifact faults fire at most once per key per process (the point is to
    exercise the detection/heal path, not to make storage unusable), and
    the counters feed the supervision report so a chaos run can assert the
    faults it planned actually fired.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired: Dict[str, int] = {}
        self._corrupted: set = set()
        self._completed = 0

    def _count(self, kind: str) -> None:
        self.fired[kind] = self.fired.get(kind, 0) + 1

    def corrupt_result_entry(self, cache, key: str) -> bool:
        """Flip one payload byte of the on-disk entry for ``key``."""
        if key in self._corrupted or not self.plan.artifact_fault(
                "corrupt_result", key):
            return False
        self._corrupted.add(key)
        path = cache.path_for(key)
        try:
            blob = bytearray(path.read_bytes())
            if not blob:
                return False
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        except OSError:
            return False
        self._count("corrupt_result")
        return True

    def corrupt_trace_entry(self, store, key: str) -> bool:
        """Truncate the on-disk trace entry for ``key`` to half its size."""
        if key in self._corrupted or not self.plan.artifact_fault(
                "corrupt_trace", key):
            return False
        self._corrupted.add(key)
        path = store.path_for(key)
        try:
            blob = path.read_bytes()
            if len(blob) < 2:
                return False
            path.write_bytes(blob[:len(blob) // 2])
        except OSError:
            return False
        self._count("corrupt_trace")
        return True

    def after_completion(self) -> None:
        """Count a computed job; raise the planned interrupt when due."""
        self._completed += 1
        if (self.plan.interrupt_after
                and self._completed >= self.plan.interrupt_after):
            self._count("interrupt")
            raise KeyboardInterrupt(
                f"injected interrupt after {self._completed} computed jobs")
