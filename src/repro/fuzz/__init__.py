"""Differential fuzzing of the simulator (event wheel vs reference loop).

The repo's correctness story is that every optimisation since PR 1 is pinned
bit-identical to a straightforward reference implementation.  This package
industrialises that guarantee: :mod:`repro.fuzz.generate` draws random-but-
valid (topology, policy, profile, trace) cases from a single seed,
:mod:`repro.fuzz.harness` co-simulates each case through the event wheel and
the ``REPRO_REFERENCE_LOOP=1`` per-cycle loop and checks standalone
invariants (:mod:`repro.fuzz.invariants`), and failures are shrunk to
minimal reproducers and written out as corpus entries + self-contained
repro scripts.  ``repro.cli fuzz`` drives a campaign; the committed corpus
under ``tests/fuzz_corpus/`` replays in tier-1 so found-and-fixed bugs stay
fixed.  See DESIGN.md § "Differential fuzzing".
"""

from repro.fuzz.generate import (
    CASE_FORMAT,
    FuzzCase,
    case_from_dict,
    case_text,
    case_to_dict,
    generate_case,
)
from repro.fuzz.harness import (
    CampaignResult,
    CaseReport,
    load_corpus_dir,
    run_campaign,
    run_case,
    shrink_case,
    write_corpus_entry,
    write_repro_script,
)
from repro.fuzz.enginefaults import (
    EngineFaultCase,
    EngineFaultReport,
    generate_engine_case,
    load_engine_corpus_dir,
    run_engine_fault_campaign,
    run_engine_fault_case,
    write_engine_corpus_entry,
)
from repro.fuzz.invariants import CommitOrderRecorder, check_result_invariants

__all__ = [
    "EngineFaultCase",
    "EngineFaultReport",
    "generate_engine_case",
    "load_engine_corpus_dir",
    "run_engine_fault_campaign",
    "run_engine_fault_case",
    "write_engine_corpus_entry",
    "CASE_FORMAT",
    "FuzzCase",
    "case_from_dict",
    "case_text",
    "case_to_dict",
    "generate_case",
    "CampaignResult",
    "CaseReport",
    "load_corpus_dir",
    "run_campaign",
    "run_case",
    "shrink_case",
    "write_corpus_entry",
    "write_repro_script",
    "CommitOrderRecorder",
    "check_result_invariants",
]
