"""Differential co-simulation, shrinking and campaign driving.

:func:`run_case` is the property under test: the event wheel (pure-python
backend), the compiled-kernel event wheel (when :mod:`repro._corekernel` is
importable) and the ``REPRO_REFERENCE_LOOP=1`` per-cycle loop must produce
pickle-identical :class:`~repro.sim.metrics.SimulationResult`\\ s for every
valid case, all sides must satisfy the standalone invariants of
:mod:`repro.fuzz.invariants`, and the result/trace caches must round-trip
the run under a stable key.

:func:`shrink_case` reduces a failing case to a minimal reproducer with a
bounded greedy pass — fewer uops first (simulation time dominates), then
structure (slicing off, helpers dropped, specs and machine knobs back to
paper defaults, policy and profile simplified) — re-checking the caller's
failure predicate after every candidate, so the shrunk case provably still
fails the same way it was caught.

:func:`run_campaign` strings it together for ``repro.cli fuzz`` and the
nightly job: generate, run, shrink, and write each failure out as a corpus
entry (JSON, replayable in tier-1) plus a self-contained repro script.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.core.config import ClusterSpec, Topology
from repro.core.steering import PolicySpec, Scheme, policy_registry
from repro.fuzz.generate import (
    CASE_FORMAT,
    FuzzCase,
    case_from_dict,
    case_text,
    case_to_dict,
    generate_case,
)
from repro.fuzz.invariants import CommitOrderRecorder, check_result_invariants
from repro.sim.cache import ResultCache, canonical_text, result_key
from repro.sim.hotstate import compiled_available
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import HelperClusterSimulator
from repro.trace.profiles import SPEC_INT_NAMES, get_profile
from repro.trace.store import TraceStore, trace_key
from repro.trace.trace import Trace

#: The paper's helper spec — the normal form shrinking drives helpers to.
_DEFAULT_HELPER = ClusterSpec(name="shrunk_helper", datapath_width=8,
                              clock_ratio=2, issue_width=3, queue_size=32,
                              memory_ports=2, has_fp=False,
                              copy_latency_slow=2, flush_penalty_slow=5)

#: Floor for shrinking trace lengths (a shrunk case may undercut the
#: generator's band — it only has to stay a valid, still-failing scenario).
_SHRINK_MIN_UOPS = 20


# ---------------------------------------------------------------------------
# single-case co-simulation
# ---------------------------------------------------------------------------
@dataclass
class CaseReport:
    """Outcome of co-simulating one case (``ok`` iff no failure strings)."""

    case: FuzzCase
    failures: List[str] = field(default_factory=list)
    wheel: Optional[SimulationResult] = None
    reference: Optional[SimulationResult] = None
    #: event-wheel run under the compiled backend; None when the
    #: repro._corekernel extension is not importable (two-way co-sim only)
    compiled: Optional[SimulationResult] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _simulate(case: FuzzCase, trace: Trace, config, reference_loop: bool,
              failures: List[str],
              backend: str = "python") -> Optional[SimulationResult]:
    """Run one side of the differential set, folding crashes into failures."""
    if reference_loop:
        side = "reference loop"
    else:
        side = f"event wheel[{backend}]"
    recorder = CommitOrderRecorder(config.commit_width)
    try:
        sim = HelperClusterSimulator(trace, config=config,
                                     policy=case.policy.build(),
                                     reference_loop=reference_loop,
                                     backend=backend)
        sim.commit_hook = recorder
        result = sim.run()
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        failures.append(f"{side} crashed: {type(exc).__name__}: {exc}")
        return None
    failures.extend(f"[{side}] {violation}"
                    for violation in recorder.violations)
    failures.extend(f"[{side}] {violation}"
                    for violation in check_result_invariants(
                        result, config, len(trace)))
    return result


def _describe_divergence(left_result: SimulationResult,
                         right_result: SimulationResult,
                         left_name: str = "wheel",
                         right_name: str = "reference") -> str:
    """Name the result fields on which the two cores disagree."""
    diffs = []
    for f in dataclasses.fields(SimulationResult):
        a, b = getattr(left_result, f.name), getattr(right_result, f.name)
        if pickle.dumps(a) != pickle.dumps(b):
            left, right = repr(a)[:80], repr(b)[:80]
            diffs.append(f"{f.name}: {left_name}={left} {right_name}={right}")
    if not diffs:
        return "results pickle differently but no field compares unequal"
    return "; ".join(diffs)


def _check_stores(case: FuzzCase, trace: Trace, config,
                  result: SimulationResult, failures: List[str]) -> None:
    """Round-trip the run through ResultCache/TraceStore in a temp dir."""
    config_text = canonical_text(config.to_key_dict())
    policy_text = canonical_text(case.policy.to_key_dict())
    rkey = result_key(case.profile, case.trace_uops, case.trace_seed,
                      case.use_slicing, config_text, policy_text)
    tkey = trace_key(case.profile, case.trace_uops, case.trace_seed,
                     case.use_slicing)

    # Key stability: a case serialised to JSON and read back must address
    # the exact same cache slots, or corpus replays and resumed sweeps
    # would silently recompute (or worse, alias) entries.
    rebuilt = case_from_dict(json.loads(case_text(case)))
    rebuilt_config = rebuilt.machine_config()
    rebuilt_rkey = result_key(rebuilt.profile, rebuilt.trace_uops,
                              rebuilt.trace_seed, rebuilt.use_slicing,
                              canonical_text(rebuilt_config.to_key_dict()),
                              canonical_text(rebuilt.policy.to_key_dict()))
    if rebuilt_rkey != rkey:
        failures.append("result cache key unstable across a JSON round-trip "
                        f"of the case: {rkey[:12]}... != {rebuilt_rkey[:12]}...")
    rebuilt_tkey = trace_key(rebuilt.profile, rebuilt.trace_uops,
                             rebuilt.trace_seed, rebuilt.use_slicing)
    if rebuilt_tkey != tkey:
        failures.append("trace store key unstable across a JSON round-trip "
                        f"of the case: {tkey[:12]}... != {rebuilt_tkey[:12]}...")

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-stores-") as tmp:
        cache = ResultCache(Path(tmp) / "results")
        cache.store(rkey, result)
        loaded = cache.load(rkey)
        if loaded is None:
            failures.append("ResultCache round-trip lost the result "
                            "(store then load missed)")
        elif pickle.dumps(loaded) != pickle.dumps(result):
            failures.append("ResultCache round-trip corrupted the result "
                            "(loaded payload differs from the stored one)")
        store = TraceStore(Path(tmp) / "traces")
        store.store(tkey, trace)
        reloaded = store.load(tkey)
        if reloaded is None:
            failures.append("TraceStore round-trip lost the trace "
                            "(store then load missed)")
        elif pickle.dumps(reloaded) != pickle.dumps(trace):
            failures.append("TraceStore round-trip corrupted the trace "
                            "(loaded uop stream differs from the stored one)")


def run_case(case: FuzzCase, check_stores: bool = True) -> CaseReport:
    """Co-simulate ``case`` through every core and check every property.

    Always runs the python event wheel against the per-cycle reference
    loop; when the compiled backend is importable the case is additionally
    run through the compiled event wheel, making it a three-way net.
    """
    started = time.perf_counter()
    report = CaseReport(case=case)
    failures = report.failures
    try:
        config = case.machine_config()
        trace = case.build_trace()
    except Exception as exc:  # noqa: BLE001 — generation must never raise
        failures.append(
            f"case construction crashed: {type(exc).__name__}: {exc}")
        report.elapsed = time.perf_counter() - started
        return report

    report.wheel = _simulate(case, trace, config, False, failures)
    report.reference = _simulate(case, trace, config, True, failures)
    if report.wheel is not None and report.reference is not None:
        if pickle.dumps(report.wheel) != pickle.dumps(report.reference):
            failures.append("event wheel and reference loop diverged: "
                            + _describe_divergence(report.wheel,
                                                   report.reference))
    if compiled_available():
        report.compiled = _simulate(case, trace, config, False, failures,
                                    backend="compiled")
        if report.compiled is not None and report.wheel is not None:
            if pickle.dumps(report.compiled) != pickle.dumps(report.wheel):
                failures.append(
                    "compiled and python event wheels diverged: "
                    + _describe_divergence(report.compiled, report.wheel,
                                           "compiled", "python"))
    if check_stores and report.wheel is not None:
        _check_stores(case, trace, config, report.wheel, failures)
    report.elapsed = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------
def shrink_case(case: FuzzCase,
                predicate: Optional[Callable[[FuzzCase], bool]] = None,
                max_evals: int = 60) -> Tuple[FuzzCase, int]:
    """Greedily reduce ``case`` while ``predicate`` keeps failing.

    ``predicate(candidate)`` returns True when the candidate still exhibits
    the failure (default: :func:`run_case` reports any failure).  Returns the
    smallest still-failing case found and the number of evaluations spent —
    at most ``max_evals``, so a pathological case cannot stall a campaign.
    """
    if predicate is None:
        def predicate(candidate: FuzzCase) -> bool:
            return not run_case(candidate, check_stores=False).ok

    evals = 0
    current = case

    def try_candidate(candidate: FuzzCase) -> bool:
        """Adopt ``candidate`` if the budget allows and it still fails."""
        nonlocal evals, current
        if evals >= max_evals:
            return False
        if case_text(candidate) == case_text(current):
            return False
        try:
            still_failing = predicate(candidate)
        except Exception:  # noqa: BLE001 — a crashing candidate still fails
            still_failing = True
        evals += 1
        if still_failing:
            current = candidate
        return still_failing

    # 1. Trace length first — simulation time scales with it, so every later
    #    stage gets cheaper the further this one gets.
    while current.trace_uops > _SHRINK_MIN_UOPS:
        target = max(_SHRINK_MIN_UOPS, current.trace_uops // 2)
        if not try_candidate(replace(current, case_seed=None,
                                     trace_uops=target)):
            break
    # 2. Slicing off: a 10x shorter generation run and a simpler recipe.
    if current.use_slicing:
        try_candidate(replace(current, case_seed=None, use_slicing=False))
    # 3. Drop helper clusters from the back (the host cannot be dropped).
    while current.topology.num_helpers > 0:
        clusters = current.topology.clusters[:-1]
        if not try_candidate(replace(current, case_seed=None,
                                     topology=Topology(clusters))):
            break
    # 4. Normalise surviving helpers to the paper's default spec (keeping
    #    each cluster's name so the policy/selector landscape is unchanged).
    for index, spec in enumerate(current.topology.clusters):
        if index == 0:
            continue
        normal = replace(_DEFAULT_HELPER, name=spec.name)
        if spec == normal:
            continue
        clusters = list(current.topology.clusters)
        clusters[index] = normal
        try_candidate(replace(current, case_seed=None,
                              topology=Topology(tuple(clusters))))
    # 5. Machine knobs back to their defaults, one at a time.
    for knob, default in (("predictor_entries", 256),
                          ("use_confidence", True), ("fetch_width", 6),
                          ("commit_width", 6), ("rob_size", 128)):
        if getattr(current, knob) != default:
            try_candidate(replace(current, case_seed=None,
                                  **{knob: default}))
    # 6. Policy: baseline if possible, else fewer schemes / default selector.
    baseline = policy_registry.get("baseline")
    if current.policy.schemes:
        try_candidate(replace(current, case_seed=None, policy=baseline))
    if current.policy.schemes:
        for scheme in sorted(current.policy.schemes, key=lambda s: s.name):
            remaining = current.policy.schemes - {scheme}
            if scheme is Scheme.IR:
                # IR_NODEST refines IR; dropping IR alone leaves an
                # inconsistent scheme set.
                remaining = remaining - {Scheme.IR_NODEST}
            if not remaining:
                continue
            slim = PolicySpec(
                name="fz_" + "_".join(sorted(s.name.lower()
                                             for s in remaining)),
                schemes=frozenset(remaining),
                selector=current.policy.selector,
                knobs=current.policy.knobs)
            try_candidate(replace(current, case_seed=None, policy=slim))
        if (current.policy.selector != "least_loaded"
                or current.policy.knobs):
            try_candidate(replace(current, case_seed=None,
                                  policy=replace(current.policy,
                                                 selector="least_loaded",
                                                 knobs=())))
    # 7. Profile: swap a perturbed profile for its registered base.
    if current.profile.name not in SPEC_INT_NAMES:
        for name in SPEC_INT_NAMES[:2]:
            if try_candidate(replace(current, case_seed=None,
                                     profile=get_profile(name))):
                break
    # 8. One more trace-length pass — the simpler machine may fail sooner.
    while current.trace_uops > _SHRINK_MIN_UOPS:
        target = max(_SHRINK_MIN_UOPS, current.trace_uops // 2)
        if not try_candidate(replace(current, case_seed=None,
                                     trace_uops=target)):
            break
    return current, evals


# ---------------------------------------------------------------------------
# corpus + repro-script output
# ---------------------------------------------------------------------------
def write_corpus_entry(case: FuzzCase, directory, name: str,
                       description: str = "") -> Path:
    """Write ``case`` as a corpus entry; tier-1 replays every entry."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "format": CASE_FORMAT,
        "name": name,
        "description": description,
        "case": case_to_dict(case),
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_corpus_dir(directory) -> List[Tuple[str, FuzzCase]]:
    """Load every ``*.json`` corpus entry under ``directory`` (sorted)."""
    directory = Path(directory)
    entries: List[Tuple[str, FuzzCase]] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("kind"):
            # Typed entries (e.g. "engine-fault") have their own loader:
            # repro.fuzz.enginefaults.load_engine_corpus_dir.
            continue
        entries.append((data.get("name", path.stem),
                        case_from_dict(data["case"])))
    return entries


_REPRO_TEMPLATE = '''\
#!/usr/bin/env python3
"""Self-contained reproducer for a repro.fuzz failure.

Run from the repo root with ``PYTHONPATH=src python {script_name}``.
Exits 0 when the failure no longer reproduces (i.e. it is fixed).

Original failure:
{failure_comment}
"""
import json
import sys

from repro.fuzz import case_from_dict, run_case

CASE = json.loads(r"""
{case_json}
""")

report = run_case(case_from_dict(CASE))
if report.ok:
    print("case passes: the failure no longer reproduces")
    sys.exit(0)
print(f"case still fails ({{len(report.failures)}} finding(s)):")
for failure in report.failures:
    print(f"  - {{failure}}")
sys.exit(1)
'''


def write_repro_script(case: FuzzCase, path, failures=()) -> Path:
    """Write a standalone script that replays ``case`` and reports pass/fail."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    failure_comment = "\n".join(f"  - {line}" for line in failures) or "  (unrecorded)"
    path.write_text(_REPRO_TEMPLATE.format(
        script_name=path.name,
        failure_comment=failure_comment,
        case_json=json.dumps(case_to_dict(case), indent=2, sort_keys=True),
    ), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------
@dataclass
class CampaignResult:
    """Summary of one fuzzing campaign (``ok`` iff nothing failed)."""

    cases_run: int = 0
    seeds: List[int] = field(default_factory=list)
    reports: List[CaseReport] = field(default_factory=list)
    shrunk: List[FuzzCase] = field(default_factory=list)
    artifacts: List[Path] = field(default_factory=list)
    elapsed: float = 0.0
    stop_reason: str = "completed"

    @property
    def ok(self) -> bool:
        return not self.reports


def campaign_case_seed(seed: int, index: int) -> int:
    """The case seed for campaign position ``index`` (pure, log-replayable)."""
    return seed * 1_000_003 + index


def run_campaign(cases: int, seed: int = 0, shrink: bool = True,
                 out_dir=None, corpus_dir=None,
                 time_budget: Optional[float] = None, max_failures: int = 5,
                 check_stores: bool = True,
                 log: Optional[Callable[[str], None]] = None) -> CampaignResult:
    """Run a deterministic campaign of ``cases`` cases derived from ``seed``.

    Failures are shrunk (when ``shrink``) and written out: a repro script and
    raw/shrunk case JSON under ``out_dir`` (for the nightly artifact upload),
    plus a replayable corpus entry under ``corpus_dir`` when given.  Stops
    early after ``max_failures`` failures or once ``time_budget`` seconds
    have elapsed; either way the log line names the stop reason.
    """
    started = time.perf_counter()
    emit = log or (lambda message: None)
    campaign = CampaignResult()
    for index in range(cases):
        elapsed = time.perf_counter() - started
        if time_budget is not None and elapsed >= time_budget:
            campaign.stop_reason = (f"time budget exhausted after "
                                    f"{campaign.cases_run} cases")
            break
        case_seed = campaign_case_seed(seed, index)
        case = generate_case(case_seed)
        report = run_case(case, check_stores=check_stores)
        campaign.cases_run += 1
        campaign.seeds.append(case_seed)
        if report.ok:
            emit(f"[{index + 1}/{cases}] ok   {case.label()} "
                 f"({report.elapsed:.2f}s)")
            continue
        emit(f"[{index + 1}/{cases}] FAIL {case.label()}")
        for failure in report.failures:
            emit(f"    {failure}")
        minimal = case
        if shrink:
            minimal, evals = shrink_case(case)
            emit(f"    shrunk to: {minimal.label()} ({evals} evaluations)")
        campaign.reports.append(report)
        campaign.shrunk.append(minimal)
        stem = f"case-{case_seed}"
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            campaign.artifacts.append(
                write_corpus_entry(case, out, f"{stem}-original",
                                   "as generated by the campaign"))
            campaign.artifacts.append(
                write_corpus_entry(minimal, out, f"{stem}-shrunk",
                                   "; ".join(report.failures)[:500]))
            campaign.artifacts.append(
                write_repro_script(minimal, out / f"repro-{stem}.py",
                                   report.failures))
        if corpus_dir is not None:
            campaign.artifacts.append(
                write_corpus_entry(minimal, corpus_dir, stem,
                                   "; ".join(report.failures)[:500]))
        if len(campaign.reports) >= max_failures:
            campaign.stop_reason = (f"failure budget ({max_failures}) "
                                    f"exhausted")
            break
    campaign.elapsed = time.perf_counter() - started
    return campaign
