"""Deterministic fuzz-case generation and serialization.

A :class:`FuzzCase` is one complete co-simulation scenario: a benchmark
profile, a trace recipe (length, seed, slicing), a machine (topology plus
the frontend/ROB/predictor knobs), and a steering policy.  Cases are drawn
by :func:`generate_case` as a *pure function of a single integer seed* —
the same seed always regenerates the byte-identical case (pinned by
``tests/test_fuzz.py``), which is what makes a nightly campaign
reproducible from its log line alone.

Cases round-trip losslessly through plain-JSON dictionaries
(:func:`case_to_dict` / :func:`case_from_dict`), which is the corpus-entry
and repro-script format, and :func:`case_text` is the canonical byte form
used for determinism pins and corpus deduplication.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Optional

from repro.core.config import (
    ClusterSpec,
    MachineConfig,
    Topology,
    random_topology,
    topology_config,
)
from repro.core.steering import (
    PolicySpec,
    Scheme,
    policy_registry,
    random_policy_spec,
)
from repro.sim.cache import canonical_text
from repro.trace.profiles import (
    BenchmarkProfile,
    InstructionMix,
    SPEC_INT_NAMES,
    get_profile,
    random_profile,
)
from repro.trace.slicing import select_simulation_slice
from repro.trace.synthetic import generate_trace
from repro.trace.trace import Trace

#: Corpus-entry / case-dictionary format; bump when the layout changes.
CASE_FORMAT = 1

#: Pools for the machine-level knobs (the topology pools live next to
#: :func:`repro.core.config.random_topology`).
FETCH_WIDTHS = (4, 6, 8)
COMMIT_WIDTHS = (4, 6, 8)
ROB_SIZES = (64, 128, 256)
PREDICTOR_ENTRIES = (64, 256, 1024)

#: Trace-length band.  Slicing simulates a 10x longer generation run, so
#: sliced cases are capped harder to keep campaign throughput up.
MIN_TRACE_UOPS = 200
MAX_TRACE_UOPS = 3_000
MAX_SLICED_TRACE_UOPS = 800


@dataclass(frozen=True)
class FuzzCase:
    """One co-simulation scenario, self-contained and JSON-serialisable."""

    #: seed the case was drawn from (None for hand-built / shrunk cases)
    case_seed: Optional[int]
    profile: BenchmarkProfile
    trace_uops: int
    trace_seed: int
    use_slicing: bool
    topology: Topology
    policy: PolicySpec
    predictor_entries: int = 256
    use_confidence: bool = True
    fetch_width: int = 6
    commit_width: int = 6
    rob_size: int = 128

    # ------------------------------------------------------------- builders
    def machine_config(self) -> MachineConfig:
        """The :class:`MachineConfig` this case simulates on."""
        config = topology_config(self.topology,
                                 predictor_entries=self.predictor_entries,
                                 use_confidence=self.use_confidence)
        return replace(config, fetch_width=self.fetch_width,
                       commit_width=self.commit_width, rob_size=self.rob_size)

    def build_trace(self) -> Trace:
        """Generate the case's trace (same recipe as the sweep engine)."""
        if self.use_slicing:
            full = generate_trace(self.profile, self.trace_uops * 10,
                                  seed=self.trace_seed)
            return select_simulation_slice(full)
        return generate_trace(self.profile, self.trace_uops,
                              seed=self.trace_seed)

    def label(self) -> str:
        """One-line human description for campaign logs."""
        helpers = ",".join(f"{s.datapath_width}b@{s.clock_ratio}x"
                           for s in self.topology.helpers) or "none"
        return (f"seed={self.case_seed} {self.profile.name}"
                f"/{self.policy.name} uops={self.trace_uops}"
                f" tseed={self.trace_seed} helpers=[{helpers}]"
                f"{' sliced' if self.use_slicing else ''}")


def generate_case(case_seed: int) -> FuzzCase:
    """Draw the fuzz case for ``case_seed`` (pure function of the seed)."""
    rng = random.Random(case_seed)
    if rng.random() < 0.35:
        profile = random_profile(rng, name=f"fuzz{case_seed}")
    else:
        profile = get_profile(rng.choice(SPEC_INT_NAMES))
    use_slicing = rng.random() < 0.15
    trace_uops = rng.randint(MIN_TRACE_UOPS, MAX_TRACE_UOPS)
    if use_slicing:
        trace_uops = min(trace_uops, MAX_SLICED_TRACE_UOPS)
    trace_seed = rng.randrange(0, 1_000_000)
    topology = random_topology(rng)
    if topology.num_helpers == 0 and rng.random() < 0.8:
        # A host-only machine mostly runs the baseline policy; the remaining
        # draws keep a helper policy so selector fallback paths (no helper
        # fits -> host) stay fuzzed too.
        policy = policy_registry.get("baseline")
    else:
        policy = random_policy_spec(rng)
    return FuzzCase(
        case_seed=case_seed,
        profile=profile,
        trace_uops=trace_uops,
        trace_seed=trace_seed,
        use_slicing=use_slicing,
        topology=topology,
        policy=policy,
        predictor_entries=rng.choice(PREDICTOR_ENTRIES),
        use_confidence=rng.random() < 0.8,
        fetch_width=rng.choice(FETCH_WIDTHS),
        commit_width=rng.choice(COMMIT_WIDTHS),
        rob_size=rng.choice(ROB_SIZES),
    )


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------
def case_to_dict(case: FuzzCase) -> dict:
    """Plain-JSON form of a case (corpus entries, repro scripts)."""
    return {
        "format": CASE_FORMAT,
        "case_seed": case.case_seed,
        "profile": asdict(case.profile),
        "trace_uops": case.trace_uops,
        "trace_seed": case.trace_seed,
        "use_slicing": case.use_slicing,
        "topology": [asdict(spec) for spec in case.topology.clusters],
        "policy": case.policy.to_key_dict(),
        "predictor_entries": case.predictor_entries,
        "use_confidence": case.use_confidence,
        "fetch_width": case.fetch_width,
        "commit_width": case.commit_width,
        "rob_size": case.rob_size,
    }


def case_from_dict(data: dict) -> FuzzCase:
    """Rebuild a case from :func:`case_to_dict` output (format-checked)."""
    fmt = data.get("format")
    if fmt != CASE_FORMAT:
        raise ValueError(f"unsupported fuzz-case format {fmt!r} "
                         f"(this build reads format {CASE_FORMAT})")
    profile_data = dict(data["profile"])
    profile = BenchmarkProfile(
        mix=InstructionMix(**profile_data.pop("mix")), **profile_data)
    topology = Topology(tuple(ClusterSpec(**spec)
                              for spec in data["topology"]))
    policy_data = data["policy"]
    policy = PolicySpec(
        name=policy_data["name"],
        schemes=frozenset(Scheme[name] for name in policy_data["schemes"]),
        selector=policy_data["selector"],
        knobs=tuple(sorted(policy_data["knobs"].items())))
    return FuzzCase(
        case_seed=data["case_seed"],
        profile=profile,
        trace_uops=data["trace_uops"],
        trace_seed=data["trace_seed"],
        use_slicing=data["use_slicing"],
        topology=topology,
        policy=policy,
        predictor_entries=data["predictor_entries"],
        use_confidence=data["use_confidence"],
        fetch_width=data["fetch_width"],
        commit_width=data["commit_width"],
        rob_size=data["rob_size"],
    )


def case_text(case: FuzzCase) -> str:
    """Canonical byte form of a case (sorted-key JSON, no whitespace).

    Two cases are the same scenario iff their texts are equal — the
    determinism pin (same seed => byte-identical case) and the corpus
    deduplication key.
    """
    return canonical_text(case_to_dict(case))
