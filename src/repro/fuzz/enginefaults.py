"""Fault-injection fuzzing of the supervised sweep engine.

The differential harness (:mod:`repro.fuzz.harness`) proves the *simulator
cores* agree; this module proves the *engine around them* cannot change an
answer.  Each case layers a random-but-seeded :class:`~repro.faultkit.
FaultPlan` (worker crashes, hangs, transient exceptions, latency noise,
cache/trace corruption) over a small sweep run through the supervised
engine, and compares every surviving job's result against a fault-free
serial ground truth: supervision may retry, degrade, respawn and quarantine,
but a result it *does* deliver must be identical to the one an undisturbed
run computes.  A quarantined job (its planned faults exhausted every
attempt) is a legitimate outcome — it just has to be absent from the
results and present in the report, never silently wrong.

Results are compared via ``dataclasses.asdict`` fingerprints: a
:class:`~repro.sim.metrics.SimulationResult` that crossed a process
boundary is not guaranteed to re-pickle to byte-identical *bytes* (pickle
memo layout differs), but its field values must match exactly — the same
convention as the engine tests' ``_sweep_fingerprint``.

Divergences are written as ``"kind": "engine-fault"`` corpus entries that
``repro.cli fuzz-replay`` replays alongside the differential corpus, so a
found-and-fixed supervision bug stays fixed.
"""

from __future__ import annotations

import dataclasses
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.steering import policy_registry
from repro.faultkit import FaultPlan
from repro.fuzz.generate import CASE_FORMAT
from repro.sim.engine import SweepEngine, SweepJob
from repro.sim.metrics import SimulationResult
from repro.sim.supervise import SupervisorPolicy
from repro.trace.profiles import SPEC_INT_NAMES

#: Entry discriminator in corpus JSON (differential entries carry no kind).
ENGINE_FAULT_KIND = "engine-fault"

#: Helper policies a generated case may sweep (kept to registered names so
#: a corpus entry replays against any checkout).
_POLICY_POOL = ("ir", "ir_nodest", "n888", "cr")


@dataclass(frozen=True)
class EngineFaultCase:
    """One seeded chaos scenario: a small sweep plus a fault plan."""

    case_seed: int
    plan_text: str
    benchmarks: Tuple[str, ...]
    policies: Tuple[str, ...]
    trace_uops: int
    sweep_seed: int
    jobs: int

    def label(self) -> str:
        return (f"engine-fault seed={self.case_seed} "
                f"[{'+'.join(self.benchmarks)} x {'+'.join(self.policies)} "
                f"@{self.trace_uops} jobs={self.jobs}] {self.plan_text}")

    def plan(self) -> FaultPlan:
        return FaultPlan.parse(self.plan_text)


def engine_case_to_dict(case: EngineFaultCase) -> dict:
    return {
        "case_seed": case.case_seed,
        "plan": case.plan_text,
        "benchmarks": list(case.benchmarks),
        "policies": list(case.policies),
        "trace_uops": case.trace_uops,
        "sweep_seed": case.sweep_seed,
        "jobs": case.jobs,
    }


def engine_case_from_dict(data: dict) -> EngineFaultCase:
    return EngineFaultCase(
        case_seed=int(data["case_seed"]),
        plan_text=str(data["plan"]),
        benchmarks=tuple(data["benchmarks"]),
        policies=tuple(data["policies"]),
        trace_uops=int(data["trace_uops"]),
        sweep_seed=int(data["sweep_seed"]),
        jobs=int(data["jobs"]),
    )


def generate_engine_case(case_seed: int) -> EngineFaultCase:
    """Draw a valid chaos scenario from ``case_seed`` (pure function).

    Rates are kept low enough that three attempts almost always converge
    (the deterministic draws make the outcome reproducible either way), and
    the plan's supervision overrides keep deadlines/backoff small so a
    campaign of cases stays fast.
    """
    rng = random.Random(case_seed)
    benchmarks = tuple(rng.sample(list(SPEC_INT_NAMES), 2))
    registered = [name for name in _POLICY_POOL
                  if name in policy_registry.names()]
    policies = tuple(rng.sample(registered, min(2, len(registered))))
    parts = [f"seed={rng.randrange(1 << 16)}"]
    for kind, ceiling in (("crash", 0.30), ("hang", 0.20),
                          ("transient", 0.35), ("slow", 0.25),
                          ("corrupt_result", 0.5), ("corrupt_trace", 0.5)):
        rate = round(rng.uniform(0.0, ceiling), 3)
        if rate > 0.0:
            parts.append(f"{kind}={rate}")
    # Rarely, pin one benchmark:policy sticky-crashed so the quarantine
    # path (exhaust attempts, ledger entry, campaign survives) gets fuzzed
    # too, not just the converging retries.
    if rng.random() < 0.25:
        parts.append(f"sticky=crash@{rng.choice(benchmarks)}:"
                     f"{rng.choice(policies)}")
    parts.append("deadline=10")
    parts.append("backoff=0.01")
    parts.append("hang_delay=30")
    return EngineFaultCase(
        case_seed=case_seed,
        plan_text=",".join(parts),
        benchmarks=benchmarks,
        policies=policies,
        trace_uops=rng.choice((300, 500, 800)),
        sweep_seed=rng.randrange(1 << 16),
        jobs=rng.choice((1, 2)),
    )


@dataclass
class EngineFaultReport:
    """Outcome of one chaos case (``ok`` iff no failure strings)."""

    case: EngineFaultCase
    failures: List[str] = field(default_factory=list)
    survivors: int = 0
    quarantined: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _divergent_fields(result: SimulationResult,
                      expected: SimulationResult) -> Optional[List[str]]:
    """Field names on which the two results' values differ, None if equal.

    Structural equality over ``dataclasses.asdict`` — not pickle bytes:
    a result that crossed a process boundary loses shared-subobject
    aliasing, which changes the pickle memo layout without changing any
    value (see the module docstring).
    """
    left = dataclasses.asdict(result)
    right = dataclasses.asdict(expected)
    if left == right:
        return None
    return [f.name for f in dataclasses.fields(SimulationResult)
            if left[f.name] != right[f.name]]


def _suite_jobs(case: EngineFaultCase, engine: SweepEngine) -> List[SweepJob]:
    from repro.trace.profiles import get_profile

    profiles = [get_profile(name) for name in case.benchmarks]
    return engine.build_suite_jobs(profiles, list(case.policies),
                                   case.trace_uops, case.sweep_seed)


def run_engine_fault_case(case: EngineFaultCase) -> EngineFaultReport:
    """Run ``case`` through the supervised engine and check the contract.

    Ground truth first (serial, fault-free), then the same sweep with the
    fault plan active — parallel when ``case.jobs > 1`` (oversubscription
    allowed: chaos correctness must not depend on the host's CPU count).
    """
    started = time.perf_counter()
    report = EngineFaultReport(case=case)
    failures = report.failures
    no_faults = FaultPlan(seed=0)  # explicit: ignore any ambient REPRO_FAULTS
    with SweepEngine(jobs=1, faults=no_faults) as truth_engine:
        jobs = _suite_jobs(case, truth_engine)
        truth = truth_engine.run_jobs(jobs)
    if len(truth) != len(jobs):
        failures.append("fault-free ground truth lost jobs: "
                        f"{len(truth)}/{len(jobs)} completed")
        report.elapsed = time.perf_counter() - started
        return report

    with tempfile.TemporaryDirectory(prefix="repro-enginefuzz-") as tmp:
        engine = SweepEngine(
            jobs=case.jobs, allow_oversubscribe=True,
            faults=case.plan(),
            supervisor=SupervisorPolicy(poll_interval=0.005),
            quarantine_path=str(Path(tmp) / "failed-jobs.json"))
        with engine:
            jobs = _suite_jobs(case, engine)
            try:
                faulted = engine.run_jobs(jobs)
            except Exception as exc:  # noqa: BLE001 — any escape is a finding
                failures.append("supervised engine crashed instead of "
                                f"containing the faults: "
                                f"{type(exc).__name__}: {exc}")
                report.elapsed = time.perf_counter() - started
                return report
            engine_report = engine.report
        report.survivors = len(faulted)
        report.quarantined = len(engine_report.quarantined)
        if report.survivors + report.quarantined != len(jobs):
            failures.append(
                "jobs lost without a quarantine record: "
                f"{report.survivors} surviving + {report.quarantined} "
                f"quarantined != {len(jobs)} submitted")
        for job, result in faulted.items():
            diffs = _divergent_fields(result, truth[job])
            if diffs is not None:
                token = f"{job.benchmark}:{job.policy}"
                failures.append(
                    f"surviving job {token} diverged from the fault-free "
                    f"serial truth on: {', '.join(diffs) or '(unknown)'}")
    report.elapsed = time.perf_counter() - started
    return report


# ---------------------------------------------------------------------------
# corpus entries + replay
# ---------------------------------------------------------------------------
def write_engine_corpus_entry(case: EngineFaultCase, directory,
                              name: str, description: str = "") -> Path:
    """Write an ``engine-fault`` corpus entry (replayed by fuzz-replay)."""
    import json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entry = {
        "format": CASE_FORMAT,
        "kind": ENGINE_FAULT_KIND,
        "name": name,
        "description": description,
        "case": engine_case_to_dict(case),
    }
    path = directory / f"{name}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_engine_corpus_dir(directory) -> List[Tuple[str, EngineFaultCase]]:
    """Load the ``engine-fault`` entries under ``directory`` (sorted)."""
    import json

    directory = Path(directory)
    entries: List[Tuple[str, EngineFaultCase]] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("kind") != ENGINE_FAULT_KIND:
            continue
        entries.append((data.get("name", path.stem),
                        engine_case_from_dict(data["case"])))
    return entries


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------
@dataclass
class EngineFaultCampaign:
    """Summary of one chaos-fuzzing campaign (``ok`` iff nothing failed)."""

    cases_run: int = 0
    reports: List[EngineFaultReport] = field(default_factory=list)
    artifacts: List[Path] = field(default_factory=list)
    elapsed: float = 0.0
    stop_reason: str = "completed"

    @property
    def ok(self) -> bool:
        return not self.reports


def run_engine_fault_campaign(
        cases: int, seed: int = 0, corpus_dir=None,
        time_budget: Optional[float] = None, max_failures: int = 5,
        log: Optional[Callable[[str], None]] = None) -> EngineFaultCampaign:
    """Run ``cases`` seeded chaos scenarios; divergences grow the corpus."""
    from repro.fuzz.harness import campaign_case_seed

    started = time.perf_counter()
    emit = log or (lambda message: None)
    campaign = EngineFaultCampaign()
    for index in range(cases):
        elapsed = time.perf_counter() - started
        if time_budget is not None and elapsed >= time_budget:
            campaign.stop_reason = (f"time budget exhausted after "
                                    f"{campaign.cases_run} cases")
            break
        case_seed = campaign_case_seed(seed, index)
        case = generate_engine_case(case_seed)
        report = run_engine_fault_case(case)
        campaign.cases_run += 1
        if report.ok:
            emit(f"[{index + 1}/{cases}] ok   {case.label()} "
                 f"({report.survivors} survived, "
                 f"{report.quarantined} quarantined, {report.elapsed:.2f}s)")
            continue
        emit(f"[{index + 1}/{cases}] FAIL {case.label()}")
        for failure in report.failures:
            emit(f"    {failure}")
        campaign.reports.append(report)
        if corpus_dir is not None:
            campaign.artifacts.append(write_engine_corpus_entry(
                case, corpus_dir, f"engine-fault-{case_seed}",
                "; ".join(report.failures)[:500]))
        if len(campaign.reports) >= max_failures:
            campaign.stop_reason = (f"failure budget ({max_failures}) "
                                    f"exhausted")
            break
    campaign.elapsed = time.perf_counter() - started
    return campaign
