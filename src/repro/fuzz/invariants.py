"""Standalone invariant checks for co-simulated runs.

Differential comparison catches the wheel and the reference loop
*disagreeing*; these checks catch them agreeing on something impossible.
Two kinds:

* :class:`CommitOrderRecorder` attaches to the simulator's ``commit_hook``
  and verifies the dynamic retirement stream itself: program-order
  (strictly increasing ``seq``), monotone commit timestamps on the wide
  clock, and the commit-width bound per wide cycle.
* :func:`check_result_invariants` inspects a finished
  :class:`~repro.sim.metrics.SimulationResult` against the machine it ran
  on: conservation between committed/helper/split counts, clock-domain
  arithmetic, scheduler-occupancy bounds, per-cluster activity/energy
  consistency (every energy term >= 0, breakdowns keyed exactly by the
  topology's cluster names).

Both return violations as human-readable strings rather than raising, so
the harness can report every broken invariant of a case at once.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import MachineConfig, Topology
from repro.pipeline.clocking import ClockingModel
from repro.sim.metrics import SimulationResult

#: Tolerance for float identities (slow/fast cycle ratio arithmetic).
_EPS = 1e-9


class CommitOrderRecorder:
    """A ``commit_hook`` that checks the retirement stream as it happens."""

    def __init__(self, commit_width: int) -> None:
        self.commit_width = commit_width
        self.retired_entries = 0
        self.violations: List[str] = []
        self._last_seq: Optional[int] = None
        self._last_cycle: Optional[int] = None

    def __call__(self, retired, t: int) -> None:
        if len(retired) > self.commit_width:
            self.violations.append(
                f"commit width exceeded: {len(retired)} entries retired at "
                f"fast cycle {t} (commit_width={self.commit_width})")
        if self._last_cycle is not None and t < self._last_cycle:
            self.violations.append(
                f"commit timestamps regressed: cycle {t} after "
                f"{self._last_cycle}")
        self._last_cycle = t
        for entry in retired:
            self.retired_entries += 1
            if self._last_seq is not None and entry.seq <= self._last_seq:
                self.violations.append(
                    f"commit order violated: seq {entry.seq} retired after "
                    f"seq {self._last_seq} at fast cycle {t}")
            self._last_seq = entry.seq


def check_result_invariants(result: SimulationResult, config: MachineConfig,
                            trace_uops: int,
                            power_enabled: bool = True) -> List[str]:
    """Return every invariant the finished result violates (empty = clean)."""
    topology: Topology = config.cluster_topology()
    violations: List[str] = []

    def bad(message: str) -> None:
        violations.append(message)

    # ---------------------------------------------------------- conservation
    if result.committed_uops != trace_uops:
        bad(f"committed_uops {result.committed_uops} != trace length "
            f"{trace_uops}")
    if not 0 <= result.helper_uops <= result.committed_uops:
        bad(f"helper_uops {result.helper_uops} outside "
            f"[0, {result.committed_uops}]")
    for name in ("copies", "prefetched_copies", "replicated_loads",
                 "recoveries", "squashed_uops", "split_uops"):
        if getattr(result, name) < 0:
            bad(f"{name} is negative: {getattr(result, name)}")
    if result.prefetched_copies > result.copies:
        bad(f"prefetched_copies {result.prefetched_copies} exceeds total "
            f"copies {result.copies}")
    prediction = result.prediction
    if min(prediction.correct, prediction.non_fatal, prediction.fatal) < 0:
        bad("width-prediction breakdown has a negative bucket")
    # Note: ``recoveries`` is NOT comparable to ``prediction.fatal`` — the
    # flush trigger is judged against the executing cluster's width (and
    # includes via-CR carries and dest-less uops), while the Figure 5
    # breakdown counts result-producing uops against the steer width.  What
    # must hold is that every flush squashes at least its trigger uop.
    if result.squashed_uops < result.recoveries:
        bad(f"{result.recoveries} recoveries squashed only "
            f"{result.squashed_uops} uops (each flush squashes >= 1)")

    # --------------------------------------------------------- clock domains
    clocking = ClockingModel.from_ratios(
        [spec.clock_ratio for spec in topology.clusters])
    if trace_uops and result.fast_cycles <= 0:
        bad(f"non-empty trace finished in {result.fast_cycles} fast cycles")
    if abs(result.fast_cycles - result.slow_cycles * clocking.ratio) > (
            _EPS * max(1.0, result.fast_cycles)):
        bad(f"clock arithmetic broken: fast_cycles {result.fast_cycles} != "
            f"slow_cycles {result.slow_cycles} x ratio {clocking.ratio}")

    # ----------------------------------------------------- occupancy bounds
    expected_names = {spec.name for spec in topology.clusters}
    if set(result.cluster_occupancy) != expected_names:
        bad(f"cluster_occupancy keyed by {sorted(result.cluster_occupancy)} "
            f"instead of the topology's {sorted(expected_names)}")
    for spec in topology.clusters:
        occupancy = result.cluster_occupancy.get(spec.name)
        if occupancy is None:
            continue
        if not -_EPS <= occupancy <= spec.queue_size + _EPS:
            bad(f"cluster {spec.name!r} mean occupancy {occupancy:.3f} "
                f"outside [0, queue_size={spec.queue_size}]")
    for name, value in (("wide_to_narrow_imbalance",
                         result.wide_to_narrow_imbalance),
                        ("narrow_to_wide_imbalance",
                         result.narrow_to_wide_imbalance),
                        ("dl0_hit_rate", result.dl0_hit_rate)):
        if not -_EPS <= value <= 1.0 + _EPS:
            bad(f"{name} {value} outside [0, 1]")

    # ------------------------------------------------- per-cluster activity
    if set(result.cluster_activity) != expected_names:
        bad(f"cluster_activity keyed by {sorted(result.cluster_activity)} "
            f"instead of the topology's {sorted(expected_names)}")
    else:
        for index, spec in enumerate(topology.clusters):
            cluster = result.cluster_activity[spec.name]
            expected = result.fast_cycles // clocking.periods[index]
            if cluster.cycles != expected:
                bad(f"cluster {spec.name!r} burned {cluster.cycles} clock "
                    f"cycles; its period {clocking.periods[index]} over "
                    f"{result.fast_cycles} fast cycles implies {expected}")

    # ----------------------------------------------------------- energy
    if power_enabled:
        if set(result.power) != expected_names:
            bad(f"power breakdowns keyed by {sorted(result.power)} instead "
                f"of the topology's {sorted(expected_names)}")
        for name, breakdown in result.power.items():
            for structure, energy in breakdown.per_structure.items():
                if energy < 0:
                    bad(f"cluster {name!r} has negative energy "
                        f"{energy} for structure {structure!r}")
        if result.shared_power is not None:
            for structure, energy in result.shared_power.per_structure.items():
                if energy < 0:
                    bad(f"shared structure {structure!r} has negative "
                        f"energy {energy}")
        else:
            bad("energy accounting enabled but shared_power is missing")
        if result.energy < 0:
            bad(f"total energy is negative: {result.energy}")
    else:
        if result.power or result.shared_power is not None:
            bad("energy accounting disabled but the result carries "
                "power breakdowns")

    return violations
