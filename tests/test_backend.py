"""Backend selection (REPRO_BACKEND / --backend) and worker clamping.

Covers the selection contract of :mod:`repro.sim.hotstate`:

* ``REPRO_BACKEND=python`` forces the pure-python fallback even when the
  compiled extension is built;
* ``REPRO_BACKEND=compiled`` fails loudly (with build instructions) when
  the extension is not importable;
* auto-detection picks the compiled backend exactly when it imports;
* a present-but-broken extension (import raises) degrades to python with
  a single RuntimeWarning — a failed build changes speed, never results;

plus the :class:`~repro.sim.engine.SweepEngine` oversubscription clamp.
"""

from __future__ import annotations

import sys
import warnings

import pytest

from repro.sim import hotstate
from repro.sim.engine import SweepEngine, available_cpus, default_jobs
from repro.sim.hotstate import (
    backend_choice,
    compiled_available,
    detected_backend,
    resolve_backend,
)
from repro.sim.simulator import HelperClusterSimulator
from repro.trace.profiles import SPEC_INT_2000
from repro.trace.synthetic import generate_trace


@pytest.fixture
def fresh_kernel_cache():
    """Reset hotstate's memoised import state around a test."""
    saved = hotstate._kernel_cache, hotstate._warned_broken
    hotstate._kernel_cache = None
    hotstate._warned_broken = False
    try:
        yield
    finally:
        hotstate._kernel_cache, hotstate._warned_broken = saved


def _make_sim(**kwargs):
    trace = generate_trace(SPEC_INT_2000["gzip"], 400, seed=1)
    return HelperClusterSimulator(trace, **kwargs)


class TestBackendChoice:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(hotstate.BACKEND_ENV, raising=False)
        assert backend_choice() == "auto"

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv(hotstate.BACKEND_ENV, "python")
        assert backend_choice() == "python"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(hotstate.BACKEND_ENV, "python")
        assert backend_choice("compiled") == "compiled"

    def test_whitespace_and_case_are_normalised(self, monkeypatch):
        monkeypatch.setenv(hotstate.BACKEND_ENV, "  Python ")
        assert backend_choice() == "python"
        assert backend_choice("") == "auto"

    def test_invalid_choice_raises(self, monkeypatch):
        monkeypatch.setenv(hotstate.BACKEND_ENV, "fortran")
        with pytest.raises(ValueError, match="fortran"):
            backend_choice()
        with pytest.raises(ValueError, match="--backend"):
            backend_choice("fortran")


class TestBackendResolution:
    def test_forced_python_never_loads_the_kernel(self, monkeypatch):
        monkeypatch.setenv(hotstate.BACKEND_ENV, "python")
        assert resolve_backend() == ("python", None)
        sim = _make_sim()
        assert sim.backend == "python"
        assert sim._kernel is None

    def test_per_instance_override_forces_python(self, monkeypatch):
        monkeypatch.delenv(hotstate.BACKEND_ENV, raising=False)
        sim = _make_sim(backend="python")
        assert sim.backend == "python"
        assert sim._kernel is None

    def test_forced_compiled_errors_clearly_when_absent(self, monkeypatch):
        monkeypatch.setattr(hotstate, "_kernel_cache", (False, None))
        with pytest.raises(RuntimeError, match="build_ext"):
            resolve_backend("compiled")

    def test_auto_detects_compiled_when_built(self):
        if not compiled_available():
            pytest.skip("repro._corekernel extension not built")
        assert detected_backend() == "compiled"
        sim = _make_sim()
        assert sim.backend == "compiled"
        assert sim._kernel is not None

    def test_auto_falls_back_silently_when_never_built(
            self, monkeypatch, fresh_kernel_cache):
        monkeypatch.delenv(hotstate.BACKEND_ENV, raising=False)
        monkeypatch.delitem(sys.modules, "repro._corekernel", raising=False)
        real_import = __builtins__["__import__"] if isinstance(
            __builtins__, dict) else __builtins__.__import__

        def missing_import(name, *args, **kwargs):
            if name == "repro._corekernel":
                raise ModuleNotFoundError(
                    "No module named 'repro._corekernel'")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr("builtins.__import__", missing_import)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning -> failure
            assert resolve_backend() == ("python", None)

    def test_broken_build_degrades_with_a_single_warning(
            self, monkeypatch, fresh_kernel_cache):
        monkeypatch.delenv(hotstate.BACKEND_ENV, raising=False)
        monkeypatch.delitem(sys.modules, "repro._corekernel", raising=False)
        real_import = __builtins__["__import__"] if isinstance(
            __builtins__, dict) else __builtins__.__import__

        def broken_import(name, *args, **kwargs):
            if name == "repro._corekernel":
                raise ImportError("simulated broken build: undefined symbol")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr("builtins.__import__", broken_import)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_backend() == ("python", None)
            # Memoised: the second resolution must not warn again.
            assert resolve_backend() == ("python", None)
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "falling back" in str(relevant[0].message)

    def test_both_backends_produce_identical_results(self):
        if not compiled_available():
            pytest.skip("repro._corekernel extension not built")
        import pickle
        trace = generate_trace(SPEC_INT_2000["gcc"], 1_500, seed=99)
        py = HelperClusterSimulator(trace, backend="python").run()
        cc = HelperClusterSimulator(trace, backend="compiled").run()
        assert pickle.dumps(py) == pickle.dumps(cc)


class TestSweepEngineJobClamp:
    def test_oversubscribed_request_is_clamped(self):
        engine = SweepEngine(jobs=available_cpus() + 63)
        try:
            assert engine.jobs == available_cpus()
            assert engine.jobs_clamped_from == available_cpus() + 63
        finally:
            engine.close()

    def test_explicit_override_keeps_the_request(self):
        engine = SweepEngine(jobs=available_cpus() + 3,
                             allow_oversubscribe=True)
        try:
            assert engine.jobs == available_cpus() + 3
            assert engine.jobs_clamped_from is None
        finally:
            engine.close()

    def test_auto_and_serial_are_not_clamped(self):
        auto = SweepEngine(jobs=0)
        serial = SweepEngine(jobs=1)
        try:
            assert auto.jobs == default_jobs()
            assert auto.jobs_clamped_from is None
            assert serial.jobs == 1
            assert serial.jobs_clamped_from is None
        finally:
            auto.close()
            serial.close()

    def test_clamp_is_reported_in_the_cache_footer(self, tmp_path):
        from repro.sim.cache import ResultCache
        from repro.sim.reporting import cache_stats_line
        cache = ResultCache(tmp_path / "cache")
        engine = SweepEngine(jobs=available_cpus() + 7, cache=cache)
        try:
            line = cache_stats_line(cache, engine=engine)
            assert "clamped from" in line
            assert f"jobs={engine.jobs}" in line
            # An unclamped engine adds nothing.
            serial = SweepEngine(jobs=1)
            try:
                assert "clamped" not in cache_stats_line(cache, engine=serial)
            finally:
                serial.close()
        finally:
            engine.close()
