"""Tests for the parallel sweep engine, its determinism and the result cache.

The engine's core contract is that *how* a sweep executes — serially in one
process, fanned over a worker pool, or replayed from the on-disk cache —
never changes *what* it computes.  These tests pin that contract, plus the
cache's corruption handling and the determinism of trace generation itself.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import helper_cluster_config
from repro.sim.cache import ResultCache, result_key
from repro.sim.engine import SweepEngine, SweepJob, execute_job, job_seed
from repro.sim.experiment import ExperimentRunner, run_spec_suite
from repro.sim.metrics import SimulationResult
from repro.trace.profiles import get_profile
from repro.trace.synthetic import generate_trace

POLICIES = ["n888", "ir"]
BENCHMARKS = ["gcc", "gzip"]
UOPS = 1200
SEED = 2006


def _sweep_fingerprint(sweep) -> dict:
    """Full field-level dump of a sweep, for bit-identity comparisons."""
    out = {}
    for bench, result in sweep.results.items():
        out[bench] = {"baseline": dataclasses.asdict(result.baseline)}
        for policy, run in result.by_policy.items():
            out[bench][policy] = dataclasses.asdict(run)
    return out


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_trace_generation_is_deterministic(self):
        profile = get_profile("gcc")
        a = generate_trace(profile, 800, seed=7)
        b = generate_trace(profile, 800, seed=7)
        assert len(a) == len(b)
        for ua, ub in zip(a.uops, b.uops):
            assert ua == ub

    def test_trace_generation_seed_sensitivity(self):
        profile = get_profile("gcc")
        a = generate_trace(profile, 800, seed=7)
        b = generate_trace(profile, 800, seed=8)
        assert any(ua != ub for ua, ub in zip(a.uops, b.uops))

    def test_job_reexecution_is_bit_identical(self):
        job = SweepJob("gzip", "ir", UOPS, job_seed(SEED, "gzip"))
        config = helper_cluster_config()
        first = execute_job(job, config)
        second = execute_job(job, config)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_serial_and_parallel_paths_identical(self):
        serial = run_spec_suite(POLICIES, trace_uops=UOPS, seed=SEED,
                                benchmarks=BENCHMARKS, jobs=1)
        parallel = run_spec_suite(POLICIES, trace_uops=UOPS, seed=SEED,
                                  benchmarks=BENCHMARKS, jobs=2,
                                  allow_oversubscribe=True)
        assert _sweep_fingerprint(serial) == _sweep_fingerprint(parallel)

    def test_job_seed_is_pure(self):
        assert job_seed(2006, "gcc") == job_seed(2006, "gcc")


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------
class TestResultCache:
    def _run(self, tmp_path, use_cache=True):
        return run_spec_suite(["n888"], trace_uops=UOPS, seed=SEED,
                              benchmarks=["gcc"], cache_dir=str(tmp_path),
                              use_cache=use_cache)

    def test_cached_rerun_is_identical(self, tmp_path):
        cold = self._run(tmp_path)
        warm = self._run(tmp_path)
        assert _sweep_fingerprint(cold) == _sweep_fingerprint(warm)

    def test_warm_run_hits_cache(self, tmp_path):
        self._run(tmp_path)
        runner = ExperimentRunner(trace_uops=UOPS, seed=SEED,
                                  cache_dir=str(tmp_path))
        runner.run_suite([get_profile("gcc")], ["n888"])
        assert runner.cache.hits == 2          # baseline + policy
        assert runner.cache.misses == 0

    def test_bypass_flag_skips_reads(self, tmp_path):
        self._run(tmp_path)
        runner = ExperimentRunner(trace_uops=UOPS, seed=SEED,
                                  cache_dir=str(tmp_path), use_cache=False)
        sweep = runner.run_suite([get_profile("gcc")], ["n888"])
        assert runner.cache.hits == 0          # reads bypassed...
        assert runner.cache.stores == 2        # ...but entries refreshed
        assert _sweep_fingerprint(sweep) == _sweep_fingerprint(self._run(tmp_path))

    def test_corrupted_entry_detected_and_recomputed(self, tmp_path):
        runner = ExperimentRunner(trace_uops=UOPS, seed=SEED,
                                  cache_dir=str(tmp_path))
        reference = runner.run_suite([get_profile("gcc")], ["n888"])
        # Flip bytes in every stored payload.
        entries = list(tmp_path.rglob("*.res"))
        assert entries
        for path in entries:
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        fresh = ExperimentRunner(trace_uops=UOPS, seed=SEED,
                                 cache_dir=str(tmp_path))
        recomputed = fresh.run_suite([get_profile("gcc")], ["n888"])
        assert fresh.cache.corrupt_drops == len(entries)
        assert fresh.cache.hits == 0
        assert _sweep_fingerprint(recomputed) == _sweep_fingerprint(reference)

    def test_truncated_entry_detected(self, tmp_path):
        writer = ResultCache(tmp_path)
        key = result_key("probe")
        stored = SimulationResult(benchmark="x", policy="y")
        writer.store(key, stored)
        path = writer.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        # The storing process memoises its own (known-good) result and never
        # re-decodes the disk entry, so it is immune to the truncation...
        assert writer.load(key) is stored
        assert writer.memo_hits == 1
        # ...while a fresh process reading the same directory detects it.
        cache = ResultCache(tmp_path)
        assert cache.load(key) is None
        assert cache.corrupt_drops == 1
        assert not path.exists()  # dropped so the slot rewrites cleanly

    def test_stale_key_mismatch_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key_a, key_b = result_key("a"), result_key("b")
        cache.store(key_a, SimulationResult(benchmark="x", policy="y"))
        target = cache.path_for(key_b)
        target.parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key_a).rename(target)
        assert cache.load(key_b) is None
        assert cache.corrupt_drops == 1

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "never", enabled=False)
        cache.store(result_key("k"), SimulationResult(benchmark="x", policy="y"))
        assert cache.load(result_key("k")) is None
        assert not (tmp_path / "never").exists()

    def test_load_once_per_process_and_byte_counters(self, tmp_path):
        writer = ResultCache(tmp_path)
        key = result_key("probe")
        writer.store(key, SimulationResult(benchmark="x", policy="y"))
        assert writer.bytes_written > 0

        reader = ResultCache(tmp_path)
        first = reader.load(key)
        assert first is not None
        assert reader.bytes_read > 0
        bytes_after_first = reader.bytes_read
        # The second load of the same key must not re-read or re-decode the
        # on-disk entry — even if the file vanishes in the meantime.
        reader.path_for(key).unlink()
        assert reader.load(key) is first
        assert reader.bytes_read == bytes_after_first
        assert reader.memo_hits == 1
        assert reader.hits == 2

    def test_cache_stats_line_mentions_hits_misses_and_bytes(self, tmp_path):
        from repro.sim.reporting import cache_stats_line

        cache = ResultCache(tmp_path)
        cache.store(result_key("k"), SimulationResult(benchmark="x", policy="y"))
        fresh = ResultCache(tmp_path)
        fresh.load(result_key("k"))
        fresh.load(result_key("absent"))
        line = cache_stats_line(fresh)
        assert "hits=1" in line and "misses=1" in line
        assert "read=" in line and "written=" in line
        assert "\n" not in line  # a one-line table footer


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------
class TestCacheKeys:
    def test_key_sensitivity(self):
        engine = SweepEngine(config=helper_cluster_config())
        base = SweepJob("gcc", "ir", 1000, 2006)
        assert engine.key_for(base) == engine.key_for(SweepJob("gcc", "ir", 1000, 2006))
        for other in [SweepJob("gzip", "ir", 1000, 2006),
                      SweepJob("gcc", "n888", 1000, 2006),
                      SweepJob("gcc", "ir", 2000, 2006),
                      SweepJob("gcc", "ir", 1000, 7),
                      SweepJob("gcc", "ir", 1000, 2006, use_slicing=True)]:
            assert engine.key_for(other) != engine.key_for(base)

    def test_key_depends_on_config(self):
        narrow8 = SweepEngine(config=helper_cluster_config(narrow_width=8))
        narrow16 = SweepEngine(config=helper_cluster_config(narrow_width=16))
        job = SweepJob("gcc", "ir", 1000, 2006)
        assert narrow8.key_for(job) != narrow16.key_for(job)

    def test_baseline_key_ignores_sweep_config(self):
        # The baseline always runs on the monolithic machine, so its cached
        # result is shared across helper-config sweeps.
        narrow8 = SweepEngine(config=helper_cluster_config(narrow_width=8))
        narrow16 = SweepEngine(config=helper_cluster_config(narrow_width=16))
        job = SweepJob("gcc", "baseline", 1000, 2006)
        assert narrow8.key_for(job) == narrow16.key_for(job)


# ---------------------------------------------------------------------------
# engine lifecycle: the private trace-store directory must never leak
# ---------------------------------------------------------------------------
class TestEngineLifecycle:
    def test_close_removes_the_private_trace_dir(self):
        engine = SweepEngine(config=helper_cluster_config())
        store_dir = engine.trace_store.store_dir
        assert store_dir.is_dir()
        engine.close()
        assert not store_dir.exists()

    def test_close_is_idempotent(self):
        engine = SweepEngine(config=helper_cluster_config())
        engine.close()
        engine.close()  # must not raise on the already-removed directory

    def test_context_manager_cleans_up(self):
        with SweepEngine(config=helper_cluster_config()) as engine:
            store_dir = engine.trace_store.store_dir
            engine.run_jobs([SweepJob("gcc", "ir", 400, SEED)])
            assert store_dir.is_dir()
        assert not store_dir.exists()

    def test_context_manager_cleans_up_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SweepEngine(config=helper_cluster_config()) as engine:
                store_dir = engine.trace_store.store_dir
                raise RuntimeError("boom")
        assert not store_dir.exists()

    def test_caller_supplied_dir_is_preserved(self, tmp_path):
        store_dir = tmp_path / "traces"
        store_dir.mkdir()
        with SweepEngine(config=helper_cluster_config(),
                         trace_store_dir=str(store_dir)) as engine:
            engine.run_jobs([SweepJob("gcc", "ir", 400, SEED)])
        assert store_dir.is_dir(), "the caller owns an explicit directory"

    def test_garbage_collected_engine_removes_its_dir(self):
        import gc

        engine = SweepEngine(config=helper_cluster_config())
        store_dir = engine.trace_store.store_dir
        del engine
        gc.collect()
        assert not store_dir.exists()
