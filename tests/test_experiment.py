"""Tests for the experiment runner, reporting helpers and the CLI."""

import pytest

from repro import quick_speedup
from repro.cli import main as cli_main
from repro.sim.experiment import (
    DEFAULT_TRACE_UOPS,
    BenchmarkResult,
    ExperimentRunner,
    PolicySweepResult,
    run_spec_suite,
)
from repro.sim.reporting import (
    format_ladder_summary,
    format_policy_table,
    format_series,
    format_table,
    results_to_rows,
    to_csv,
)
from repro.trace.profiles import get_profile


@pytest.fixture(scope="module")
def small_sweep():
    """A 2-benchmark, 2-policy sweep with tiny traces, shared by this module."""
    return run_spec_suite(["n888", "n888_br_lr"], trace_uops=1500, seed=21,
                          benchmarks=["gcc", "gzip"])


class TestEd2Guards:
    def _result(self, energy):
        from repro.power.wattch import PowerBreakdown
        from repro.sim.metrics import SimulationResult

        power = {"wide": PowerBreakdown({"clock": energy})} if energy else {}
        return SimulationResult(benchmark="b", policy="p", slow_cycles=1000.0,
                                power=power)

    def test_energyless_candidate_reports_zero_not_full_gain(self):
        """A candidate run with energy accounting disabled must not read as
        a fake +100% ED² gain against an energy-carrying baseline."""
        bench = BenchmarkResult(benchmark="b", baseline=self._result(100.0),
                                by_policy={"p": self._result(0.0)})
        assert bench.ed2_improvement("p") == 0.0

    def test_energyless_baseline_reports_zero(self):
        bench = BenchmarkResult(benchmark="b", baseline=self._result(0.0),
                                by_policy={"p": self._result(100.0)})
        assert bench.ed2_improvement("p") == 0.0


class TestExperimentRunner:
    def test_default_trace_length_positive(self):
        assert DEFAULT_TRACE_UOPS > 0

    def test_invalid_trace_length(self):
        with pytest.raises(ValueError):
            ExperimentRunner(trace_uops=0)

    def test_trace_and_baseline_cached(self):
        runner = ExperimentRunner(trace_uops=800, seed=3)
        profile = get_profile("gcc")
        trace_a = runner.trace_for(profile)
        trace_b = runner.trace_for(profile)
        assert trace_a is trace_b
        base_a = runner.baseline_for(profile)
        base_b = runner.baseline_for(profile)
        assert base_a is base_b

    def test_run_policy_baseline_shortcut(self):
        runner = ExperimentRunner(trace_uops=800, seed=3)
        profile = get_profile("gcc")
        assert runner.run_policy(profile, "baseline") is runner.baseline_for(profile)

    def test_run_benchmark(self):
        runner = ExperimentRunner(trace_uops=1000, seed=5)
        result = runner.run_benchmark(get_profile("gzip"), ["n888"])
        assert isinstance(result, BenchmarkResult)
        assert "n888" in result.by_policy
        assert isinstance(result.speedup("n888"), float)

    def test_slicing_mode(self):
        runner = ExperimentRunner(trace_uops=600, seed=5, use_slicing=True)
        trace = runner.trace_for(get_profile("gcc"))
        assert len(trace) >= 500


class TestSweep(object):
    def test_sweep_shape(self, small_sweep):
        assert small_sweep.benchmarks == ["gcc", "gzip"]
        assert small_sweep.policies == ["n888", "n888_br_lr"]
        assert set(small_sweep.results) == {"gcc", "gzip"}

    def test_mean_metrics(self, small_sweep):
        for policy in small_sweep.policies:
            assert isinstance(small_sweep.mean_speedup(policy), float)
            assert 0.0 <= small_sweep.mean_helper_fraction(policy) <= 1.0
            assert 0.0 <= small_sweep.mean_copy_fraction(policy) <= 1.0

    def test_speedup_series(self, small_sweep):
        series = small_sweep.speedup_series("n888")
        assert set(series) == {"gcc", "gzip"}

    def test_all_commits_match_trace(self, small_sweep):
        for name, bench in small_sweep.results.items():
            for result in bench.by_policy.values():
                assert result.committed_uops == bench.baseline.committed_uops


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1.23456], ["yy", 2.0]], title="T")
        assert "T" in text and "x" in text
        assert "1.235" in text

    def test_format_series_percent(self):
        text = format_series({"gcc": 0.123}, title="S", percent=True)
        assert "12.30" in text

    def test_results_rows_include_average(self, small_sweep):
        rows = results_to_rows(small_sweep, "n888")
        assert rows[-1][0] == "AVG"
        assert len(rows) == len(small_sweep.benchmarks) + 1

    def test_policy_table_and_ladder_summary(self, small_sweep):
        assert "speedup" in format_policy_table(small_sweep, "n888")
        summary = format_ladder_summary(small_sweep)
        assert "n888_br_lr" in summary

    def test_to_csv(self):
        csv_text = to_csv(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = csv_text.splitlines()
        assert lines[0] == "a,b"
        assert lines[1].startswith("1,2.5")


class TestQuickSpeedup:
    def test_quick_speedup_keys(self):
        result = quick_speedup("gzip", policy="n888", trace_uops=1200, seed=3)
        assert set(result) >= {"speedup", "baseline_ipc", "helper_ipc",
                               "helper_fraction", "copy_fraction"}
        assert result["benchmark"] == "gzip"


class TestCLI:
    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Trace Cache" in out and "450 cycles" in out

    def test_workloads(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out and "62" in out

    def test_run(self, capsys):
        assert cli_main(["run", "--benchmark", "gzip", "--policy", "n888",
                         "--uops", "1200", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_analyze(self, capsys):
        assert cli_main(["analyze", "--benchmark", "gcc", "--uops", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out and "Fig 13" in out

    def test_ladder_small(self, capsys):
        assert cli_main(["ladder", "--benchmarks", "gzip", "--uops", "1000",
                         "--policies", "n888"]) == 0
        out = capsys.readouterr().out
        assert "Cumulative" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["bogus"])

    def test_explore_small_grid(self, capsys):
        assert cli_main(["explore", "--benchmarks", "gzip", "--uops", "1000",
                         "--widths", "8", "--ratios", "1", "2",
                         "--helpers", "1", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Design-space exploration" in out
        assert "w8x1h1" in out and "w8x2h1" in out and "best" in out

    def test_sweep_rejects_mismatched_suite_flags(self, capsys):
        assert cli_main(["sweep", "--suite", "table2",
                         "--benchmarks", "gcc"]) == 2
        assert cli_main(["sweep", "--categories", "kernels"]) == 2

    def test_sweep_table2_suite(self, capsys):
        assert cli_main(["sweep", "--suite", "table2", "--uops", "800",
                         "--apps-per-category", "1", "--jobs", "2",
                         "--categories", "kernels", "office"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14" in out
        assert "kernels" in out and "office" in out and "S-curve" in out


class TestWorkloadSuiteEngine:
    def test_suite_runs_through_engine_and_cache(self, tmp_path):
        from repro.sim.experiment import ExperimentRunner

        runner = ExperimentRunner(trace_uops=800, seed=2006, jobs=1,
                                  cache_dir=str(tmp_path / "cache"))
        sweep = runner.run_workload_suite(policy="n888",
                                          categories=["kernels"],
                                          apps_per_category=2)
        assert len(sweep.apps) == 2
        assert set(sweep.category_means()) == {"kernels"}
        assert len(sweep.s_curve()) == 2
        # Re-run: every (baseline, policy) pair served from the cache.
        rerun = ExperimentRunner(trace_uops=800, seed=2006, jobs=1,
                                 cache_dir=str(tmp_path / "cache"))
        rerun_sweep = rerun.run_workload_suite(policy="n888",
                                               categories=["kernels"],
                                               apps_per_category=2)
        assert rerun.cache.hits == 4 and rerun.cache.misses == 0
        assert rerun_sweep.speedups() == sweep.speedups()
